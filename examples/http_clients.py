"""The HTTP serving tier end to end: queries, priorities, limits, streams.

One in-process :class:`~repro.net.QueryServer` (ephemeral port) serves a
ranking-cube engine to three asyncio clients:

1. **An interactive client** submitting one-off top-k queries and a
   batch — results decode back to the same objects an in-process caller
   gets, full plan metadata included.
2. **A throttled client** configured with a 5 req/s token bucket: its
   burst drains, then requests bounce with HTTP 429 and a ``Retry-After``
   hint while the other clients sail on.
3. **A streaming client** consuming verified top-k prefixes over a
   chunked response *and* over a websocket — every prefix is final the
   moment it arrives (the engine proves no unseen tuple can displace
   it), and the assembled answer is bit-identical to a plain query.

Run: ``python examples/http_clients.py``
"""

from __future__ import annotations

import asyncio
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.engine import Executor
from repro.functions import LinearFunction
from repro.net import (
    AsyncQueryClient,
    FunctionRegistry,
    NetConfig,
    QueryServer,
    RateLimitedError,
)
from repro.query import Predicate, TopKQuery
from repro.serve import QueryService, ServiceConfig
from repro.workloads import SyntheticSpec, generate_relation


def build_engine():
    relation = generate_relation(SyntheticSpec(
        num_tuples=8000, num_selection_dims=3, num_ranking_dims=2,
        cardinality=8, seed=13))
    return Executor.for_relation(relation, block_size=200,
                                 with_signature=False, with_skyline=False)


async def interactive_session(port: int) -> None:
    client = AsyncQueryClient("127.0.0.1", port, client_id="dashboard",
                              priority="interactive")
    function = LinearFunction(["N1", "N2"], [1.0, 2.0])
    result = await client.query(TopKQuery(Predicate.of(A1=2), function, 5))
    print(f"[interactive] top-5 for A1=2: {result.tids}")
    print(f"[interactive] plan metadata rode along: "
          f"batch_size={result.extra['batch_size']:.0f}, "
          f"{result.disk_accesses} block accesses")
    batch = await client.query_many([
        TopKQuery(Predicate.of(A1=value), function, 3) for value in range(3)])
    print(f"[interactive] batch of 3 answered: "
          f"{[r.tids for r in batch]}")
    named = await client.query(
        TopKQuery(Predicate.of(A2=1), "sum_n1_n2", 4))
    print(f"[interactive] ranked by registered name 'sum_n1_n2': "
          f"{named.tids}")


async def throttled_session(port: int) -> None:
    client = AsyncQueryClient("127.0.0.1", port, client_id="crawler",
                              priority="background")
    function = LinearFunction(["N1", "N2"], [3.0, 1.0])
    query = TopKQuery(Predicate.of(), function, 3)
    served = bounced = 0
    retry_after = None
    for _ in range(12):
        try:
            await client.query(query)
            served += 1
        except RateLimitedError as exc:
            bounced += 1
            retry_after = exc.retry_after
    print(f"[throttled] 12 rapid-fire requests: {served} served, "
          f"{bounced} bounced with 429 (Retry-After ≈ {retry_after:.2f}s)")


async def streaming_session(port: int) -> None:
    client = AsyncQueryClient("127.0.0.1", port, client_id="ticker")
    function = LinearFunction(["N1", "N2"], [2.0, 3.0])
    query = TopKQuery(Predicate.of(), function, 10)

    def on_prefix(start, entries):
        print(f"[stream] ranks {start}..{start + len(entries) - 1} proven: "
              f"{[tid for tid, _ in entries]}")

    result, pairs = await client.stream(query, on_prefix=on_prefix)
    print(f"[stream] final answer: {result.tids} "
          f"({len(pairs)} of {len(result.tids)} ranks arrived early)")

    async with client.websocket() as ws:
        ws_result, _ = await ws.stream(
            TopKQuery(Predicate.of(A1=1), function, 5))
        print(f"[stream] same contract over the websocket: {ws_result.tids}")


async def main() -> None:
    engine = build_engine()
    registry = FunctionRegistry()
    registry.register("sum_n1_n2", LinearFunction(["N1", "N2"], [1.0, 1.0]))
    service_config = ServiceConfig(max_batch_size=32, max_linger=0.005)
    async with QueryService(engine, service_config) as service:
        async with QueryServer(service, NetConfig(),
                               functions=registry) as server:
            # Only the crawler gets a bucket; everyone else is unlimited.
            server.limiter.configure("crawler", rate=5.0, burst=4.0)
            print(f"serving on 127.0.0.1:{server.port}\n")
            await interactive_session(server.port)
            print()
            await throttled_session(server.port)
            print()
            await streaming_session(server.port)
            print()
            metrics = await AsyncQueryClient(
                "127.0.0.1", server.port).metrics_text()
            interesting = [line for line in metrics.splitlines()
                           if line.startswith("repro_net_")
                           and not line.startswith("#")]
            print("net.* metrics after the session:")
            for line in interesting:
                print(f"  {line}")


if __name__ == "__main__":
    asyncio.run(main())
