"""Multi-dimensional analysis of top-k results (thesis Example 2) + skylines.

A notebook-comparison site scores each laptop's market potential from CPU,
memory and disk.  An analyst drills down to "dell low-end", inspects the
top-k, rolls up to all makers, and finally asks for the skyline of
price/weight trade-offs within a brand — the OLAP-navigation and preference
queries of Chapters 3 and 7 in one session.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.functions import LinearFunction
from repro.query import Predicate, SkylineQuery, TopKQuery
from repro.signature import SignatureRankingCube, SignatureTopKExecutor
from repro.skyline import SkylineEngine, SkylineSession
from repro.storage.table import Relation, Schema

BRANDS = ["dell", "lenovo", "apple", "asus", "hp"]
PRICE_BANDS = ["low", "mid", "high"]


def build_catalog(num: int = 12000, seed: int = 23) -> Relation:
    rng = np.random.default_rng(seed)
    schema = Schema(("brand", "price_band"), ("neg_cpu", "neg_mem", "price", "weight"))
    brand = rng.integers(0, len(BRANDS), num)
    cpu = rng.uniform(0.2, 1.0, num)
    mem = rng.uniform(0.1, 1.0, num)
    price = np.clip(0.3 * cpu + 0.3 * mem + rng.normal(0.1, 0.12, num), 0.05, 1.0)
    weight = np.clip(rng.normal(0.5, 0.2, num), 0.1, 1.0)
    band = np.digitize(price, [0.35, 0.65])
    selection = np.column_stack([brand, band])
    # Market potential prefers high CPU/memory, so store negated values and
    # minimize, keeping every engine in its "smaller is better" convention.
    ranking = np.column_stack([1 - cpu, 1 - mem, price, weight])
    return Relation(schema, selection, ranking, name="notebooks")


def main() -> None:
    catalog = build_catalog()
    cube = SignatureRankingCube(catalog, rtree_max_entries=48)
    topk = SignatureTopKExecutor(cube)
    market_potential = LinearFunction(["neg_cpu", "neg_mem", "price"],
                                      [0.5, 0.3, 0.2])

    # Step 1: dell low-end notebooks with the best market potential.
    dell_low = TopKQuery(
        Predicate.of(brand=BRANDS.index("dell"), price_band=PRICE_BANDS.index("low")),
        market_potential, k=5)
    print("top-5 dell low-end notebooks by market potential")
    dell_result = topk.query(dell_low)
    for rank, (tid, score) in enumerate(dell_result.as_pairs(), start=1):
        print(f"  {rank}. notebook {tid} (score {score:.4f})")

    # Step 2: roll up on brand — the same band across all makers.
    all_low = TopKQuery(Predicate.of(price_band=PRICE_BANDS.index("low")),
                        market_potential, k=5)
    print("\ntop-5 low-end notebooks across all makers (roll-up on brand)")
    all_result = topk.query(all_low)
    dell_in_overall = set(dell_result.tids) & set(all_result.tids)
    for rank, (tid, score) in enumerate(all_result.as_pairs(), start=1):
        brand = BRANDS[catalog.selection_values(tid)["brand"]]
        print(f"  {rank}. notebook {tid} [{brand}] (score {score:.4f})")
    print(f"  dell holds {len(dell_in_overall)} of the overall top-5 "
          f"low-end positions")

    # Step 3: price/weight skyline within dell, then drill down to low-end.
    engine = SkylineEngine(cube)
    session = SkylineSession(engine)
    base = session.fresh(SkylineQuery(Predicate.of(brand=BRANDS.index("dell")),
                                      ("price", "weight")))
    print(f"\ndell price/weight skyline: {len(base)} notebooks "
          f"({base.disk_accesses} page reads)")
    drilled = session.drill_down({"price_band": PRICE_BANDS.index("low")})
    print(f"after drilling into the low-end band: {len(drilled)} notebooks "
          f"({drilled.disk_accesses} page reads on warm buffers)")


if __name__ == "__main__":
    main()
