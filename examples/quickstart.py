"""Quickstart: build a ranking cube and answer top-k queries with selections.

Run with ``python examples/quickstart.py`` from the repository root.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.baselines import TableScanTopK
from repro.cube import RankingCube
from repro.functions import LinearFunction, SquaredDistanceFunction
from repro.query import Predicate, TopKQuery
from repro.workloads import SyntheticSpec, generate_relation


def main() -> None:
    # 1. A relation with 3 categorical selection dimensions (A1..A3) and two
    #    real-valued ranking dimensions (N1, N2).
    relation = generate_relation(SyntheticSpec(
        num_tuples=20000, num_selection_dims=3, num_ranking_dims=2,
        cardinality=20, seed=1))
    print(f"relation: {relation!r}")

    # 2. Semi off-line materialization: equi-depth partition the ranking
    #    dimensions into base blocks and materialize one cuboid per subset of
    #    selection dimensions.
    cube = RankingCube(relation, block_size=300)
    print(f"materialized {cube.num_cuboids()} cuboids, "
          f"{cube.size_in_bytes() / 1e6:.2f} MB")

    # 3. Semi on-line computation: top-k with an ad-hoc ranking function and a
    #    multi-dimensional selection.
    query = TopKQuery(
        predicate=Predicate.of(A1=3, A2=7),
        function=LinearFunction(["N1", "N2"], [1.0, 2.0]),
        k=10,
    )
    result = cube.query(query)
    print("\ntop-10 by N1 + 2*N2 where A1=3 and A2=7")
    for rank, (tid, score) in enumerate(result.as_pairs(), start=1):
        print(f"  {rank:2d}. tid={tid:6d} score={score:.4f}")
    print(f"  ({result.disk_accesses} block accesses, "
          f"{result.states_generated} blocks examined)")

    # The cube's answers are exact: they match a full scan.
    oracle = TableScanTopK(relation).query(query)
    assert oracle.scores == result.scores
    print(f"  table scan agrees and costs {oracle.disk_accesses} page reads")

    # 4. Ad-hoc functions are first-class: nearest-neighbor style ranking.
    nn_query = TopKQuery(
        predicate=Predicate.of(A3=5),
        function=SquaredDistanceFunction(["N1", "N2"], targets=[0.25, 0.75]),
        k=5,
    )
    nn = cube.query(nn_query)
    print("\ntop-5 closest to (0.25, 0.75) where A3=5")
    for rank, (tid, score) in enumerate(nn.as_pairs(), start=1):
        print(f"  {rank:2d}. tid={tid:6d} distance^2={score:.5f}")


if __name__ == "__main__":
    main()
