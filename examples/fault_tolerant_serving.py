"""Fault tolerance end to end: chaos, retries, breakers, degraded answers.

One sharded engine is served through three failure postures:

1. **Chaos with retries** — a seeded :class:`~repro.fault.FaultInjector`
   plants worker crashes in the scatter legs while a
   :class:`~repro.fault.RetryPolicy` re-runs the failed legs with
   jittered backoff.  Every answer stays exact; the only trace of the
   chaos is in ``extra["leg_attempts"]`` and the ``fault.*`` counters.
2. **Permanent shard loss, strict** — a shard that stays down exhausts
   its retries, trips its circuit breaker, and the request fails with a
   typed :class:`~repro.serve.ShardUnavailableError` (the engine's
   :class:`~repro.errors.ShardWorkerError` rides along as ``__cause__``).
3. **Permanent shard loss, degraded** — the same outage under
   ``allow_partial=True``: the query answers *exactly* over the
   surviving shards, flagged ``degraded`` with a ``completeness``
   fraction, so a dashboard can keep rendering while the shard heals.

Per-request deadlines ride into the engine too: a ``timeout=`` on
``submit`` becomes a :class:`~repro.fault.Deadline` checked between
scatter legs and bounding process workers' pipe waits.

Run with ``python examples/fault_tolerant_serving.py`` from the
repository root.
"""

from __future__ import annotations

import asyncio
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.errors import ShardWorkerError
from repro.fault import BreakerPolicy, FaultInjector, RetryPolicy
from repro.functions import LinearFunction
from repro.query import Predicate, TopKQuery
from repro.serve import QueryService, ServiceConfig, ShardUnavailableError
from repro.workloads import SyntheticSpec, generate_relation, make_sharded_engine


def build_engine(relation, range_dim="A1", **fault_kwargs):
    return make_sharded_engine(relation, 3, range_dim=range_dim,
                               block_size=200, with_signature=False,
                               with_skyline=False, **fault_kwargs)


def fail_shard(engine, bad_index):
    """Simulate a shard that stays down (every leg to it raises)."""
    original = engine._shard_execute

    def failing(shard, query, leg, deadline=None):
        if shard.index == bad_index:
            raise ShardWorkerError(
                f"shard {shard.index} worker process died (exit code -9)",
                shard_index=shard.index)
        return original(shard, query, leg, deadline=deadline)

    engine._shard_execute = failing


async def main() -> None:
    relation = generate_relation(SyntheticSpec(
        num_tuples=20000, num_selection_dims=3, num_ranking_dims=2,
        cardinality=10, seed=11))
    function = LinearFunction(["N1", "N2"], [1.0, 1.0])
    queries = [TopKQuery(Predicate.of(A1=value), function, 5)
               for value in range(6)]

    # 1. Chaos with retries: 6 injected crashes, capped safely below the
    #    retry attempts, so every leg provably recovers.
    injector = FaultInjector(seed=2024,
                             rates={"worker.crash.pre": 0.4,
                                    "worker.crash.post": 0.2},
                             max_faults=6)
    manager, engine = build_engine(
        relation, fault_injector=injector,
        retry_policy=RetryPolicy(max_attempts=8, base_delay=0.002,
                                 cap_delay=0.02, jitter_seed=2024))
    config = ServiceConfig(max_batch_size=16, max_linger=0.005)
    async with QueryService(engine, config, manager=manager) as service:
        results = await asyncio.gather(
            *(service.submit(query, timeout=10.0) for query in queries))
        retried = [result.extra.get("leg_attempts") for result in results]
        print(f"chaos pass: {injector.total_fired} crashes injected, "
              f"{engine.metrics.snapshot()['fault.retries']:.0f} legs "
              f"retried, every answer exact")
        print(f"  leg attempts per query: {retried}")

    # 2. Permanent shard loss, strict: retries exhaust, the breaker
    #    trips, and the client sees a typed error with the cause chained.
    manager, engine = build_engine(
        relation,
        retry_policy=RetryPolicy(max_attempts=2, base_delay=0.001,
                                 cap_delay=0.002, jitter_seed=1),
        breaker_policy=BreakerPolicy(failure_threshold=3, cooldown=30.0))
    fail_shard(engine, bad_index=0)
    async with QueryService(engine, config, manager=manager) as service:
        try:
            await service.submit(queries[0], timeout=5.0)
        except ShardUnavailableError as exc:
            print(f"strict pass: {type(exc).__name__}: {exc}")
            print(f"  caused by: {type(exc.__cause__).__name__}")

    # 3. The same outage, degraded: exact answers over the two surviving
    #    shards, flagged with completeness so the caller knows.  Hash
    #    sharding here, so every query scatters to all three shards and
    #    only *loses* the dead one — under range sharding a query pruned
    #    to the dead shard alone has no survivors and must still fail.
    manager, engine = build_engine(
        relation, range_dim=None, allow_partial=True,
        breaker_policy=BreakerPolicy(failure_threshold=3, cooldown=30.0))
    fail_shard(engine, bad_index=0)
    async with QueryService(engine, config, manager=manager) as service:
        for query in queries[:3]:
            result = await service.submit(query, timeout=5.0)
            print(f"degraded pass: top-{len(result)} for {query.predicate}, "
                  f"completeness={result.extra.get('completeness', 1.0):.2f} "
                  f"shards_failed={result.extra.get('shards_failed', '-')}")
        snap = engine.metrics.snapshot()
        print(f"  breaker.opened={snap['breaker.opened']:.0f} "
              f"breaker.rejected={snap['breaker.rejected']:.0f} "
              f"fault.degraded_results={snap['fault.degraded_results']:.0f}")


if __name__ == "__main__":
    asyncio.run(main())
