"""Apartment search with many ranking dimensions (Chapter 5: index merge).

The apartment-search scenario of the thesis has a large number of ranking
criteria (rent, square footage, distances, fees, ...).  A single partition
over all of them is ineffective, so the ranking dimensions are split across
several indexes and queries are answered by progressively merging them,
with join-signatures pruning empty joint states.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.functions import ExpressionFunction, SquaredDistanceFunction, Var
from repro.indexmerge import (
    MODE_PROGRESSIVE,
    MODE_SELECTIVE,
    IndexMergeTopK,
    JoinSignatureSet,
)
from repro.storage.rtree import RTree
from repro.storage.table import Relation, Schema

RANKING_DIMS = ("rent", "sqft", "dist_work", "dist_beach", "deposit", "app_fee")


def build_listings(num: int = 15000, seed: int = 11) -> Relation:
    """Synthetic apartment listings with six ranking criteria in [0, 1]."""
    rng = np.random.default_rng(seed)
    schema = Schema(("city", "has_pool"), RANKING_DIMS)
    selection = np.column_stack([
        rng.integers(0, 12, num),
        rng.integers(0, 2, num),
    ])
    base = rng.random((num, len(RANKING_DIMS)))
    base[:, 1] = 1.0 - 0.6 * base[:, 0] + 0.2 * rng.random(num)  # bigger => pricier
    ranking = np.clip(base, 0, 1)
    return Relation(schema, selection, ranking, name="apartments")


def main() -> None:
    listings = build_listings()

    # Two 3-dimensional R-trees instead of one 6-dimensional partition.
    left_dims, right_dims = RANKING_DIMS[:3], RANKING_DIMS[3:]
    values = listings.ranking_matrix()
    left = RTree.build(left_dims, values[:, :3], max_entries=32)
    right = RTree.build(right_dims, values[:, 3:], max_entries=32)
    signatures = JoinSignatureSet.full([left, right])
    print(f"indexes: {left.node_count()} + {right.node_count()} nodes, "
          f"join-signature over {signatures.size_in_bytes()} bytes")

    # Preference: close to a target rent/size, near work and beach, low fees.
    preference = SquaredDistanceFunction(
        list(RANKING_DIMS),
        targets=[0.25, 0.7, 0.1, 0.2, 0.0, 0.0],
        weights=[3.0, 2.0, 1.5, 1.0, 0.5, 0.5],
    )

    progressive = IndexMergeTopK([left, right], mode=MODE_PROGRESSIVE)
    selective = IndexMergeTopK([left, right], mode=MODE_SELECTIVE,
                               join_signatures=signatures)
    r_pe = progressive.query(preference, 10)
    r_sig = selective.query(preference, 10)
    assert r_pe.scores == r_sig.scores

    print("\ntop-10 apartments by the weighted preference function")
    for rank, (tid, score) in enumerate(r_sig.as_pairs(), start=1):
        rent, sqft = values[tid, 0], values[tid, 1]
        print(f"  {rank:2d}. listing {tid:6d}: rent={rent:.2f} size={sqft:.2f} "
              f"score={score:.4f}")

    print("\ncost of progressive vs selective merge (same answers):")
    print(f"  progressive (PE)      : {r_pe.states_generated:7d} states, "
          f"{r_pe.disk_accesses:5d} page reads, peak heap {r_pe.peak_heap_size}")
    print(f"  selective  (PE+SIG)   : {r_sig.states_generated:7d} states, "
          f"{r_sig.disk_accesses:5d} page reads, peak heap {r_sig.peak_heap_size}")

    # A non-convex trade-off function also works: penalize rent far from a
    # budget that scales with size, i.e. (rent - 0.5*sqft^2)^2.
    tradeoff = ExpressionFunction((Var("rent") - 0.5 * Var("sqft") ** 2) ** 2)
    r_general = selective.query(tradeoff, 5)
    print("\ntop-5 by the non-convex trade-off (rent - 0.5*sqft^2)^2")
    for rank, (tid, score) in enumerate(r_general.as_pairs(), start=1):
        print(f"  {rank:2d}. listing {tid:6d}: rent={values[tid, 0]:.2f} "
              f"sqft={values[tid, 1]:.2f} score={score:.6f}")


if __name__ == "__main__":
    main()
