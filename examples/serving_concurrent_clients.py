"""Quickstart: serve concurrent clients through the async serving layer.

Eight clients fire top-k queries at one sharded engine at the same time.
The :class:`~repro.serve.QueryService` queues them, and its adaptive
micro-batcher drains each tick into one fused ``execute_many`` call — so
clients that happen to rank by the same function share a single frontier
sweep without knowing about each other.  The write path is serialized:
an ``insert`` drains the in-flight batches before mutating, and only the
cached answers the new row can affect are dropped.  Tracing is enabled
with a slow-query threshold, so the service keeps a log of the slowest
batches with their full span trees (printed at the end).

Run with ``python examples/serving_concurrent_clients.py`` from the
repository root.
"""

from __future__ import annotations

import asyncio
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.functions import LinearFunction
from repro.query import Predicate, TopKQuery
from repro.serve import QueryService, ServiceConfig
from repro.workloads import (
    SyntheticSpec,
    generate_relation,
    make_sharded_engine,
    serving_client_queries,
)


async def main() -> None:
    # 1. A relation, range-sharded three ways on A1, behind the usual
    #    scatter/gather engine.  The service works identically over an
    #    unsharded ``Executor.for_relation`` stack.
    relation = generate_relation(SyntheticSpec(
        num_tuples=20000, num_selection_dims=3, num_ranking_dims=2,
        cardinality=10, seed=11))
    manager, engine = make_sharded_engine(relation, 3, range_dim="A1",
                                          block_size=200,
                                          with_signature=False,
                                          with_skyline=False)

    # 2. The service: flush a batch at 64 pending requests or once the
    #    oldest has lingered 5 ms, whichever comes first; reject new work
    #    beyond 512 queued; give every request a 5 s deadline.  Tracing is
    #    on with a slow-query threshold: any batch whose root span takes
    #    1 ms or longer lands in the slow-query log with its full span
    #    tree (threshold deliberately low so the demo catches some).
    config = ServiceConfig(max_batch_size=64, max_linger=0.005,
                           max_pending=512, default_timeout=5.0,
                           tracing=True, slow_query_threshold=0.001)
    async with QueryService(engine, config, manager=manager) as service:
        # 3. Eight concurrent clients, each with its own query stream over
        #    two shared ranking functions.
        clients = serving_client_queries(relation, num_clients=8,
                                         per_client=6)
        results = await asyncio.gather(
            *(service.submit_many(stream) for stream in clients))
        first = results[0][0]
        print(f"client 0, query 0: top-{len(first)} via {first.backend}, "
              f"queue_wait={first.extra['queue_wait'] * 1000:.2f} ms, "
              f"batch_size={first.extra['batch_size']:.0f}, "
              f"fused_group_size={first.extra['fused_group_size']:.0f}")

        # 4. A write: drains in-flight batches, then invalidates only the
        #    cached answers the row can affect.
        tid = await service.insert(
            {"A1": 1, "A2": 0, "A3": 0, "N1": -10.0, "N2": -10.0})
        fresh = await service.submit(TopKQuery(
            Predicate.of(A1=1), LinearFunction(["N1", "N2"], [1.0, 1.0]), 3))
        print(f"after insert of tid {tid}: "
              f"top-1 for A1=1 is tid {fresh.tids[0]}")

        # 5. One merged statistics view: service counters, latency
        #    percentiles, and the engine's cache/fusion counters.
        snap = service.stats_snapshot()
        print(f"served {snap['completed']:.0f} queries in "
              f"{snap['batches']:.0f} batches "
              f"(mean size {snap['mean_batch_size']:.1f})")
        print(f"latency p50/p99: {snap['latency_p50'] * 1000:.2f}/"
              f"{snap['latency_p99'] * 1000:.2f} ms; "
              f"fusion rate {snap['fusion_rate']:.2f}; "
              f"result-cache hits {snap['result_hits']:.0f}")

        # 6. The slow-query log: every dispatched batch whose root span
        #    met the threshold, slowest first, with its span tree intact.
        slow = sorted(service.slow_queries(),
                      key=lambda trace: trace.duration, reverse=True)
        print(f"slow-query log: {len(slow)} batches at or over "
              f"{config.slow_query_threshold * 1000:.0f} ms")
        for trace in slow[:3]:
            root = trace.root
            batch_size = root.attrs.get("batch_size", "?")
            print(f"  {root.name}  {trace.duration * 1000:.2f} ms  "
                  f"batch_size={batch_size}  "
                  f"spans={len(trace.spans)}")


if __name__ == "__main__":
    asyncio.run(main())
