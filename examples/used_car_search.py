"""Used-car search (thesis Example 1): ranked search with selections.

An online used-car database keeps categorical attributes (type, maker,
color, transmission) and numeric attributes (price, mileage).  Different
shoppers rank with different ad-hoc functions over price and mileage while
filtering on different attribute combinations — the motivating scenario of
the ranking cube.  This example uses the signature-based cube (Chapter 4)
with incremental maintenance as new cars are listed.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.functions import LinearFunction, SquaredDistanceFunction
from repro.query import Predicate, TopKQuery
from repro.signature import SignatureRankingCube, SignatureTopKExecutor
from repro.storage.table import Relation, Schema

TYPES = ["sedan", "convertible", "suv", "wagon"]
MAKERS = ["ford", "hyundai", "toyota", "bmw", "honda"]
COLORS = ["red", "silver", "black", "white", "blue"]
TRANSMISSIONS = ["auto", "manual"]


def build_inventory(num_cars: int = 30000, seed: int = 3) -> Relation:
    """Synthesize a car inventory with realistic price/mileage correlation."""
    rng = np.random.default_rng(seed)
    schema = Schema(("type", "maker", "color", "transmission"), ("price", "milage"))
    selection = np.column_stack([
        rng.integers(0, len(TYPES), num_cars),
        rng.integers(0, len(MAKERS), num_cars),
        rng.integers(0, len(COLORS), num_cars),
        rng.integers(0, len(TRANSMISSIONS), num_cars),
    ])
    age = rng.uniform(0, 12, num_cars)                      # years
    price = np.clip(45000 * np.exp(-0.18 * age) + rng.normal(0, 2500, num_cars),
                    1500, 60000)
    milage = np.clip(12000 * age + rng.normal(0, 8000, num_cars), 0, 220000)
    ranking = np.column_stack([price, milage])
    return Relation(schema, selection, ranking, name="used_cars")


def describe(relation: Relation, tid: int) -> str:
    row = relation.tuple_dict(tid)
    return (f"{COLORS[row['color']]:6s} {MAKERS[row['maker']]:7s} "
            f"{TYPES[row['type']]:11s} ({TRANSMISSIONS[row['transmission']]}) "
            f"${row['price']:8.0f}  {row['milage']:7.0f} miles")


def main() -> None:
    inventory = build_inventory()
    cube = SignatureRankingCube(inventory, rtree_max_entries=64)
    search = SignatureTopKExecutor(cube)

    # Q1: top-10 red sedans minimizing price + milage (scaled).
    q1 = TopKQuery(
        Predicate.of(type=TYPES.index("sedan"), color=COLORS.index("red")),
        LinearFunction(["price", "milage"], [1.0, 0.1]),
        k=10,
    )
    print("Q1: top-10 red sedans by price + 0.1*milage")
    for rank, (tid, score) in enumerate(search.query(q1).as_pairs(), start=1):
        print(f"  {rank:2d}. {describe(inventory, tid)}  (score {score:,.0f})")

    # Q2: top-5 Ford convertibles near $20k and 10k miles.
    q2 = TopKQuery(
        Predicate.of(maker=MAKERS.index("ford"), type=TYPES.index("convertible")),
        SquaredDistanceFunction(["price", "milage"], targets=[20000, 10000],
                                weights=[1.0, 4.0]),
        k=5,
    )
    print("\nQ2: top-5 ford convertibles closest to ($20k, 10k miles)")
    for rank, (tid, score) in enumerate(search.query(q2).as_pairs(), start=1):
        print(f"  {rank:2d}. {describe(inventory, tid)}")

    # New listings arrive: the cube is maintained incrementally, not rebuilt.
    new_cars = [
        {"type": TYPES.index("sedan"), "maker": MAKERS.index("toyota"),
         "color": COLORS.index("red"), "transmission": 0,
         "price": 4000.0, "milage": 42000.0},
        {"type": TYPES.index("convertible"), "maker": MAKERS.index("ford"),
         "color": COLORS.index("blue"), "transmission": 0,
         "price": 19500.0, "milage": 11000.0},
    ]
    report = cube.insert(new_cars)
    print(f"\ninserted {report.tuples_inserted} new listings: "
          f"{report.cells_updated} signature cells patched, "
          f"{report.pages_written} pages written, "
          f"{report.node_splits} R-tree splits")

    print("\nQ1 again (the cheap new red sedan should appear):")
    for rank, (tid, score) in enumerate(search.query(q1).as_pairs(), start=1):
        marker = "  <-- new listing" if tid >= len(inventory) - 2 else ""
        print(f"  {rank:2d}. {describe(inventory, tid)}{marker}")


if __name__ == "__main__":
    main()
