"""Make the ``src`` layout importable without installation.

The offline environment has no ``wheel`` package, so ``pip install -e .``
cannot build editable metadata; adding ``src`` to ``sys.path`` here keeps
``pytest tests/`` and ``pytest benchmarks/`` runnable either way.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
