"""Tests for node-level signature compression (BL / RL / PI / PC coding)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EncodingError
from repro.signature.encoding import (
    SCHEME_BL,
    SCHEME_PC,
    SCHEME_PI,
    SCHEME_RL,
    code_size_bits,
    code_size_bytes,
    decode,
    encode,
    encode_adaptive,
)

ALL_SCHEMES = (SCHEME_BL, SCHEME_RL, SCHEME_PI, SCHEME_PC)

#: The sparse example node of thesis Table 4.2 (M = 32): bits 5, 11 set... the
#: exact bit array used there is a 28-bit sparse node; we use an equivalent.
TABLE_4_2_NODE = [0, 1, 1, 0, 0, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0,
                  0, 0, 0, 0, 0, 0, 0, 1]


class TestRoundTrips:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    @pytest.mark.parametrize("dense", [False, True])
    @pytest.mark.parametrize("bits", [
        [1],
        [0, 1],
        [1, 0, 0, 1, 1, 0],
        [1] * 16,
        [0] * 15 + [1],
        TABLE_4_2_NODE,
    ])
    def test_roundtrip(self, scheme, dense, bits):
        code = encode(bits, fanout=32, scheme=scheme, dense=dense)
        assert decode(code, fanout=32)[: len(bits)] == bits

    def test_adaptive_picks_shortest(self):
        best = encode_adaptive(TABLE_4_2_NODE, fanout=32)
        for scheme in ALL_SCHEMES:
            for dense in (False, True):
                assert len(best) <= len(encode(TABLE_4_2_NODE, 32, scheme, dense))
        assert decode(best, 32)[: len(TABLE_4_2_NODE)] == TABLE_4_2_NODE

    def test_sparse_nodes_beat_baseline(self):
        # A very sparse wide node should compress well below the raw coding.
        bits = [0] * 200
        bits[3] = 1
        baseline = encode(bits, fanout=204, scheme=SCHEME_BL, dense=False)
        adaptive = encode_adaptive(bits, fanout=204)
        assert len(adaptive) <= len(baseline)

    def test_dense_nodes_beat_baseline(self):
        bits = [1] * 200
        bits[100] = 0
        adaptive = encode_adaptive(bits, fanout=204)
        assert decode(adaptive, 204)[:200] == bits

    def test_size_helpers(self):
        code = encode([1, 0, 1], 8, SCHEME_BL, False)
        assert code_size_bits(code) == len(code)
        assert code_size_bytes(code) == -(-len(code) // 8)


class TestValidation:
    def test_unknown_scheme(self):
        with pytest.raises(EncodingError):
            encode([1], 8, "XX", False)

    def test_invalid_bits(self):
        with pytest.raises(EncodingError):
            encode([2], 8, SCHEME_BL, False)

    def test_truncated_code(self):
        with pytest.raises(EncodingError):
            decode("01", 8)


bit_lists = st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=64)


@settings(max_examples=120, deadline=None)
@given(bit_lists, st.sampled_from(ALL_SCHEMES), st.booleans())
def test_every_scheme_roundtrips_random_nodes(bits, scheme, dense):
    """Property: every scheme/variant decodes back to the original bits."""
    code = encode(bits, fanout=64, scheme=scheme, dense=dense)
    assert decode(code, fanout=64)[: len(bits)] == bits


@settings(max_examples=80, deadline=None)
@given(bit_lists)
def test_adaptive_roundtrips_and_never_loses_bits(bits):
    code = encode_adaptive(bits, fanout=64)
    decoded = decode(code, fanout=64)
    assert decoded[: len(bits)] == bits
    assert all(b == 0 for b in decoded[len(bits):])
