"""Tests for the benchmark harness and the experiment registry."""

from __future__ import annotations

import pytest

from repro.bench import ALL_EXPERIMENTS, bench_scale, scaled
from repro.bench.harness import ExperimentResult, average, cold_buffers, timed
from repro.bench.datasets import (
    clear_cache,
    dimension_btree,
    grid_cube,
    signature_cube,
    synthetic_relation,
)


class TestExperimentResult:
    def make(self):
        result = ExperimentResult("fig0.0", "demo", "k", ("time_s", "disk"))
        result.add("cube", 5, time_s=0.1, disk=3)
        result.add("scan", 5, time_s=0.2, disk=30)
        result.add("cube", 10, time_s=0.15, disk=5)
        result.add("scan", 10, time_s=0.2, disk=30)
        return result

    def test_methods_and_series(self):
        result = self.make()
        assert result.methods() == ["cube", "scan"]
        assert result.series("cube", "disk") == [(5, 3), (10, 5)]
        assert result.series("cube", "missing") == []

    def test_format_table(self):
        table = self.make().format_table()
        assert "fig0.0" in table
        assert "cube" in table and "scan" in table
        assert "0.1000" in table

    def test_check_shape(self):
        result = self.make()
        assert result.check_shape("cube", "scan", "disk")
        assert not result.check_shape("scan", "cube", "disk")


class TestHarnessHelpers:
    def test_scaled_and_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == "small"
        assert scaled(10, 1000) == 10
        monkeypatch.setenv("REPRO_BENCH_SCALE", "paper")
        assert bench_scale() == "paper"
        assert scaled(10, 1000) == 1000

    def test_average_and_timed(self):
        assert average([1.0, 3.0]) == 2.0
        assert average([]) == 0.0
        value, elapsed = timed(lambda: 42)
        assert value == 42 and elapsed >= 0

    def test_cold_buffers_clears_known_structures(self):
        relation = synthetic_relation(500, 2, 2, 4, seed=3)
        cube = grid_cube(relation, block_size=100)
        signature = signature_cube(relation, rtree_max_entries=8)
        btree = dimension_btree(relation, "N1", fanout=8)
        # Warm a few buffers, then invalidate them.
        btree.search_eq(0.5)
        assert btree.buffer._cache
        cold_buffers(cube, signature, btree, None)
        assert not btree.buffer._cache
        assert not signature.rtree.buffer._cache


class TestRegistry:
    def test_every_figure_has_an_experiment(self):
        expected = {
            "fig3.4", "fig3.5", "fig3.6", "fig3.7", "fig3.8", "fig3.9", "fig3.10",
            "fig3.11", "fig3.12", "fig3.13", "fig3.14", "fig3.15",
            "fig4.8", "fig4.9", "fig4.10", "fig4.11", "fig4.12", "fig4.13",
            "tab5.1", "fig5.7", "fig5.8", "fig5.9", "fig5.10", "fig5.11", "fig5.12",
            "fig5.13", "fig5.14", "fig5.15", "fig5.16", "fig5.17", "fig5.18",
            "fig5.19", "fig5.20", "fig5.21-22",
            "fig6.3", "fig6.4",
            "fig7.3-5", "fig7.6", "fig7.7", "fig7.8", "fig7.9", "fig7.10",
            "fig7.11", "fig7.12", "fig7.13-14",
        }
        assert expected <= set(ALL_EXPERIMENTS)
        assert all(callable(fn) for fn in ALL_EXPERIMENTS.values())

    def test_dataset_cache_roundtrip(self):
        relation_a = synthetic_relation(400, 2, 2, 4, seed=5)
        relation_b = synthetic_relation(400, 2, 2, 4, seed=5)
        assert relation_a is relation_b
        clear_cache()
        relation_c = synthetic_relation(400, 2, 2, 4, seed=5)
        assert relation_c is not relation_a
