"""Tests for the baseline query-processing methods."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    BooleanFirstTopK,
    RankMappingTopK,
    RankingFirstTopK,
    TableScanTopK,
    ThresholdAlgorithmTopK,
    build_dimension_trees,
    optimal_range_bounds,
    table_pages,
)
from repro.errors import QueryError
from repro.functions import (
    ExpressionFunction,
    LinearFunction,
    SquaredDistanceFunction,
    Var,
)
from repro.query import Predicate, TopKQuery
from repro.storage.rtree import RTree
from repro.workloads import SyntheticSpec, generate_relation
from tests.conftest import brute_force_topk


@pytest.fixture(scope="module")
def relation():
    return generate_relation(SyntheticSpec(num_tuples=2500, num_selection_dims=3,
                                           num_ranking_dims=2, cardinality=6, seed=71))


@pytest.fixture(scope="module")
def rtree(relation):
    points = relation.ranking_values_bulk(np.arange(relation.num_tuples),
                                          relation.ranking_dims)
    return RTree.build(relation.ranking_dims, points, max_entries=16)


QUERY = TopKQuery(Predicate.of(A1=2, A2=1), LinearFunction(["N1", "N2"], [1.0, 2.0]), 10)


class TestTableScan:
    def test_matches_oracle(self, relation):
        _, expected = brute_force_topk(relation, QUERY)
        result = TableScanTopK(relation).query(QUERY)
        assert result.scores == pytest.approx(expected)
        assert result.disk_accesses == table_pages(relation)

    def test_no_matches(self, relation):
        query = TopKQuery(Predicate.of(A1=999), LinearFunction(["N1"], [1.0]), 5)
        assert TableScanTopK(relation).query(query).tids == ()

    def test_table_pages_scales_with_size(self, relation):
        small = generate_relation(SyntheticSpec(num_tuples=100, num_selection_dims=3,
                                                num_ranking_dims=2, seed=1))
        assert table_pages(relation) > table_pages(small)


class TestBooleanFirst:
    def test_matches_oracle(self, relation):
        _, expected = brute_force_topk(relation, QUERY)
        result = BooleanFirstTopK(relation).query(QUERY)
        assert result.scores == pytest.approx(expected)
        assert result.disk_accesses > 0
        assert result.tuples_evaluated > 0

    def test_more_selective_predicate_is_cheaper(self, relation):
        engine = BooleanFirstTopK(relation)
        loose = engine.query(TopKQuery(Predicate.of(A1=2),
                                       LinearFunction(["N1"], [1.0]), 10))
        tight = engine.query(TopKQuery(Predicate.of(A1=2, A2=1, A3=3),
                                       LinearFunction(["N1"], [1.0]), 10))
        assert tight.disk_accesses <= loose.disk_accesses


class TestRankingFirst:
    def test_matches_oracle(self, relation, rtree):
        _, expected = brute_force_topk(relation, QUERY)
        result = RankingFirstTopK(relation, rtree).query(QUERY)
        assert result.scores == pytest.approx(expected)
        assert result.extra["boolean_verifications"] >= len(expected)

    def test_distance_function(self, relation, rtree):
        query = TopKQuery(Predicate.of(A3=2),
                          SquaredDistanceFunction(["N1", "N2"], [0.9, 0.9]), 5)
        _, expected = brute_force_topk(relation, query)
        assert RankingFirstTopK(relation, rtree).query(query).scores == \
            pytest.approx(expected)

    def test_larger_k_costs_more(self, relation, rtree):
        engine = RankingFirstTopK(relation, rtree)
        small = engine.query(TopKQuery(QUERY.predicate, QUERY.function, 5))
        large = engine.query(TopKQuery(QUERY.predicate, QUERY.function, 100))
        assert large.tuples_evaluated >= small.tuples_evaluated


class TestRankMapping:
    def test_matches_oracle(self, relation):
        _, expected = brute_force_topk(relation, QUERY)
        result = RankMappingTopK(relation).query(QUERY)
        assert result.scores == pytest.approx(expected)
        assert result.extra["range_tuples"] >= len(expected)

    def test_optimal_bounds_linear(self):
        fn = LinearFunction(["a", "b"], [1.0, 2.0])
        bounds = optimal_range_bounds(fn, 10.0)
        assert bounds["a"][1] == pytest.approx(10.0)
        assert bounds["b"][1] == pytest.approx(5.0)

    def test_optimal_bounds_distance(self):
        fn = SquaredDistanceFunction(["a"], [1.0])
        bounds = optimal_range_bounds(fn, 4.0)
        assert bounds["a"] == (pytest.approx(-1.0), pytest.approx(3.0))

    def test_general_function_falls_back_to_unbounded(self, relation):
        fn = ExpressionFunction((Var("N1") - Var("N2") ** 2) ** 2)
        bounds = optimal_range_bounds(fn, 1.0)
        assert all(low == -np.inf and high == np.inf for low, high in bounds.values())
        query = TopKQuery(Predicate.of(A1=1), fn, 5)
        _, expected = brute_force_topk(relation, query)
        assert RankMappingTopK(relation).query(query).scores == pytest.approx(expected)

    def test_fewer_matches_than_k(self, relation):
        query = TopKQuery(Predicate.of(A1=0, A2=0, A3=0),
                          LinearFunction(["N1"], [1.0]), 500)
        _, expected = brute_force_topk(relation, query)
        assert RankMappingTopK(relation).query(query).scores == pytest.approx(expected)


class TestThresholdAlgorithm:
    def test_matches_oracle_for_monotone(self, relation):
        trees = build_dimension_trees(relation, fanout=32)
        engine = ThresholdAlgorithmTopK(relation, trees)
        query = TopKQuery(Predicate.of(), LinearFunction(["N1", "N2"], [1.0, 1.0]), 10)
        _, expected = brute_force_topk(relation, query)
        result = engine.query(query)
        assert result.scores == pytest.approx(expected)
        assert result.extra["sorted_accesses"] > 0

    def test_with_predicate(self, relation):
        trees = build_dimension_trees(relation, fanout=32)
        engine = ThresholdAlgorithmTopK(relation, trees)
        query = TopKQuery(Predicate.of(A1=1), LinearFunction(["N1", "N2"], [2.0, 1.0]), 5)
        _, expected = brute_force_topk(relation, query)
        assert engine.query(query).scores == pytest.approx(expected)

    def test_rejects_non_monotone(self, relation):
        trees = build_dimension_trees(relation)
        engine = ThresholdAlgorithmTopK(relation, trees)
        query = TopKQuery(Predicate.of(), LinearFunction(["N1", "N2"], [1.0, -1.0]), 5)
        with pytest.raises(QueryError):
            engine.query(query)

    def test_rejects_missing_tree(self, relation):
        trees = build_dimension_trees(relation, dims=["N1"])
        engine = ThresholdAlgorithmTopK(relation, trees)
        query = TopKQuery(Predicate.of(), LinearFunction(["N1", "N2"], [1.0, 1.0]), 5)
        with pytest.raises(QueryError):
            engine.query(query)
