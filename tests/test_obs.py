"""Tests for the observability subsystem: metrics, tracing, EXPLAIN ANALYZE.

Covers the metrics registry (instruments, snapshots, Prometheus text,
multi-registry merging), the tracer (span trees, ring buffer, slow-query
log, and the zero-allocation no-op fast path), ``explain_analyze`` on
both executor front doors and the serving layer, the per-backend cost
feedback counters, and the post-deprecation ``cache_stats`` key surface.
"""

from __future__ import annotations

import asyncio
import sys
import warnings

import pytest

from repro.engine import Executor
from repro.functions import LinearFunction
from repro.functions.linear import sum_function
from repro.obs import (
    NULL_SPAN,
    NULL_TRACER,
    MetricsRegistry,
    NullSpan,
    NullTracer,
    Tracer,
    estimated_vs_actual,
    merged_snapshot,
    misestimation_report,
    percentile,
    render_trace,
)
from repro.query import Predicate, TopKQuery
from repro.shard import RangeShardingPolicy, ScatterGatherExecutor, ShardManager
from repro.storage.table import Relation, Schema
from repro.workloads import SyntheticSpec, generate_relation, make_sharded_engine


def small_relation(seed: int = 400):
    return generate_relation(SyntheticSpec(
        num_tuples=400, num_selection_dims=2, num_ranking_dims=2,
        cardinality=4, seed=seed))


def stratified_engine(num_rows: int = 240):
    """A-value strata with disjoint ranking ranges over 3 range shards.

    Shard s holds scores in [s/3, s/3 + 0.25), so a bounded scatter runs
    the first (most promising) leg and provably skips the rest — the
    deterministic setup for pruned/skipped leg rendering.
    """
    schema = Schema(("A",), ("X", "Y"))
    rows = []
    for i in range(num_rows):
        stratum = i % 3
        low = stratum / 3.0
        rows.append({"A": stratum,
                     "X": low + (i % 40) * 0.003,
                     "Y": low + ((i + 13) % 40) * 0.003})
    relation = Relation.from_rows(schema, rows, name="strata")
    manager = ShardManager(relation, RangeShardingPolicy(relation, "A", 3),
                           block_size=30, rtree_max_entries=8,
                           with_signature=False, with_skyline=False)
    return relation, ScatterGatherExecutor(manager)


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 99) == 0.0

    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50) == 50.0
        assert percentile(values, 99) == 99.0
        assert percentile(values, 100) == 100.0
        assert percentile([7.0], 50) == 7.0

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        counter = registry.counter("engine.queries")
        counter.inc()
        counter.inc(2.0)
        gauge = registry.gauge("serve.pending")
        gauge.set(5)
        gauge.dec()
        hist = registry.histogram("serve.latency_seconds", window=4)
        for v in (1.0, 2.0, 3.0):
            hist.observe(v)
        assert counter.value == 3.0
        assert gauge.value == 4.0
        assert hist.count == 3
        assert hist.mean == 2.0
        assert hist.percentile(50) == 2.0

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")
        assert registry.histogram("a.h") is registry.histogram("a.h")

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a.b")
        with pytest.raises(ValueError):
            registry.gauge("a.b")
        with pytest.raises(ValueError):
            registry.histogram("a.b")

    def test_histogram_window_rolls_but_lifetime_totals_persist(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", window=3)
        for v in (1.0, 2.0, 3.0, 4.0, 5.0):
            hist.observe(v)
        assert hist.values() == [3.0, 4.0, 5.0]
        assert hist.count == 5
        assert hist.sum == 15.0

    def test_snapshot_expands_histograms(self):
        registry = MetricsRegistry()
        registry.counter("engine.queries").inc(7.0)
        hist = registry.histogram("engine.latency_seconds")
        for v in (0.1, 0.2, 0.3):
            hist.observe(v)
        snap = registry.snapshot()
        assert snap["engine.queries"] == 7.0
        assert snap["engine.latency_seconds.count"] == 3.0
        assert snap["engine.latency_seconds.p50"] == 0.2
        assert snap["engine.latency_seconds.mean"] == pytest.approx(0.2)

    def test_to_json_round_trips(self):
        import json

        registry = MetricsRegistry()
        registry.counter("a").inc()
        assert json.loads(registry.to_json())["a"] == 1.0

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("engine.tuples_evaluated").inc(42.0)
        registry.gauge("serve.pending").set(3)
        hist = registry.histogram("serve.queue_wait_seconds")
        hist.observe(0.5)
        text = registry.render_prometheus()
        assert "# TYPE repro_engine_tuples_evaluated counter" in text
        assert "repro_engine_tuples_evaluated 42" in text
        assert "# TYPE repro_serve_pending gauge" in text
        assert "# TYPE repro_serve_queue_wait_seconds summary" in text
        assert 'repro_serve_queue_wait_seconds{quantile="0.99"} 0.5' in text
        assert "repro_serve_queue_wait_seconds_count 1" in text

    def test_merged_snapshot_sums_counters_and_pools_reservoirs(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("engine.queries").inc(2.0)
        b.counter("engine.queries").inc(3.0)
        ha = a.histogram("engine.latency_seconds")
        hb = b.histogram("engine.latency_seconds")
        for v in (1.0, 1.0, 1.0, 1.0):
            ha.observe(v)
        hb.observe(100.0)
        merged = merged_snapshot([a, b])
        assert merged["engine.queries"] == 5.0
        assert merged["engine.latency_seconds.count"] == 5.0
        # Pooled percentile over the union {1,1,1,1,100}: p50 is 1, not
        # the mean of per-registry p50s (50.5).
        assert merged["engine.latency_seconds.p50"] == 1.0
        assert merged["engine.latency_seconds.p99"] == 100.0


class TestTracer:
    def test_span_tree_with_fake_clock(self):
        ticks = iter(range(100))
        tracer = Tracer(clock=lambda: float(next(ticks)))
        root = tracer.trace("serve.request")
        child = root.child("engine.plan").set("backend", "table-scan")
        child.finish()
        root.finish()
        trace = root.trace
        assert trace.root is root
        assert [s.name for s in trace.spans] == ["serve.request",
                                                 "engine.plan"]
        assert trace.children_of(root) == [child]
        assert trace.find("engine.plan") == [child]
        assert child.attrs["backend"] == "table-scan"
        assert child.duration == 1.0
        assert trace.duration == 3.0

    def test_explicit_start_and_end(self):
        tracer = Tracer(clock=lambda: 10.0)
        root = tracer.trace("r", start=4.0)
        wait = root.child("serve.queue_wait", start=4.0).finish(end=9.0)
        assert wait.duration == 5.0
        root.finish()
        assert root.duration == 6.0

    def test_finish_is_idempotent(self):
        ticks = iter(range(100))
        tracer = Tracer(clock=lambda: float(next(ticks)))
        root = tracer.trace("r")
        root.finish()
        end = root.end
        root.finish()
        assert root.end == end
        assert tracer.traces_recorded == 1

    def test_ring_buffer_bound(self):
        tracer = Tracer(ring_size=3)
        for i in range(5):
            tracer.trace(f"t{i}").finish()
        names = [trace.root.name for trace in tracer.recent()]
        assert names == ["t2", "t3", "t4"]
        assert tracer.traces_recorded == 5

    def test_slow_query_log_threshold(self):
        clock = {"now": 0.0}

        def fake_clock():
            return clock["now"]

        tracer = Tracer(slow_threshold=1.0, clock=fake_clock)
        fast = tracer.trace("fast")
        clock["now"] = 0.5
        fast.finish()
        slow = tracer.trace("slow")
        clock["now"] = 2.0
        slow.finish()
        logged = tracer.slow_queries()
        assert [trace.root.name for trace in logged] == ["slow"]
        assert tracer.slow_traces == 1

    def test_context_manager_finishes(self):
        tracer = Tracer()
        with tracer.trace("r") as root:
            with root.child("c"):
                pass
        assert tracer.traces_recorded == 1
        assert root.end is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            Tracer(ring_size=0)
        with pytest.raises(ValueError):
            Tracer(slow_log_size=0)
        with pytest.raises(ValueError):
            Tracer(slow_threshold=-1.0)


class TestNullObjects:
    def test_null_tracer_hands_back_the_singleton(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert not NULL_TRACER.enabled
        span = NULL_TRACER.trace("engine.execute")
        assert span is NULL_SPAN
        assert span.child("x") is NULL_SPAN
        assert span.set("k", 1) is NULL_SPAN
        assert span.annotate(k=1) is NULL_SPAN
        assert span.finish() is NULL_SPAN
        assert NULL_TRACER.recent() == []
        assert NULL_TRACER.slow_queries() == []

    def test_null_span_is_falsy_real_span_truthy(self):
        assert not NULL_SPAN
        assert bool(NullSpan()) is False
        assert bool(Tracer().trace("r"))

    def test_disabled_tracing_allocates_nothing(self):
        """The hot-path contract: the no-op tracer adds zero allocations."""
        def instrumented_request():
            span = NULL_TRACER.trace("engine.execute")
            plan = span.child("engine.plan")
            plan.set("backend", "table-scan").set("estimated_cost", 1.5)
            plan.finish()
            run = span.child("engine.run")
            run.set("tuples_evaluated", 10)
            run.finish()
            span.finish()

        for _ in range(50):  # warm up caches (bytecode, small ints)
            instrumented_request()
        deltas = []
        for _ in range(5):
            before = sys.getallocatedblocks()
            for _ in range(50):
                instrumented_request()
            deltas.append(sys.getallocatedblocks() - before)
        # A real per-call allocation would cost >= 50 blocks every trial;
        # the min filters one-off interpreter noise (e.g. gc bookkeeping).
        assert min(deltas) == 0, deltas


class TestExplainAnalyzeEngine:
    @pytest.fixture(scope="class")
    def engine(self):
        return Executor.for_relation(small_relation(), block_size=50,
                                     rtree_max_entries=8)

    def query(self):
        return TopKQuery(Predicate.of(A1=1),
                         LinearFunction(["N1", "N2"], [1.0, 1.0]), 5)

    def test_renders_plan_run_and_cost_table(self, engine):
        text = engine.explain_analyze(self.query())
        assert "engine.explain_analyze" in text
        assert "engine.plan" in text
        assert "cost_estimates=" in text
        assert "estimated_cost=" in text
        assert "engine.run" in text
        assert "tuples_evaluated=" in text
        assert "returned 5 rows via" in text
        assert "estimated cost vs actual tuples evaluated:" in text
        assert "actual/estimated=" in text

    def test_leaves_no_cache_residue_and_matches_plain_execution(self, engine):
        query = self.query()
        plain = engine.execute(query)
        entries_before = engine.result_cache.stats()["result_entries"]
        engine.explain_analyze(query)
        assert engine.result_cache.stats()["result_entries"] == entries_before
        again = engine.execute(query)
        assert again.tids == plain.tids
        assert again.scores == plain.scores

    def test_does_not_touch_the_engines_own_ring(self, engine):
        tracer = Tracer(ring_size=4)
        engine.tracer = tracer
        try:
            engine.explain_analyze(self.query())
            assert tracer.recent() == []
        finally:
            engine.tracer = NULL_TRACER

    def test_cost_feedback_counters(self, engine):
        engine.invalidate_results()
        for value in range(4):
            engine.execute(TopKQuery(
                Predicate.of(A1=value % 4),
                LinearFunction(["N1", "N2"], [1.0, 1.0]), 3))
        snap = engine.metrics_snapshot()
        costed = [name for name in snap
                  if name.startswith("planner.costed_queries.")]
        assert costed, snap
        backend = costed[0].split(".")[-1]
        assert snap[f"planner.estimated_cost_total.{backend}"] > 0.0
        assert f"planner.actual_tuples_total.{backend}" in snap
        assert f"planner.misestimates.{backend}" in snap
        report = misestimation_report(snap)
        assert backend in report
        assert "costed queries" in report

    def test_misestimation_report_empty_snapshot(self):
        assert "no cost-feedback" in misestimation_report({})

    def test_metrics_snapshot_namespaces(self, engine):
        snap = engine.metrics_snapshot()
        assert "engine.queries" in snap
        assert "engine.tuples_evaluated" in snap
        assert "engine.latency_seconds.p95" in snap
        assert "engine.bound_entries" in snap
        assert "engine.fused_queries" in snap


class TestExplainAnalyzeSharded:
    def test_renders_legs_and_nested_engine_spans(self):
        relation = small_relation(seed=401)
        _, engine = make_sharded_engine(relation, 3, range_dim="A1",
                                        block_size=50, with_signature=False,
                                        with_skyline=False)
        query = TopKQuery(Predicate.of(A1=1),
                          LinearFunction(["N1", "N2"], [1.0, 1.0]), 5)
        text = engine.explain_analyze(query)
        assert "shard.explain_analyze" in text
        assert "shard.execute" in text
        assert "shards_pruned=" in text
        assert "shard.leg" in text
        assert "engine.plan" in text
        assert "shard.gather" in text
        assert "merged_rows=" in text
        assert "estimated cost vs actual tuples evaluated:" in text

    def test_renders_skipped_legs_with_reason(self):
        _, engine = stratified_engine()
        query = TopKQuery(Predicate.of(), sum_function(["X", "Y"]), 5)
        text = engine.explain_analyze(query)
        assert "skipped=" in text
        assert "score floor" in text
        snap = engine.metrics_snapshot()
        assert snap["shard.legs_skipped"] >= 2.0
        assert snap["shard.legs_run"] >= 1.0

    def test_scatter_metrics_snapshot_merges_shard_engines(self):
        _, engine = stratified_engine()
        engine.execute(TopKQuery(Predicate.of(A=1),
                                 sum_function(["X", "Y"]), 3))
        snap = engine.metrics_snapshot()
        assert snap["shard.queries"] == 1.0
        # engine.* counters come from the per-shard executors' registries.
        assert snap["engine.queries"] >= 1.0
        assert "shard.shard_bound_entries" in snap
        # Deprecated bare aliases are not re-exported into the namespaced
        # snapshot.
        assert "shard.entries" not in snap


class TestCacheStatsAliases:
    def test_bare_aliases_are_gone_after_the_deprecation_cycle(self):
        # The PR 7 deprecation cycle is over: the merged scatter view
        # speaks only the shard_*-prefixed dialect, reads never warn.
        _, engine = stratified_engine()
        engine.execute(TopKQuery(Predicate.of(), sum_function(["X", "Y"]), 5))
        stats = engine.cache_stats()
        for canonical in ("shard_bound_entries", "shard_bound_hits",
                          "shard_bound_misses", "shard_bound_hit_rate",
                          "shard_plans_reused"):
            assert canonical in stats
        for bare in ("entries", "hits", "misses", "hit_rate",
                     "plans_reused"):
            assert bare not in stats
        assert not hasattr(stats, "deprecated_keys")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            _ = stats["shard_bound_hits"]
            _ = stats.get("shard_bound_hit_rate")
            dict(stats.items())


class TestServedExplainAnalyze:
    def test_one_tree_from_queue_wait_to_gather(self):
        from repro.serve import QueryService, ServiceConfig

        relation = small_relation(seed=402)
        manager, engine = make_sharded_engine(relation, 3, range_dim="A1",
                                              block_size=50,
                                              with_signature=False,
                                              with_skyline=False)
        function = LinearFunction(["N1", "N2"], [1.0, 1.0])
        target = TopKQuery(Predicate.of(A1=1, A2=2), function, 5)
        peers = [TopKQuery(Predicate.of(A1=value), function, 3)
                 for value in (0, 1, 2)]
        config = ServiceConfig(max_batch_size=16, max_linger=0.05)

        async def run() -> str:
            async with QueryService(engine, config,
                                    manager=manager) as service:
                others = [asyncio.ensure_future(service.submit(peer))
                          for peer in peers]
                text = await service.explain_analyze(target)
                await asyncio.gather(*others)
                return text

        text = asyncio.run(run())
        assert "serve.request" in text
        assert "serve.queue_wait" in text
        assert "batch_size=4" in text
        assert "shard.execute_many" in text
        assert "shard.fused_scatter" in text
        assert "shard.leg" in text
        assert "riders=" in text
        assert "engine.fused_sweep" in text
        assert "attributed_shares=" in text
        assert "shard.gather" in text
        assert "engine.plan" in text
        assert "estimated cost vs actual tuples evaluated:" in text

    def test_estimated_vs_actual_attributes_fused_work(self):
        tracer = Tracer()
        root = tracer.trace("r")
        (root.child("engine.plan").set("backend", "ranking-cube")
         .set("estimated_cost", 10.0).finish())
        (root.child("engine.plan").set("backend", "ranking-cube")
         .set("estimated_cost", 20.0).finish())
        (root.child("engine.fused_sweep").set("backend", "ranking-cube")
         .set("tuples_evaluated", 12).finish())
        root.finish()
        table = estimated_vs_actual(root.trace)
        assert table == {"ranking-cube": (30.0, 12.0)}
        text = render_trace(root.trace)
        assert "ranking-cube" in text
        assert "estimated=30.0" in text
        assert "actual=12" in text
