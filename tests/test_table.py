"""Tests for Schema / Relation / RelationStats and the query model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import QueryError, SchemaError
from repro.functions import LinearFunction
from repro.query import Predicate, QueryResult, SkylineQuery, TopKQuery
from repro.storage.table import Relation, RelationStats, Schema


@pytest.fixture()
def relation() -> Relation:
    schema = Schema(("A", "B"), ("X", "Y"))
    selection = np.array([[0, 1], [1, 1], [0, 2], [1, 2]])
    ranking = np.array([[0.1, 0.9], [0.2, 0.8], [0.3, 0.7], [0.4, 0.6]])
    return Relation(schema, selection, ranking, name="T")


class TestSchema:
    def test_overlapping_dims_rejected(self):
        with pytest.raises(SchemaError):
            Schema(("A",), ("A",))

    def test_duplicate_dims_rejected(self):
        with pytest.raises(SchemaError):
            Schema(("A", "A"), ("X",))
        with pytest.raises(SchemaError):
            Schema(("A",), ("X", "X"))

    def test_lookups(self):
        schema = Schema(("A", "B"), ("X",))
        assert schema.selection_index("B") == 1
        assert schema.ranking_index("X") == 0
        assert schema.is_selection("A") and not schema.is_selection("X")
        assert schema.all_dims == ("A", "B", "X")
        with pytest.raises(SchemaError):
            schema.selection_index("Z")
        with pytest.raises(SchemaError):
            schema.ranking_index("Z")


class TestRelation:
    def test_shape_validation(self):
        schema = Schema(("A",), ("X",))
        with pytest.raises(SchemaError):
            Relation(schema, np.zeros((3, 2)), np.zeros((3, 1)))
        with pytest.raises(SchemaError):
            Relation(schema, np.zeros((3, 1)), np.zeros((2, 1)))
        with pytest.raises(SchemaError):
            Relation(schema, np.zeros(3), np.zeros((3, 1)))

    def test_columns_and_values(self, relation):
        assert relation.num_tuples == 4
        assert len(relation) == 4
        assert list(relation.selection_column("A")) == [0, 1, 0, 1]
        assert relation.cardinality("B") == 2
        assert relation.selection_values(1) == {"A": 1, "B": 1}
        assert relation.ranking_values(2, ["Y"])[0] == pytest.approx(0.7)
        assert relation.tuple_dict(0) == {"A": 0, "B": 1, "X": 0.1, "Y": 0.9}

    def test_bulk_values_and_masks(self, relation):
        block = relation.ranking_values_bulk([0, 3], ["Y", "X"])
        assert block.shape == (2, 2)
        assert block[1, 0] == pytest.approx(0.6)
        mask = relation.mask_equal({"A": 0})
        assert list(np.nonzero(mask)[0]) == [0, 2]
        assert list(relation.tids_matching({"A": 1, "B": 2})) == [3]

    def test_from_rows_and_append(self):
        schema = Schema(("A",), ("X",))
        relation = Relation.from_rows(schema, [{"A": 1, "X": 0.5}])
        tid = relation.append({"A": 2, "X": 0.25})
        assert tid == 1
        assert relation.num_tuples == 2
        assert relation.selection_values(1)["A"] == 2

    def test_project(self, relation):
        projected = relation.project(["B"], ["X"])
        assert projected.selection_dims == ("B",)
        assert projected.ranking_dims == ("X",)
        assert projected.num_tuples == 4

    def test_stats_and_selectivity(self, relation):
        stats = RelationStats.of(relation)
        assert stats.num_tuples == 4
        assert stats.cardinalities == {"A": 2, "B": 2}
        assert stats.selectivity({"A": 0}) == pytest.approx(0.5)
        assert stats.selectivity({"A": 0, "B": 1}) == pytest.approx(0.25)


class TestQueryModel:
    def test_predicate_construction(self):
        pred = Predicate.of({"A": 1}, B=2)
        assert pred.as_dict == {"A": 1, "B": 2}
        assert pred.dims == ("A", "B")
        assert not pred.is_empty()
        assert len(pred) == 2
        assert Predicate.of().is_empty()

    def test_predicate_matching_and_restriction(self, relation):
        pred = Predicate.of(A=1, B=2)
        assert pred.matches(relation, 3)
        assert not pred.matches(relation, 0)
        assert pred.restricted_to(["A"]).as_dict == {"A": 1}

    def test_predicate_validation(self, relation):
        with pytest.raises(QueryError):
            Predicate.of(X=1).validate(relation)
        Predicate.of(A=0).validate(relation)

    def test_topk_query_validation(self, relation):
        fn = LinearFunction(["X"], [1.0])
        with pytest.raises(QueryError):
            TopKQuery(Predicate.of(), fn, 0)
        query = TopKQuery(Predicate.of(A=0), fn, 2)
        query.validate(relation)
        assert query.ranking_dims == ("X",)
        assert query.selection_dims == ("A",)
        bad = TopKQuery(Predicate.of(A=0), LinearFunction(["A"], [1.0]), 2)
        with pytest.raises(QueryError):
            bad.validate(relation)

    def test_skyline_query_validation(self):
        with pytest.raises(QueryError):
            SkylineQuery(Predicate.of(), ())
        with pytest.raises(QueryError):
            SkylineQuery(Predicate.of(), ("X", "Y"), (1.0,))
        dynamic = SkylineQuery(Predicate.of(), ("X",), (0.5,))
        assert dynamic.is_dynamic
        static = SkylineQuery(Predicate.of(), ("X",))
        assert not static.is_dynamic

    def test_query_result_invariants(self):
        with pytest.raises(QueryError):
            QueryResult(tids=(1,), scores=())
        result = QueryResult(tids=(1, 2), scores=(0.1, 0.2))
        assert result.as_pairs() == ((1, 0.1), (2, 0.2))
        assert len(result) == 2
