"""Tests for the synthetic / CoverType-like workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import QueryError
from repro.functions import LinearFunction, SquaredDistanceFunction
from repro.workloads import (
    COVERTYPE_RANKING_CARDINALITIES,
    COVERTYPE_SELECTION_CARDINALITIES,
    QuerySpec,
    SyntheticSpec,
    generate_queries,
    generate_relation,
    make_covertype_like,
    make_ranking_function,
    random_predicate,
)


class TestSyntheticGenerator:
    def test_shapes_and_ranges(self):
        spec = SyntheticSpec(num_tuples=500, num_selection_dims=4,
                             num_ranking_dims=3, cardinality=7, seed=1)
        relation = generate_relation(spec)
        assert relation.num_tuples == 500
        assert len(relation.selection_dims) == 4
        assert len(relation.ranking_dims) == 3
        values = relation.ranking_matrix()
        assert values.min() >= 0.0 and values.max() <= 1.0
        for dim in relation.selection_dims:
            assert relation.cardinality(dim) <= 7

    def test_reproducibility(self):
        spec = SyntheticSpec(num_tuples=100, seed=5)
        a = generate_relation(spec)
        b = generate_relation(spec)
        assert np.array_equal(a.ranking_matrix(), b.ranking_matrix())
        assert np.array_equal(a.selection_matrix(), b.selection_matrix())

    def test_invalid_distribution(self):
        with pytest.raises(ValueError):
            SyntheticSpec(distribution="X")

    def test_distributions_differ(self):
        base = dict(num_tuples=2000, num_selection_dims=1, num_ranking_dims=2, seed=3)
        uniform = generate_relation(SyntheticSpec(distribution="E", **base))
        correlated = generate_relation(SyntheticSpec(distribution="C", **base))
        anti = generate_relation(SyntheticSpec(distribution="A", **base))
        def corr(rel):
            m = rel.ranking_matrix()
            return np.corrcoef(m[:, 0], m[:, 1])[0, 1]
        assert corr(correlated) > 0.5
        assert corr(anti) < corr(correlated)
        assert abs(corr(uniform)) < 0.2

    def test_cardinality_override(self):
        spec = SyntheticSpec(num_tuples=300, num_selection_dims=2, cardinality=5)
        relation = generate_relation(spec, cardinalities=[2, 50])
        assert relation.cardinality("A1") <= 2
        assert relation.cardinality("A2") > 10
        with pytest.raises(ValueError):
            generate_relation(spec, cardinalities=[2])


class TestQueryGenerator:
    def test_generate_queries(self):
        relation = generate_relation(SyntheticSpec(num_tuples=400, seed=2))
        queries = generate_queries(relation, QuerySpec(k=5, num_selection_conditions=2,
                                                       num_ranking_dims=2), count=7)
        assert len(queries) == 7
        for query in queries:
            assert query.k == 5
            assert len(query.predicate) == 2
            query.validate(relation)
            # Predicate values exist in the data, so queries are satisfiable.
            assert len(relation.tids_matching(query.predicate.as_dict)) >= 0

    def test_too_many_conditions_rejected(self):
        relation = generate_relation(SyntheticSpec(num_tuples=100, num_selection_dims=2))
        with pytest.raises(QueryError):
            generate_queries(relation, QuerySpec(num_selection_conditions=5))
        with pytest.raises(QueryError):
            generate_queries(relation, QuerySpec(num_ranking_dims=9))

    def test_make_ranking_function(self):
        linear = make_ranking_function(["N1", "N2"], "linear", 3.0)
        assert isinstance(linear, LinearFunction)
        distance = make_ranking_function(["N1"], "distance", 1.0)
        assert isinstance(distance, SquaredDistanceFunction)
        with pytest.raises(QueryError):
            make_ranking_function(["N1"], "mystery", 1.0)

    def test_random_predicate_is_satisfiable(self):
        relation = generate_relation(SyntheticSpec(num_tuples=300, seed=4))
        predicate = random_predicate(relation, 2)
        assert len(relation.tids_matching(predicate.as_dict)) >= 1


class TestCovertypeSurrogate:
    def test_schema_shape(self):
        relation = make_covertype_like(num_tuples=2000)
        assert len(relation.selection_dims) == len(COVERTYPE_SELECTION_CARDINALITIES)
        assert len(relation.ranking_dims) == len(COVERTYPE_RANKING_CARDINALITIES)
        assert relation.num_tuples == 2000
        # Low-cardinality binary attributes stay binary.
        assert relation.cardinality("A12") <= 2
        # High-cardinality attributes stay high-cardinality (within sample size).
        assert relation.cardinality("A1") > 50

    def test_ranking_values_are_correlated_and_bounded(self):
        relation = make_covertype_like(num_tuples=3000, seed=1)
        matrix = relation.ranking_matrix()
        assert matrix.min() >= 0.0 and matrix.max() <= 1.0
        assert np.corrcoef(matrix[:, 0], matrix[:, 1])[0, 1] > 0.3

    def test_reproducible(self):
        a = make_covertype_like(num_tuples=500, seed=9)
        b = make_covertype_like(num_tuples=500, seed=9)
        assert np.array_equal(a.ranking_matrix(), b.ranking_matrix())
