"""Tests for the page-based R-tree: bulk loading, search structure, inserts."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import IndexError_
from repro.storage.rtree import RTree, capacity_for_page_size


@pytest.fixture(scope="module")
def built_tree():
    rng = np.random.default_rng(11)
    points = rng.random((600, 2))
    tree = RTree.build(["X", "Y"], points, max_entries=8)
    return tree, points


class TestConstruction:
    def test_capacity_from_page_size(self):
        assert capacity_for_page_size(4096, 2) > 100
        assert capacity_for_page_size(64, 5) >= 4

    def test_requires_dims(self):
        with pytest.raises(IndexError_):
            RTree([])

    def test_bad_point_shape(self):
        with pytest.raises(IndexError_):
            RTree.build(["X", "Y"], np.zeros((5, 3)))

    def test_double_build_rejected(self, built_tree):
        tree, points = built_tree
        with pytest.raises(IndexError_):
            tree._bulk_load(points, None)

    def test_empty_tree(self):
        tree = RTree.build(["X"], np.empty((0, 1)))
        assert tree.height() == 1
        assert tree.root().is_leaf
        assert tree.count_tuples() == 0

    def test_structure_invariants(self, built_tree):
        tree, points = built_tree
        assert tree.num_entries == len(points)
        assert tree.count_tuples() == len(points)
        assert tree.height() >= 3
        assert tree.node_count() >= len(points) / 8
        # Every node's box contains its children's boxes.
        for node in tree.iter_nodes():
            if node.is_leaf:
                for entry in tree.leaf_entries(node):
                    assert node.box.contains_point(dict(zip(tree.dims, entry.values)))
            else:
                for child in tree.children(node):
                    assert node.box.contains_box(child.box)

    def test_leaf_capacity_respected(self, built_tree):
        tree, _ = built_tree
        for node in tree.iter_nodes():
            if node.is_leaf:
                assert len(tree.leaf_entries(node)) <= tree.max_entries

    def test_leaf_entries_requires_leaf(self, built_tree):
        tree, _ = built_tree
        with pytest.raises(IndexError_):
            tree.leaf_entries(tree.root())


class TestPaths:
    def test_tuple_paths_unique_and_consistent(self, built_tree):
        tree, points = built_tree
        paths = dict(tree.iter_tuple_paths())
        assert len(paths) == len(points)
        assert len(set(paths.values())) == len(points)
        assert all(len(path) == tree.height() for path in paths.values())
        # path positions are 1-based and within node capacity
        for path in paths.values():
            assert all(1 <= p <= tree.max_entries for p in path)

    def test_path_of_tid(self, built_tree):
        tree, _ = built_tree
        paths = dict(tree.iter_tuple_paths())
        assert tree.path_of_tid(5) == paths[5]
        with pytest.raises(IndexError_):
            tree.path_of_tid(10 ** 9)


class TestInsert:
    def _fresh_tree(self, count=60, max_entries=4):
        rng = np.random.default_rng(3)
        points = rng.random((count, 2))
        return RTree.build(["X", "Y"], points, max_entries=max_entries), points

    def test_insert_without_split(self):
        tree, points = self._fresh_tree(count=10, max_entries=8)
        outcome = tree.insert([0.5, 0.5], 10)
        assert not outcome.split_occurred
        assert outcome.old_paths == {}
        assert list(outcome.new_paths) == [10]
        assert tree.num_entries == 11
        assert tree.path_of_tid(10) == outcome.new_paths[10]

    def test_insert_with_splits_reports_changed_paths(self):
        tree, points = self._fresh_tree(count=64, max_entries=4)
        before = dict(tree.iter_tuple_paths())
        rng = np.random.default_rng(5)
        split_seen = False
        next_tid = len(points)
        for _ in range(40):
            point = rng.random(2)
            outcome = tree.insert(point.tolist(), next_tid)
            after = dict(tree.iter_tuple_paths())
            assert after[next_tid] == outcome.new_paths[next_tid]
            if outcome.split_occurred:
                split_seen = True
                for tid, old_path in outcome.old_paths.items():
                    assert before.get(tid) == old_path or before.get(tid) is None
                for tid, new_path in outcome.new_paths.items():
                    assert after[tid] == new_path
            # Tuples not reported must not have moved.
            reported = set(outcome.new_paths)
            for tid, path in after.items():
                if tid not in reported and tid in before:
                    assert before[tid] == path, f"unreported move of tid {tid}"
            before = after
            next_tid += 1
        assert split_seen, "the workload should have triggered at least one split"

    def test_insert_dimension_check(self):
        tree, _ = self._fresh_tree(count=10)
        with pytest.raises(IndexError_):
            tree.insert([0.1], 99)

    def test_insert_requires_built_tree(self):
        tree = RTree(["X"])
        with pytest.raises(IndexError_):
            tree.insert([0.5], 0)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=1, max_value=120), st.integers(min_value=4, max_value=10))
def test_bulk_load_indexes_every_point(count, max_entries):
    """Every point ends up in exactly one leaf, inside its leaf's box."""
    rng = np.random.default_rng(count)
    points = rng.random((count, 3))
    tree = RTree.build(["A", "B", "C"], points, max_entries=max_entries)
    seen = {}
    for node in tree.iter_nodes():
        if node.is_leaf:
            for entry in tree.leaf_entries(node):
                assert entry.tid not in seen
                seen[entry.tid] = entry.values
    assert len(seen) == count
    for tid, values in seen.items():
        assert np.allclose(values, points[tid])
