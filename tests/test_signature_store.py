"""Tests for partial-signature decomposition and the paged signature store."""

from __future__ import annotations

import pytest

from repro.errors import SignatureError
from repro.signature import (
    Signature,
    SignatureStore,
    decompose_signature,
    reassemble_signature,
)
from repro.signature.store import CombinedSignatureReader
from repro.storage.pager import Pager


def wide_signature(paths, fanout=8):
    return Signature.from_paths(paths, fanout=fanout)


@pytest.fixture()
def deep_signature():
    paths = [(i % 4 + 1, j % 4 + 1, (i + j) % 4 + 1) for i in range(6) for j in range(6)]
    return wide_signature(paths, fanout=4)


class TestDecomposition:
    def test_roundtrip(self, deep_signature):
        partials = decompose_signature(deep_signature, budget_bits=64)
        assert len(partials) > 1
        rebuilt = reassemble_signature(partials, deep_signature.fanout)
        assert rebuilt == deep_signature

    def test_single_partial_when_budget_large(self, deep_signature):
        partials = decompose_signature(deep_signature, budget_bits=10 ** 6)
        assert len(partials) == 1
        assert partials[0].ref_path == ()

    def test_refs_are_distinct_and_cover_all_nodes(self, deep_signature):
        partials = decompose_signature(deep_signature, budget_bits=64)
        refs = [p.ref_path for p in partials]
        assert len(refs) == len(set(refs))
        covered = set()
        for partial in partials:
            covered.update(partial.nodes)
        assert covered == set(deep_signature.nodes)

    def test_invalid_budget(self, deep_signature):
        with pytest.raises(SignatureError):
            decompose_signature(deep_signature, budget_bits=0)

    def test_empty_signature(self):
        assert decompose_signature(Signature(4), budget_bits=64) == []


class TestSignatureStore:
    def test_put_reader_roundtrip(self, deep_signature):
        store = SignatureStore(fanout=4, pager=Pager(page_size=64), alpha=0.5)
        pages = store.put(("A",), (1,), deep_signature)
        assert pages >= 1
        assert store.has_cell(("A",), (1,))
        reader = store.reader(("A",), (1,))
        for path in deep_signature.nodes:
            assert reader.test(path)
            for position in deep_signature.nodes[path]:
                assert reader.test(path + (position,))
        assert not reader.test((4, 4, 4, 4))
        assert reader.pages_loaded >= 1

    def test_reader_of_missing_cell(self):
        store = SignatureStore(fanout=4)
        reader = store.reader(("A",), (9,))
        assert not reader.test(())
        assert not reader.test((1,))

    def test_lazy_loading_counts_pages(self, deep_signature):
        store = SignatureStore(fanout=4, pager=Pager(page_size=64), alpha=0.5)
        store.put(("A",), (1,), deep_signature)
        reader = store.reader(("A",), (1,))
        reader.test((1,))
        first = reader.pages_loaded
        # Probing a deep path may require more partial signatures.
        deep_path = max(deep_signature.nodes, key=len)
        reader.test(deep_path + (next(iter(deep_signature.nodes[deep_path])),))
        assert reader.pages_loaded >= first

    def test_replace_cell_frees_old_pages(self, deep_signature):
        pager = Pager(page_size=64)
        store = SignatureStore(fanout=4, pager=pager, alpha=0.5)
        store.put(("A",), (1,), deep_signature)
        pages_before = pager.num_pages
        store.put(("A",), (1,), Signature.from_paths([(1, 1, 1)], 4))
        assert pager.num_pages <= pages_before
        reader = store.reader(("A",), (1,))
        assert reader.test((1, 1, 1))
        assert not reader.test((2,))

    def test_load_signature_reassembles(self, deep_signature):
        store = SignatureStore(fanout=4, pager=Pager(page_size=64))
        store.put(("A",), (1,), deep_signature)
        assert store.load_signature(("A",), (1,)) == deep_signature

    def test_sizes_and_cells(self, deep_signature):
        store = SignatureStore(fanout=4)
        store.put(("A",), (1,), deep_signature)
        store.put(("B",), (2,), Signature.from_paths([(1, 1, 1)], 4))
        assert store.total_size_bits() > 0
        assert store.total_size_bytes() > 0
        assert store.num_pages() >= 2
        assert set(store.cells()) == {(("A",), (1,)), (("B",), (2,))}

    def test_alpha_validation(self):
        with pytest.raises(SignatureError):
            SignatureStore(fanout=4, alpha=0.0)

    def test_combined_reader_is_conjunction(self):
        store = SignatureStore(fanout=4)
        store.put(("A",), (1,), Signature.from_paths([(1, 1), (2, 1)], 4))
        store.put(("B",), (1,), Signature.from_paths([(1, 1), (3, 1)], 4))
        combined = CombinedSignatureReader([
            store.reader(("A",), (1,)), store.reader(("B",), (1,))])
        assert combined.test((1, 1))
        assert not combined.test((2, 1))
        assert not combined.test((3, 1))
        assert combined.pages_loaded >= 2
        with pytest.raises(SignatureError):
            CombinedSignatureReader([])
