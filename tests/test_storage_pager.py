"""Tests for the simulated pager, I/O statistics, and buffer pool."""

from __future__ import annotations

import pytest

from repro.errors import PageNotFoundError
from repro.storage.buffer import BufferPool
from repro.storage.pager import IOStats, Pager, PagerGroup, estimate_size


class TestPager:
    def test_allocate_read_write(self):
        pager = Pager()
        pid = pager.allocate({"hello": 1})
        assert pager.read(pid) == {"hello": 1}
        pager.write(pid, [1, 2, 3])
        assert pager.read(pid) == [1, 2, 3]
        assert pager.num_pages == 1

    def test_free_and_missing_page(self):
        pager = Pager()
        pid = pager.allocate("x")
        pager.free(pid)
        with pytest.raises(PageNotFoundError):
            pager.read(pid)
        with pytest.raises(PageNotFoundError):
            pager.free(pid)
        with pytest.raises(PageNotFoundError):
            pager.write(pid, "y")

    def test_stats_counting(self):
        pager = Pager()
        pid = pager.allocate("payload")
        pager.read(pid)
        pager.read(pid, physical=False)
        assert pager.stats.logical_reads == 2
        assert pager.stats.physical_reads == 1
        assert pager.stats.writes == 1  # allocation with payload counts a write
        snapshot = pager.reset_stats()
        assert snapshot.physical_reads == 1
        assert pager.stats.physical_reads == 0

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            Pager(page_size=0)

    def test_total_pages_by_size(self):
        pager = Pager(page_size=100)
        pager.allocate(list(range(200)))  # bigger than one page
        pager.allocate("tiny")
        assert pager.total_pages_by_size() >= 3

    def test_iostats_diff(self):
        stats = IOStats(logical_reads=10, physical_reads=4, writes=2)
        earlier = IOStats(logical_reads=3, physical_reads=1, writes=1)
        diff = stats.diff(earlier)
        assert diff.logical_reads == 7
        assert diff.physical_reads == 3
        assert diff.writes == 1

    def test_estimate_size_handles_common_types(self):
        assert estimate_size(None) == 0
        assert estimate_size(3) == 8
        assert estimate_size("abcd") == 4
        assert estimate_size(b"abcd") == 4
        assert estimate_size([1, 2, 3]) == 8 + 24
        assert estimate_size({"a": 1}) > 0


class TestPagerGroup:
    def test_group_totals(self):
        group = PagerGroup()
        a = group.add("a")
        b = group.add("b")
        pid = a.allocate([1, 2, 3])
        a.read(pid)
        assert group.total_physical_reads() == 1
        assert group.total_bytes() > 0
        group.reset_stats()
        assert group.total_physical_reads() == 0
        assert group.get("b") is b


class TestBufferPool:
    def test_hits_and_misses(self):
        pager = Pager()
        pid = pager.allocate("payload")
        pool = BufferPool(pager, capacity=4)
        pool.read(pid)
        pool.read(pid)
        assert pool.misses == 1
        assert pool.hits == 1
        assert pager.stats.physical_reads == 1
        assert pool.hit_rate == pytest.approx(0.5)

    def test_eviction_lru(self):
        pager = Pager()
        pids = [pager.allocate(i) for i in range(5)]
        pool = BufferPool(pager, capacity=2)
        for pid in pids:
            pool.read(pid)
        # Only the last two pages remain cached.
        assert pool.contains(pids[-1]) and pool.contains(pids[-2])
        assert not pool.contains(pids[0])

    def test_unbounded_capacity(self):
        pager = Pager()
        pids = [pager.allocate(i) for i in range(10)]
        pool = BufferPool(pager, capacity=0)
        for pid in pids:
            pool.read(pid)
        assert all(pool.contains(pid) for pid in pids)

    def test_write_through_and_invalidate(self):
        pager = Pager()
        pid = pager.allocate("x")
        pool = BufferPool(pager, capacity=2)
        pool.write(pid, "y")
        assert pager.read(pid, physical=False) == "y"
        pool.invalidate(pid)
        assert not pool.contains(pid)
        pool.read(pid)
        pool.invalidate()
        assert not pool.contains(pid)

    def test_allocate_through_pool(self):
        pager = Pager()
        pool = BufferPool(pager, capacity=2)
        pid = pool.allocate("fresh")
        assert pool.contains(pid)
        assert pool.read(pid) == "fresh"
        assert pool.reset_counters() is None
        assert pool.hits == 0
