"""Fused batch execution and predicate-aware cache invalidation.

Covers the three fused layers (grid sweep, signature traversal, scatter
legs) against their per-query loops, the batch observability fields
(``fused_group_size``, ``plans_reused``, solo-equivalent
``tuples_evaluated``), the shared-work accounting (summing a fused batch
never double-counts a tuple scored once), the predicate-aware
``ResultCache.invalidate(row=...)`` under write traffic, and the tunable
``CostModel(**constants)`` constructor.
"""

from __future__ import annotations

import pytest

from repro.cube import RankingCube
from repro.engine import CostModel, Executor, ResultCache
from repro.functions import Add, ExpressionFunction, Mul, Var
from repro.functions.linear import LinearFunction, sum_function
from repro.query import Predicate, SkylineQuery, TopKQuery
from repro.signature import SignatureRankingCube, SignatureTopKExecutor
from repro.workloads import (
    SyntheticSpec,
    generate_relation,
    make_sharded_engine,
)


@pytest.fixture(scope="module")
def relation():
    return generate_relation(SyntheticSpec(
        num_tuples=2500, num_selection_dims=3, num_ranking_dims=2,
        cardinality=6, seed=71))


def shared_function_batch(function):
    """Mixed predicates and k over one function: one fusable group."""
    queries = [TopKQuery(Predicate.of(), function, k) for k in (1, 4, 9, 30)]
    queries += [TopKQuery(Predicate.of(A1=value), function, 5)
                for value in range(3)]
    queries.append(TopKQuery(Predicate.of(A1=2, A2=1), function, 7))
    return queries


class TestEngineBatchFusion:
    def test_fused_batch_is_bit_identical_and_cheaper(self, relation):
        function = LinearFunction(["N1", "N2"], [1.0, 2.0])
        queries = shared_function_batch(function)
        loop_engine = Executor.for_relation(relation, block_size=120,
                                            with_signature=False,
                                            with_skyline=False)
        fused_engine = Executor.for_relation(relation, block_size=120,
                                             with_signature=False,
                                             with_skyline=False)
        looped = [loop_engine.execute(query) for query in queries]
        fused = fused_engine.execute_many(queries)
        for alone, batched in zip(looped, fused):
            assert alone.tids == batched.tids
            assert alone.scores == batched.scores
        # Shared-work accounting: the batch aggregate counts each scored
        # tuple once, so it is strictly below the loop's aggregate...
        assert (sum(r.tuples_evaluated for r in fused)
                < sum(r.tuples_evaluated for r in looped))
        # ...while the solo-equivalent consumption is preserved per query.
        for alone, batched in zip(looped, fused):
            assert batched.extra["tuples_evaluated"] == float(
                alone.tuples_evaluated)
            assert batched.extra["fused_group_size"] == float(len(queries))
            assert batched.extra["plans_reused"] == 0.0
        stats = fused_engine.cache_stats()
        assert stats["fused_groups"] == 1.0
        assert stats["fused_queries"] == float(len(queries))

    def test_value_equal_function_objects_fuse(self, relation):
        engine = Executor.for_relation(relation, block_size=120,
                                       with_signature=False,
                                       with_skyline=False)
        queries = [
            TopKQuery(Predicate.of(), LinearFunction(["N1", "N2"], [1.0, 2.0]), 3),
            TopKQuery(Predicate.of(A1=1), LinearFunction(["N1", "N2"], [1.0, 2.0]), 3),
        ]
        results = engine.execute_many(queries)
        assert all(r.extra["fused_group_size"] == 2.0 for r in results)

    def test_uncacheable_functions_fuse_by_object_identity(self, relation):
        engine = Executor.for_relation(relation, block_size=120,
                                       with_signature=False,
                                       with_skyline=False)
        expr = ExpressionFunction(Add(Mul(Var("N1"), Var("N1")), Var("N2")),
                                  dims=("N1", "N2"))
        queries = [TopKQuery(Predicate.of(), expr, k) for k in (2, 6)]
        fused = engine.execute_many(queries)
        assert all(r.extra["fused_group_size"] == 2.0 for r in fused)
        engine.invalidate_results()
        for query, batched in zip(queries, fused):
            alone = engine.execute(query)
            assert alone.tids == batched.tids
            assert alone.scores == batched.scores
        # Uncacheable queries never enter the result cache.
        assert engine.cache_stats()["result_entries"] == 0.0

    def test_mixed_functions_form_separate_groups(self, relation):
        engine = Executor.for_relation(relation, block_size=120,
                                       with_signature=False,
                                       with_skyline=False)
        f1 = LinearFunction(["N1", "N2"], [1.0, 2.0])
        f2 = LinearFunction(["N1", "N2"], [5.0, 1.0])
        queries = ([TopKQuery(Predicate.of(), f1, k) for k in (2, 5)]
                   + [TopKQuery(Predicate.of(), f2, k) for k in (2, 5)]
                   + [TopKQuery(Predicate.of(),
                                LinearFunction(["N1"], [1.0]), 3)])
        results = engine.execute_many(queries)
        sizes = [r.extra["fused_group_size"] for r in results]
        assert sizes == [2.0, 2.0, 2.0, 2.0, 1.0]
        assert engine.cache_stats()["fused_groups"] == 2.0

    def test_skyline_queries_pass_through_unfused(self, relation):
        engine = Executor.for_relation(relation, block_size=120,
                                       rtree_max_entries=16)
        queries = [
            SkylineQuery(Predicate.of(), ("N1", "N2")),
            TopKQuery(Predicate.of(), sum_function(["N1", "N2"]), 4),
        ]
        results = engine.execute_many(queries)
        alone = engine.execute(queries[0])
        assert tuple(sorted(results[0].tids)) == tuple(sorted(alone.tids))
        assert results[0].extra["fused_group_size"] == 1.0


class TestCubeAndSignatureBatch:
    def test_grid_query_batch_parity(self, relation):
        cube = RankingCube(relation, block_size=120)
        function = LinearFunction(["N1", "N2"], [2.0, 1.0])
        queries = shared_function_batch(function)
        solo = [cube.query(query) for query in queries]
        fused = cube.query_batch(queries)
        for alone, batched in zip(solo, fused):
            assert alone.tids == batched.tids
            assert alone.scores == batched.scores
            assert batched.extra["tuples_evaluated"] == float(
                alone.tuples_evaluated)
            assert batched.states_generated == alone.states_generated
            assert batched.peak_heap_size == alone.peak_heap_size
        assert (sum(r.tuples_evaluated for r in fused)
                < sum(r.tuples_evaluated for r in solo))
        assert cube.query_batch([]) == []

    def test_signature_query_batch_parity(self, relation):
        signature = SignatureRankingCube(relation, rtree_max_entries=8)
        executor = SignatureTopKExecutor(signature)
        function = LinearFunction(["N1", "N2"], [1.0, 3.0])
        queries = shared_function_batch(function)
        # Include a provably-absent predicate: its root signature test
        # fails and the query must come back empty from the shared walk.
        queries.append(TopKQuery(Predicate.of(A1=99), function, 3))
        solo = [executor.query(query) for query in queries]
        fused = executor.query_batch(queries)
        for alone, batched in zip(solo, fused):
            assert alone.tids == batched.tids
            assert alone.scores == batched.scores
        assert fused[-1].tids == ()
        assert (sum(r.tuples_evaluated for r in fused)
                < sum(r.tuples_evaluated for r in solo))


class TestScatterBatchFusion:
    def make(self, relation, num_shards=3, parallel=False):
        return make_sharded_engine(relation, num_shards, range_dim="A1",
                                   parallel=parallel, block_size=80,
                                   with_signature=False, with_skyline=False)

    def test_gathered_batch_matches_loop(self, relation):
        _, loop_engine = self.make(relation)
        _, fused_engine = self.make(relation)
        function = sum_function(["N1", "N2"])
        queries = shared_function_batch(function)
        looped = [loop_engine.execute(query) for query in queries]
        fused = fused_engine.execute_many(queries)
        for alone, batched in zip(looped, fused):
            assert alone.tids == batched.tids
            assert alone.scores == batched.scores
            assert batched.extra["fused_group_size"] == float(len(queries))
            assert "plans_reused" in batched.extra
            assert "tuples_evaluated" in batched.extra
            # Prune decisions stay per query in the fused scatter.
            assert (batched.extra["shards_consulted"]
                    == alone.extra["shards_consulted"])
            assert (batched.extra["shards_pruned"]
                    == alone.extra["shards_pruned"])
        assert (sum(r.tuples_evaluated for r in fused)
                <= sum(r.tuples_evaluated for r in looped))

    def test_parallel_batch_runs_one_leg_per_shard(self, relation):
        _, serial_engine = self.make(relation)
        _, parallel_engine = self.make(relation, parallel=True)
        queries = shared_function_batch(sum_function(["N1", "N2"]))
        serial = serial_engine.execute_many(queries)
        parallel = parallel_engine.execute_many(queries)
        for a, b in zip(serial, parallel):
            assert a.tids == b.tids
            assert a.scores == b.scores

    def test_sequential_batch_keeps_skip_bound(self, relation):
        # Range-sharded on A1 and queried with the empty predicate: legs
        # run in score-floor order and late shards can be skipped per
        # query once its k-th score beats their floor.
        _, engine = self.make(relation, num_shards=4)
        function = sum_function(["N1", "N2"])
        queries = [TopKQuery(Predicate.of(), function, k) for k in (1, 2)]
        fused = engine.execute_many(queries)
        solo_engine = Executor.for_relation(relation, block_size=80,
                                            with_signature=False,
                                            with_skyline=False)
        for query, batched in zip(queries, fused):
            alone = solo_engine.execute(query)
            assert alone.tids == batched.tids
            assert alone.scores == batched.scores

    def test_batch_repeats_hit_the_result_cache(self, relation):
        _, engine = self.make(relation)
        query = TopKQuery(Predicate.of(A1=1), sum_function(["N1", "N2"]), 5)
        results = engine.execute_many([query, query, query])
        assert results[0].extra["result_cache"] == "miss"
        assert results[1].extra["result_cache"] == "hit"
        assert results[2].extra["result_cache"] == "hit"
        assert results[0].tids == results[1].tids == results[2].tids
        stats = engine.cache_stats()
        assert stats["result_hits"] == 2.0


class TestPredicateAwareInvalidation:
    def entry_keys(self):
        return {
            "match": (7, "topk", (("A1", 1),), ("LinearFunction",), 5),
            "other_value": (7, "topk", (("A1", 2),), ("LinearFunction",), 5),
            "other_dim": (7, "topk", (("A2", 9),), ("LinearFunction",), 5),
            "empty": (7, "topk", (), ("LinearFunction",), 5),
            "skyline_match": (7, "skyline", (("A1", 1),), ("N1", "N2"), None),
            "skyline_other": (7, "skyline", (("A1", 3),), ("N1", "N2"), None),
            "weird": (7, "something-else"),
        }

    def fill(self, cache):
        from repro.query import QueryResult

        for key in self.entry_keys().values():
            cache.store(key, QueryResult(tids=(), scores=()))

    def test_row_aware_drop_keeps_provably_unaffected_entries(self):
        cache = ResultCache()
        keys = self.entry_keys()
        self.fill(cache)
        cache.invalidate(row={"A1": 1, "A2": 0, "N1": 0.5, "N2": 0.5})
        # Entries whose predicate the row satisfies (or may satisfy) drop…
        assert cache.get(keys["match"]) is None
        assert cache.get(keys["empty"]) is None
        assert cache.get(keys["skyline_match"]) is None
        assert cache.get(keys["weird"]) is None  # unknown shape: conservative
        # …while provably unaffected entries survive.
        assert cache.get(keys["other_value"]) is not None
        assert cache.get(keys["other_dim"]) is not None
        assert cache.get(keys["skyline_other"]) is not None
        assert cache.invalidations == 1

    def test_blanket_invalidate_still_clears_everything(self):
        cache = ResultCache()
        self.fill(cache)
        cache.invalidate()
        assert len(cache) == 0

    def test_write_traffic_keeps_unaffected_entries_hot(self):
        # A private relation: the insert below mutates it.
        mutable = generate_relation(SyntheticSpec(
            num_tuples=900, num_selection_dims=3, num_ranking_dims=2,
            cardinality=6, seed=72))
        manager, engine = make_sharded_engine(
            mutable, 3, range_dim="A1", block_size=80,
            with_signature=False, with_skyline=False)
        function = sum_function(["N1", "N2"])
        hot = TopKQuery(Predicate.of(A1=4), function, 5)
        cold = TopKQuery(Predicate.of(A1=1), function, 5)
        broad = TopKQuery(Predicate.of(), function, 5)
        engine.execute_many([hot, cold, broad])
        hits_before = engine.cache_stats()["result_hits"]

        manager.insert({"A1": 1, "A2": 0, "A3": 0, "N1": -1.0, "N2": -1.0})

        # The untouched predicate still hits; the matching predicate and
        # the match-everything empty predicate re-execute.
        assert engine.execute(hot).extra["result_cache"] == "hit"
        assert engine.cache_stats()["result_hits"] == hits_before + 1
        cold_result = engine.execute(cold)
        assert cold_result.extra["result_cache"] == "miss"
        broad_result = engine.execute(broad)
        assert broad_result.extra["result_cache"] == "miss"
        # And the re-executed answers see the new global best row.
        new_tid = mutable.num_tuples - 1
        assert cold_result.tids[0] == new_tid
        assert broad_result.tids[0] == new_tid

    def test_reshard_clears_everything(self, relation):
        from repro.shard import HashShardingPolicy

        manager, engine = make_sharded_engine(
            relation, 3, range_dim="A1", block_size=80,
            with_signature=False, with_skyline=False)
        queries = [TopKQuery(Predicate.of(A1=value),
                             sum_function(["N1", "N2"]), 4)
                   for value in range(3)]
        engine.execute_many(queries)
        assert engine.cache_stats()["result_entries"] == 3.0
        manager.reshard(HashShardingPolicy(2))
        assert engine.cache_stats()["result_entries"] == 0.0


class TestCostModelConstants:
    def test_override_constants(self):
        model = CostModel(block_touch_cost=12.5, row_filter_cost=0.05)
        assert model.block_touch_cost == 12.5
        assert model.row_filter_cost == 0.05
        # Class defaults are untouched.
        assert CostModel.block_touch_cost == 8.0
        assert CostModel().block_touch_cost == 8.0

    def test_unknown_constant_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown cost constant"):
            CostModel(block_tuch_cost=3.0)
