"""Process-based scatter: worker lifecycle, crashes, freshness, crossover.

Behavioral coverage of :class:`~repro.shard.ProcessScatterExecutor` and its
:class:`~repro.shard.ShardWorker` plumbing — the parity claims (answers
bit-identical to the brute-force oracle, solo and fused, across shard
counts {1, 2, 7}) live in ``tests/test_parity_oracle.py``.  Here the
subjects are the edges:

* a killed worker process surfaces a :class:`ShardWorkerError` naming the
  shard and exit code instead of hanging, and the next scatter respawns;
* ``insert`` / ``reshard`` through the manager reach the worker processes
  (no stale shared-memory answers);
* the cost model's ``process_leg_overhead`` crossover routes small legs
  to threads and heavy legs to processes;
* ``close()`` / context-manager use provably leaves no worker processes
  and no executor threads behind, and a closed engine stays usable.
"""

from __future__ import annotations

import multiprocessing
import threading

import pytest

from repro.engine.cost import CostModel
from repro.errors import PlanningError, ShardWorkerError
from repro.functions.linear import sum_function
from repro.query import Predicate, TopKQuery
from repro.shard import (
    HashShardingPolicy,
    ProcessScatterExecutor,
    RangeShardingPolicy,
    ScatterGatherExecutor,
    ShardManager,
)
from repro.workloads import SyntheticSpec, generate_relation


@pytest.fixture(scope="module")
def relation():
    return generate_relation(SyntheticSpec(
        num_tuples=400, num_selection_dims=2, num_ranking_dims=2,
        cardinality=4, seed=21))


def forced(overhead: float) -> CostModel:
    """A cost model pinning the thread/process crossover to one side."""
    model = CostModel()
    model.process_leg_overhead = overhead
    return model


def make_process_engine(relation, num_shards=2, overhead=0.0, **kwargs):
    manager = ShardManager(relation, HashShardingPolicy(num_shards),
                           block_size=50, with_signature=False,
                           with_skyline=False)
    return manager, ProcessScatterExecutor(manager,
                                           cost_model=forced(overhead),
                                           **kwargs)


def topk(k=5, **conditions):
    return TopKQuery(Predicate.of(conditions), sum_function(["N1", "N2"]), k)


class TestWorkerFailure:
    def test_killed_worker_surfaces_shard_and_exit_code(self, relation):
        manager, engine = make_process_engine(relation)
        with engine:
            engine.execute(topk())  # spawns both workers
            worker = engine._workers[0]
            worker.process.kill()
            worker.process.join()
            # A request hitting the dead pipe mid-use must fail loudly —
            # naming the shard and exit code — never hang on the recv.
            with pytest.raises(ShardWorkerError,
                               match=r"shard 0 worker process died "
                                     r"\(exit code -?\d+\)"):
                worker.request("ping")
            # The engine notices the corpse before the next dispatch and
            # respawns: queries keep flowing after a crash.
            manager.invalidate_caches()
            result = engine.execute(topk())
            assert result.tids
            assert engine._workers[0] is not worker
            assert engine._workers[0].alive

    def test_crash_error_is_a_repro_error(self):
        from repro.errors import ReproError

        assert issubclass(ShardWorkerError, ReproError)


class TestFreshness:
    def test_insert_through_manager_reaches_workers(self, relation):
        manager, engine = make_process_engine(relation)
        with engine:
            query = topk(k=3, A1=2)
            engine.execute(query)
            row = {"A1": 2, "A2": 1, "N1": 0.0, "N2": 0.0}  # new global best
            global_tid = manager.insert(row)
            result = engine.execute(query)
            assert result.extra["scatter_mode"] == "processes"
            assert result.tids[0] == global_tid

    def test_reshard_rebuilds_workers_and_keeps_answers(self, relation):
        manager, engine = make_process_engine(relation)
        with engine:
            query = topk(k=6, A2=1)
            before = engine.execute(query)
            old_workers = dict(engine._workers)
            manager.reshard(RangeShardingPolicy(relation, "A1", 3))
            after = engine.execute(query)
            assert after.tids == before.tids
            assert after.scores == before.scores
            # Resharding repartitioned every shard's rows: the old workers'
            # shared-memory copies are stale and must not survive.
            assert all(not worker.alive for worker in old_workers.values())


class TestCrossover:
    def test_small_legs_stay_on_threads(self, relation):
        manager, engine = make_process_engine(relation,
                                              overhead=float("inf"))
        with engine:
            result = engine.execute(topk())
            assert result.extra["scatter_mode"] == "threads"
            assert engine.cache_stats()["shard_workers"] == 0.0
            assert engine._workers == {}

    def test_heavy_legs_offload_to_processes(self, relation):
        manager, engine = make_process_engine(relation, overhead=0.0)
        with engine:
            result = engine.execute(topk())
            assert result.extra["scatter_mode"] == "processes"
            assert engine.cache_stats()["shard_workers"] == 2.0

    def test_worker_metrics_fold_into_snapshot(self, relation):
        _, engine = make_process_engine(relation)
        with engine:
            engine.execute(topk(k=4, A1=1))
            snap = engine.metrics_snapshot()
            # The per-shard engines live in other processes; their
            # ``engine.*`` counters ride back on the reply and must fold
            # into the merged snapshot exactly like in-process stacks do.
            assert snap.get("engine.queries", 0.0) > 0.0
            assert snap.get("shard.process_legs", 0.0) >= 2.0


class TestLifecycle:
    def test_context_manager_leaves_no_workers_or_threads(self, relation):
        threads_before = set(threading.enumerate())
        manager, engine = make_process_engine(relation, parallel=True)
        with engine:
            engine.execute(topk())
            assert engine.cache_stats()["shard_workers"] == 2.0
        assert multiprocessing.active_children() == []
        leaked = set(threading.enumerate()) - threads_before
        assert leaked == set()

    def test_thread_scatter_close_leaves_no_pool_threads(self, relation):
        threads_before = set(threading.enumerate())
        manager = ShardManager(relation, HashShardingPolicy(3),
                               block_size=50, with_signature=False,
                               with_skyline=False)
        with ScatterGatherExecutor(manager, parallel=True) as engine:
            engine.execute(topk())
            # Upsizing the pool retires the old one; close() must join the
            # retired pool's threads too, not only the live pool's.
            engine.ensure_pool(reserve=4)
            engine.execute_many([topk(k=2), topk(k=3, A1=1)])
        leaked = set(threading.enumerate()) - threads_before
        assert leaked == set()

    def test_closed_engine_is_lazily_reusable(self, relation):
        manager, engine = make_process_engine(relation)
        try:
            first = engine.execute(topk(k=4))
            engine.close()
            assert engine._workers == {}
            manager.invalidate_caches()
            again = engine.execute(topk(k=4))
            assert again.tids == first.tids
            assert again.scores == first.scores
        finally:
            engine.close()
        assert multiprocessing.active_children() == []

    def test_custom_shard_factory_is_rejected(self, relation):
        from repro.engine import Executor

        manager = ShardManager(
            relation, HashShardingPolicy(2),
            executor_factory=lambda rel: Executor.for_relation(rel))
        with pytest.raises(PlanningError, match="executor_factory"):
            ProcessScatterExecutor(manager)


class TestFaultContainment:
    def test_fused_group_failure_spares_the_rest_of_the_batch(self, relation):
        """One fused group's dead leg fails its riders, not the batch.

        The injected crash (a real process kill, one fault total) lands
        on the first group's leg; strict mode fails that group's two
        members, the second group's legs respawn the worker and answer,
        and the batch surfaces both through one
        :class:`~repro.errors.PartialBatchError`.
        """
        from repro.errors import PartialBatchError
        from repro.fault import FaultInjector
        from tests.conftest import brute_force_topk

        injector = FaultInjector(seed=5, rates={"worker.crash.pre": 1.0},
                                 max_faults=1)
        manager, engine = make_process_engine(relation,
                                              fault_injector=injector)
        f_hit = sum_function(["N1", "N2"])
        f_spared = sum_function(["N1"])
        batch = [TopKQuery(Predicate.of(), f_hit, 3),
                 TopKQuery(Predicate.of(), f_hit, 5),
                 TopKQuery(Predicate.of(), f_spared, 3),
                 TopKQuery(Predicate.of(), f_spared, 5)]
        with engine:
            with pytest.raises(PartialBatchError) as excinfo:
                engine.execute_many(batch)
        error = excinfo.value
        assert set(error.errors) == {0, 1}
        assert isinstance(error.errors[0], ShardWorkerError)
        assert error.results[0] is None and error.results[1] is None
        assert injector.total_fired == 1
        for position in (2, 3):
            result = error.results[position]
            tids, scores = brute_force_topk(relation, batch[position])
            assert result.tids == tids
            assert result.scores == scores

    def test_bounded_recv_kills_hung_worker_and_flags_timeout(self, relation):
        import time

        manager, engine = make_process_engine(relation, recv_timeout=0.3)
        with engine:
            engine.execute(topk())
            worker = engine._workers[0]
            assert worker.recv_timeout == 0.3
            started = time.monotonic()
            with pytest.raises(ShardWorkerError,
                               match="did not reply") as excinfo:
                worker.request("hang", 5.0)
            # The bounded recv, not the 5s nap, ended the wait.
            assert time.monotonic() - started < 3.0
            assert excinfo.value.timed_out
            assert excinfo.value.shard_index == 0
            # A hang kill is a normal worker death to the scatter: the
            # next dispatch respawns and answers.
            manager.invalidate_caches()
            result = engine.execute(topk())
            assert result.tids
            assert engine._workers[0] is not worker
            assert engine._workers[0].alive

    def test_genuine_worker_death_is_not_flagged_timed_out(self, relation):
        manager, engine = make_process_engine(relation)
        with engine:
            engine.execute(topk())
            worker = engine._workers[0]
            worker.process.kill()
            worker.process.join()
            with pytest.raises(ShardWorkerError) as excinfo:
                worker.request("ping")
            # Death and hang are distinguishable: only the recv-bound
            # kill carries the timed_out flag.
            assert not excinfo.value.timed_out
