"""Tests for skyline queries with boolean predicates (Chapter 7)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.query import Predicate, SkylineQuery
from repro.signature import SignatureRankingCube
from repro.skyline import (
    BooleanFirstSkyline,
    SkylineEngine,
    SkylineSession,
    dominated_by_any,
    dominates,
    skyline_of,
    transform_dynamic,
)
from repro.skyline.dominance import box_min_corner, mindist
from repro.geometry import Box
from repro.workloads import SyntheticSpec, generate_relation


@pytest.fixture(scope="module")
def relation():
    return generate_relation(SyntheticSpec(num_tuples=2000, num_selection_dims=3,
                                           num_ranking_dims=3, cardinality=5, seed=81))


@pytest.fixture(scope="module")
def cube(relation):
    return SignatureRankingCube(relation, rtree_max_entries=16)


@pytest.fixture(scope="module")
def engine(cube):
    return SkylineEngine(cube)


class TestDominance:
    def test_dominates(self):
        assert dominates((1, 2), (2, 3))
        assert dominates((1, 2), (1, 3))
        assert not dominates((1, 2), (1, 2))
        assert not dominates((1, 4), (2, 3))

    def test_dominated_by_any(self):
        assert dominated_by_any((2, 2), [(1, 1), (5, 5)])
        assert not dominated_by_any((0, 0), [(1, 1)])

    def test_skyline_of_small_set(self):
        points = [(0, (1.0, 5.0)), (1, (2.0, 2.0)), (2, (5.0, 1.0)), (3, (3.0, 3.0))]
        skyline = skyline_of(points)
        assert {tid for tid, _ in skyline} == {0, 1, 2}

    def test_transform_dynamic(self):
        assert transform_dynamic((1.0, 2.0), None) == (1.0, 2.0)
        assert transform_dynamic((1.0, 2.0), (2.0, 2.0)) == (1.0, 0.0)

    def test_box_min_corner(self):
        box = Box.from_bounds(["x", "y"], [0.2, 0.4], [0.6, 0.8])
        assert box_min_corner(box, ["x", "y"]) == (0.2, 0.4)
        assert box_min_corner(box, ["x", "y"], [0.5, 0.0]) == (0.0, 0.4)
        assert mindist((0.2, 0.4)) == pytest.approx(0.6)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.floats(0, 1), st.floats(0, 1)), min_size=1, max_size=40))
    def test_skyline_points_are_mutually_non_dominating(self, raw):
        points = [(i, tuple(v)) for i, v in enumerate(raw)]
        skyline = skyline_of(points)
        values = [vals for _, vals in skyline]
        for i, a in enumerate(values):
            for j, b in enumerate(values):
                if i != j:
                    assert not dominates(a, b)
        # Every excluded point is dominated by some skyline point.
        excluded = [vals for _, vals in points if vals not in values]
        for vals in excluded:
            assert dominated_by_any(vals, values)


class TestSkylineEngine:
    def test_static_skyline_matches_baseline(self, relation, engine):
        query = SkylineQuery(Predicate.of(A1=2), ("N1", "N2"))
        assert engine.query(query).tids == BooleanFirstSkyline(relation).query(query).tids

    def test_three_dim_skyline(self, relation, engine):
        query = SkylineQuery(Predicate.of(A2=1), ("N1", "N2", "N3"))
        assert engine.query(query).tids == BooleanFirstSkyline(relation).query(query).tids

    def test_dynamic_skyline_matches_baseline(self, relation, engine):
        query = SkylineQuery(Predicate.of(A1=1), ("N1", "N2"), (0.5, 0.5))
        assert engine.query(query).tids == BooleanFirstSkyline(relation).query(query).tids

    def test_multiple_predicates(self, relation, engine):
        query = SkylineQuery(Predicate.of(A1=3, A3=0), ("N1", "N2"))
        assert engine.query(query).tids == BooleanFirstSkyline(relation).query(query).tids

    def test_empty_predicate(self, relation, engine):
        query = SkylineQuery(Predicate.of(), ("N1", "N2"))
        assert engine.query(query).tids == BooleanFirstSkyline(relation).query(query).tids

    def test_unsatisfiable_predicate(self, relation, engine):
        query = SkylineQuery(Predicate.of(A1=999), ("N1", "N2"))
        assert engine.query(query).tids == ()

    def test_engine_without_signature_verifies(self, relation, cube):
        unsigned = SkylineEngine(cube, use_signature=False)
        query = SkylineQuery(Predicate.of(A1=2), ("N1", "N2"))
        assert unsigned.query(query).tids == \
            BooleanFirstSkyline(relation).query(query).tids

    def test_statistics_reported(self, engine):
        query = SkylineQuery(Predicate.of(A1=2), ("N1", "N2"))
        result = engine.query(query)
        assert result.nodes_expanded > 0
        assert result.peak_heap_size > 0
        assert result.disk_accesses >= 0
        assert len(result) == len(result.tids)

    def test_signature_engine_expands_fewer_nodes(self, relation, cube):
        signed = SkylineEngine(cube, use_signature=True)
        unsigned = SkylineEngine(cube, use_signature=False)
        query = SkylineQuery(Predicate.of(A1=0, A2=0), ("N1", "N2"))
        assert signed.query(query).nodes_expanded <= unsigned.query(query).nodes_expanded


class TestSkylineSession:
    def test_drill_down_and_roll_up(self, relation, engine):
        session = SkylineSession(engine)
        base_query = SkylineQuery(Predicate.of(A1=1), ("N1", "N2"))
        session.fresh(base_query)
        drilled = session.drill_down({"A2": 2})
        expected = BooleanFirstSkyline(relation).query(
            SkylineQuery(Predicate.of(A1=1, A2=2), ("N1", "N2")))
        assert drilled.tids == expected.tids
        rolled = session.roll_up(["A2"])
        expected_up = BooleanFirstSkyline(relation).query(base_query)
        assert rolled.tids == expected_up.tids

    def test_navigation_requires_previous_query(self, engine):
        from repro.errors import QueryError
        session = SkylineSession(engine)
        with pytest.raises(QueryError):
            session.drill_down({"A1": 1})
        with pytest.raises(QueryError):
            session.roll_up(["A1"])

    def test_drill_down_reuses_buffers(self, relation, engine):
        session = SkylineSession(engine)
        fresh = session.fresh(SkylineQuery(Predicate.of(A1=1), ("N1", "N2", "N3")))
        drilled = session.drill_down({"A2": 1})
        assert drilled.disk_accesses <= fresh.disk_accesses
