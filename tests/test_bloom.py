"""Tests for the Bloom filter used by compressed join-signatures."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.indexmerge import BloomFilter


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(num_bits=256, num_hashes=3)
        items = [(i, i * 2) for i in range(50)]
        bloom.update(items)
        assert all(item in bloom for item in items)
        assert bloom.count == 50

    def test_rejects_most_absent_items(self):
        bloom = BloomFilter.sized_for(expected_items=100, max_bits=4096)
        bloom.update([("present", i) for i in range(100)])
        false_positives = sum(("absent", i) in bloom for i in range(1000))
        assert false_positives < 100  # well under 10% at this sizing
        assert 0 <= bloom.false_positive_rate() < 0.2

    def test_sizing_respects_cap(self):
        bloom = BloomFilter.sized_for(expected_items=10 ** 6, max_bits=1024)
        assert bloom.size_in_bits() == 1024

    def test_validation(self):
        with pytest.raises(ValueError):
            BloomFilter(0, 1)
        with pytest.raises(ValueError):
            BloomFilter(8, 0)

    def test_empty_filter_contains_nothing(self):
        bloom = BloomFilter(64, 2)
        assert ("x",) not in bloom
        assert bloom.false_positive_rate() == 0.0


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(), st.integers()), max_size=40))
def test_membership_property(items):
    """Everything inserted is always reported present (no false negatives)."""
    bloom = BloomFilter.sized_for(expected_items=max(1, len(items)), max_bits=2048)
    bloom.update(items)
    for item in items:
        assert item in bloom
