"""Tests for intervals, interval arithmetic, and boxes."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Box, Interval, bounding_box


finite = st.floats(min_value=-100, max_value=100, allow_nan=False)


def make_interval(a: float, b: float) -> Interval:
    return Interval(min(a, b), max(a, b))


class TestInterval:
    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            Interval(2.0, 1.0)

    def test_contains_and_clamp(self):
        iv = Interval(1.0, 3.0)
        assert iv.contains(1.0) and iv.contains(3.0) and iv.contains(2.0)
        assert not iv.contains(0.999)
        assert iv.clamp(-5) == 1.0
        assert iv.clamp(10) == 3.0
        assert iv.clamp(2.5) == 2.5

    def test_intersection_and_union(self):
        a, b = Interval(0, 2), Interval(1, 3)
        assert a.intersects(b)
        assert a.intersection(b) == Interval(1, 2)
        assert a.union_hull(b) == Interval(0, 3)
        assert Interval(0, 1).intersection(Interval(2, 3)) is None

    def test_touching_intervals_intersect(self):
        assert Interval(0, 1).intersects(Interval(1, 2))
        assert Interval(0, 1).intersection(Interval(1, 2)) == Interval(1, 1)

    def test_arithmetic_basics(self):
        a, b = Interval(1, 2), Interval(-1, 3)
        assert a + b == Interval(0, 5)
        assert a - b == Interval(-2, 3)
        assert (a * 2) == Interval(2, 4)
        assert (a * -1) == Interval(-2, -1)
        assert (-a) == Interval(-2, -1)
        assert (5 - a) == Interval(3, 4)

    def test_square_spanning_zero(self):
        assert Interval(-2, 3).square() == Interval(0, 9)
        assert Interval(1, 2).square() == Interval(1, 4)
        assert Interval(-3, -1).square() == Interval(1, 9)

    def test_abs(self):
        assert Interval(-2, 3).abs() == Interval(0, 3)
        assert Interval(-5, -2).abs() == Interval(2, 5)

    def test_power(self):
        assert Interval(-2, 1).power(2) == Interval(0, 4)
        assert Interval(-2, 1).power(3) == Interval(-8, 1)
        assert Interval(2, 3).power(0) == Interval(1, 1)
        with pytest.raises(ValueError):
            Interval(0, 1).power(-1)

    @given(finite, finite, finite, finite, st.floats(min_value=0, max_value=1))
    def test_addition_encloses_pointwise_sum(self, a1, a2, b1, b2, t):
        ia, ib = make_interval(a1, a2), make_interval(b1, b2)
        x = ia.low + t * ia.width
        y = ib.low + t * ib.width
        total = (ia + ib)
        assert total.low - 1e-9 <= x + y <= total.high + 1e-9

    @given(finite, finite, finite, finite, st.floats(min_value=0, max_value=1),
           st.floats(min_value=0, max_value=1))
    def test_multiplication_encloses_pointwise_product(self, a1, a2, b1, b2, s, t):
        ia, ib = make_interval(a1, a2), make_interval(b1, b2)
        x = ia.low + s * ia.width
        y = ib.low + t * ib.width
        prod = ia * ib
        assert prod.low - 1e-6 <= x * y <= prod.high + 1e-6

    @given(finite, finite, st.floats(min_value=0, max_value=1))
    def test_square_encloses_pointwise_square(self, a1, a2, t):
        iv = make_interval(a1, a2)
        x = iv.low + t * iv.width
        sq = iv.square()
        assert sq.low - 1e-6 <= x * x <= sq.high + 1e-6


class TestBox:
    def test_from_bounds_and_accessors(self):
        box = Box.from_bounds(["x", "y"], [0, 1], [2, 3])
        assert box.dims == ("x", "y")
        assert box.interval("x") == Interval(0, 2)
        assert box.lows() == (0, 1)
        assert box.highs() == (2, 3)

    def test_point_and_unit(self):
        point = Box.point({"x": 1.5})
        assert point.interval("x").width == 0
        unit = Box.unit(["a", "b"])
        assert unit.interval("a") == Interval(0, 1)

    def test_contains_and_intersects(self):
        big = Box.from_bounds(["x", "y"], [0, 0], [10, 10])
        small = Box.from_bounds(["x", "y"], [2, 2], [3, 3])
        assert big.contains_box(small)
        assert not small.contains_box(big)
        assert big.intersects(small)
        disjoint = Box.from_bounds(["x", "y"], [20, 20], [30, 30])
        assert not big.intersects(disjoint)
        assert big.intersection(disjoint) is None

    def test_intersection_and_union_hull(self):
        a = Box.from_bounds(["x"], [0], [5])
        b = Box.from_bounds(["x"], [3], [9])
        assert a.intersection(b).interval("x") == Interval(3, 5)
        assert a.union_hull(b).interval("x") == Interval(0, 9)

    def test_project_missing_dim_is_unbounded(self):
        box = Box.from_bounds(["x"], [0], [1])
        projected = box.project(["x", "z"])
        assert projected.interval("z").low == -math.inf

    def test_corners_count(self):
        box = Box.from_bounds(["x", "y", "z"], [0, 0, 0], [1, 1, 1])
        corners = list(box.corners())
        assert len(corners) == 8
        assert {tuple(sorted(c.items())) for c in corners} == {
            tuple(sorted({"x": float(i), "y": float(j), "z": float(k)}.items()))
            for i in (0, 1) for j in (0, 1) for k in (0, 1)
        }

    def test_volume_and_center(self):
        box = Box.from_bounds(["x", "y"], [0, 0], [2, 4])
        assert box.volume() == 8
        assert box.center() == {"x": 1.0, "y": 2.0}

    def test_with_interval(self):
        box = Box.from_bounds(["x", "y"], [0, 0], [1, 1])
        new = box.with_interval("x", Interval(5, 6))
        assert new.interval("x") == Interval(5, 6)
        assert box.interval("x") == Interval(0, 1)

    def test_equality_and_hash(self):
        a = Box.from_bounds(["x"], [0], [1])
        b = Box.from_bounds(["x"], [0], [1])
        assert a == b
        assert hash(a) == hash(b)

    def test_bounding_box(self):
        box = bounding_box(["x", "y"], [(0, 5), (2, 1), (-1, 3)])
        assert box.interval("x") == Interval(-1, 2)
        assert box.interval("y") == Interval(1, 5)
        with pytest.raises(ValueError):
            bounding_box(["x"], [])
