"""Tiny-N smoke tests for the operator-facing benchmark scripts.

``benchmarks/calibrate_cost_model.py`` and ``benchmarks/bench_serving.py``
are runnable by hand (and the latter in CI); without a test-suite smoke
they can rot silently against engine API changes.  Both scripts take a
``--tuples`` override exactly so these tests can drive them at sizes that
finish in well under a second.
"""

from __future__ import annotations

import importlib.util
import os
import re
import sys

import pytest

from repro.engine import CostModel

BENCH_DIR = os.path.join(os.path.dirname(__file__), "..", "benchmarks")


def load_benchmark(name: str):
    """Import a benchmark script (not a package module) by file name."""
    path = os.path.join(BENCH_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestCalibrateCostModel:
    def test_emits_valid_cost_model_snippet(self, capsys):
        calibrate = load_benchmark("calibrate_cost_model")
        assert calibrate.main(["--quick", "--tuples", "500",
                               "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        # The operator-facing contract: a ready-to-paste
        # ``CostModel(**constants)`` snippet whose constants construct.
        snippet = re.search(
            r"^CostModel\(\n((?:\s+\w+=\S+,\n)+)\)$", out, re.MULTILINE)
        assert snippet is not None, f"no CostModel snippet in output:\n{out}"
        constants = {}
        for line in snippet.group(1).strip().splitlines():
            name, value = line.strip().rstrip(",").split("=")
            constants[name] = float(value)
        assert set(constants) == {"row_filter_cost", "block_touch_cost",
                                  "node_touch_cost", "signature_test_cost"}
        model = CostModel(**constants)
        for name, value in constants.items():
            assert getattr(model, name) == pytest.approx(value)
            assert value > 0.0

    def test_unknown_constant_would_fail(self):
        # The snippet's validity is meaningful because CostModel rejects
        # misspelled constants loudly.
        with pytest.raises(ValueError):
            CostModel(block_tuch_cost=1.0)


class TestBenchServing:
    def test_quick_mode_gates_pass_at_tiny_n(self, capsys):
        bench = load_benchmark("bench_serving")
        assert bench.main(["--quick", "--tuples", "800",
                           "--clients", "4"]) == 0
        out = capsys.readouterr().out
        assert "fused_queries=" in out
        # The CI gate's two clauses are visible in the summary.
        match = re.search(r"serial:\s+(\d+) tuples", out)
        served = re.search(r"served:\s+(\d+) tuples", out)
        assert match and served
        assert int(served.group(1)) * 2 <= int(match.group(1))


class TestBenchObsOverhead:
    def test_quick_mode_writes_json_and_keeps_parity(self, capsys, tmp_path):
        import json

        bench = load_benchmark("bench_obs_overhead")
        output = tmp_path / "BENCH_obs.json"
        # A lenient limit: at tiny N the per-query work is microseconds,
        # so the relative overhead is unrepresentative — this smoke pins
        # the answer-parity and trace-recording gates plus the JSON
        # contract, while CI runs the real 5% gate via --quick alone.
        assert bench.main(["--quick", "--tuples", "600", "--repeats", "3",
                           "--limit", "5.0",
                           "--output", str(output)]) == 0
        out = capsys.readouterr().out
        assert "overhead:" in out
        payload = json.loads(output.read_text())
        assert payload["benchmark"] == "obs_overhead"
        assert payload["passed"] is True
        assert payload["traces_recorded"] > 0
        assert payload["untraced_seconds"] > 0.0
        assert payload["traced_seconds"] > 0.0


class TestCalibrateMetricsOption:
    def test_metrics_snapshot_is_summarized(self, capsys, tmp_path):
        import json

        from repro.engine import Executor
        from repro.functions import LinearFunction
        from repro.query import Predicate, TopKQuery
        from repro.workloads import SyntheticSpec, generate_relation

        relation = generate_relation(SyntheticSpec(
            num_tuples=400, num_selection_dims=2, num_ranking_dims=2,
            cardinality=4, seed=51))
        engine = Executor.for_relation(relation, block_size=50)
        for value in range(4):
            engine.execute(TopKQuery(
                Predicate.of(A1=value % 4),
                LinearFunction(["N1", "N2"], [1.0, 1.0]), 3))
        snapshot = tmp_path / "metrics.json"
        snapshot.write_text(json.dumps(engine.metrics_snapshot()))

        calibrate = load_benchmark("calibrate_cost_model")
        assert calibrate.main(["--quick", "--tuples", "500", "--repeats", "1",
                               "--metrics", str(snapshot)]) == 0
        out = capsys.readouterr().out
        assert "per-backend cost feedback" in out
        assert "misestimates (>4x off)" in out


class TestBenchHttpServing:
    def test_quick_mode_gates_pass_at_tiny_n(self, capsys, tmp_path):
        import json

        bench = load_benchmark("bench_http_serving")
        output = tmp_path / "BENCH_http.json"
        assert bench.main(["--quick", "--tuples", "800", "--per-class", "8",
                           "--output", str(output)]) == 0
        out = capsys.readouterr().out
        assert "0 mismatches" in out
        payload = json.loads(output.read_text())
        assert payload["stream_mismatches"] == 0
        assert payload["throttled_bounced"] > 0
        assert payload["unthrottled_bounced"] == 0
        assert payload["interactive_p99"] < payload["background_p99"]
        assert payload["failures"] == []


class TestBenchFaultTolerance:
    def test_quick_mode_gates_pass_at_tiny_n(self, capsys, tmp_path):
        import json

        bench = load_benchmark("bench_fault_tolerance")
        output = tmp_path / "BENCH_fault.json"
        assert bench.main(["--quick", "--tuples", "800", "--queries", "15",
                           "--output", str(output)]) == 0
        out = capsys.readouterr().out
        assert "0 wrong answers" in out
        payload = json.loads(output.read_text())
        assert payload["wrong_answers"] == 0
        assert payload["faults_injected"] > 0
        assert payload["retries"] > 0
        assert payload["breaker_opened"] >= 1
        assert payload["degraded_results"] >= 1
        assert payload["failures"] == []
