"""Tiny-N smoke tests for the operator-facing benchmark scripts.

``benchmarks/calibrate_cost_model.py`` and ``benchmarks/bench_serving.py``
are runnable by hand (and the latter in CI); without a test-suite smoke
they can rot silently against engine API changes.  Both scripts take a
``--tuples`` override exactly so these tests can drive them at sizes that
finish in well under a second.
"""

from __future__ import annotations

import importlib.util
import os
import re
import sys

import pytest

from repro.engine import CostModel

BENCH_DIR = os.path.join(os.path.dirname(__file__), "..", "benchmarks")


def load_benchmark(name: str):
    """Import a benchmark script (not a package module) by file name."""
    path = os.path.join(BENCH_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestCalibrateCostModel:
    def test_emits_valid_cost_model_snippet(self, capsys):
        calibrate = load_benchmark("calibrate_cost_model")
        assert calibrate.main(["--quick", "--tuples", "500",
                               "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        # The operator-facing contract: a ready-to-paste
        # ``CostModel(**constants)`` snippet whose constants construct.
        snippet = re.search(
            r"^CostModel\(\n((?:\s+\w+=\S+,\n)+)\)$", out, re.MULTILINE)
        assert snippet is not None, f"no CostModel snippet in output:\n{out}"
        constants = {}
        for line in snippet.group(1).strip().splitlines():
            name, value = line.strip().rstrip(",").split("=")
            constants[name] = float(value)
        assert set(constants) == {"row_filter_cost", "block_touch_cost",
                                  "node_touch_cost", "signature_test_cost"}
        model = CostModel(**constants)
        for name, value in constants.items():
            assert getattr(model, name) == pytest.approx(value)
            assert value > 0.0

    def test_unknown_constant_would_fail(self):
        # The snippet's validity is meaningful because CostModel rejects
        # misspelled constants loudly.
        with pytest.raises(ValueError):
            CostModel(block_tuch_cost=1.0)


class TestBenchServing:
    def test_quick_mode_gates_pass_at_tiny_n(self, capsys):
        bench = load_benchmark("bench_serving")
        assert bench.main(["--quick", "--tuples", "800",
                           "--clients", "4"]) == 0
        out = capsys.readouterr().out
        assert "fused_queries=" in out
        # The CI gate's two clauses are visible in the summary.
        match = re.search(r"serial:\s+(\d+) tuples", out)
        served = re.search(r"served:\s+(\d+) tuples", out)
        assert match and served
        assert int(served.group(1)) * 2 <= int(match.group(1))
