"""Randomized oracle-parity harness: every execution path vs brute force.

Seeded-random relations (varying tuple counts, dimensionality, selection
cardinalities, value distributions) and queries (top-k and skyline, with
empty / selective / provably-absent predicates, linear and distance
functions, boundary k values) are generated deterministically; for every
case the harness asserts that

* the cost-planned engine front door,
* every registered backend that supports the query, and
* the scatter/gather path over shard counts {1, 2, 7}, and
* the process-scatter path (legs in worker processes over shared memory)
  over the same shard counts, solo and fused,

return results bit-identical to a brute-force oracle computed straight off
the relation.  This is the safety net under the cost-based planner: no
routing decision — static, cost-driven, or shard-level — may ever change
an answer, only how fast it is computed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import Executor
from repro.engine.backends import SkylineScanBackend
from repro.engine.registry import kind_of
from repro.functions.distance import SquaredDistanceFunction
from repro.functions.linear import skewed_linear_function
from repro.query import Predicate, SkylineQuery, TopKQuery
from repro.shard import (
    HashShardingPolicy,
    RangeShardingPolicy,
    ScatterGatherExecutor,
    ShardManager,
)
from repro.workloads import SyntheticSpec, generate_relation
from tests.conftest import brute_force_topk

#: Shard counts the acceptance bar names; 2 uses range sharding, the rest hash.
SHARD_COUNTS = (1, 2, 7)

#: Varied relation shapes: size, dimensionality, cardinality, distribution.
SPECS = (
    SyntheticSpec(num_tuples=120, num_selection_dims=1, num_ranking_dims=2,
                  cardinality=2, distribution="E", seed=901),
    SyntheticSpec(num_tuples=180, num_selection_dims=2, num_ranking_dims=2,
                  cardinality=5, distribution="C", seed=902),
    SyntheticSpec(num_tuples=240, num_selection_dims=3, num_ranking_dims=2,
                  cardinality=3, distribution="A", seed=903),
    SyntheticSpec(num_tuples=300, num_selection_dims=2, num_ranking_dims=3,
                  cardinality=8, distribution="E", seed=904),
    SyntheticSpec(num_tuples=150, num_selection_dims=3, num_ranking_dims=3,
                  cardinality=12, distribution="C", seed=905),
    SyntheticSpec(num_tuples=420, num_selection_dims=2, num_ranking_dims=2,
                  cardinality=4, distribution="A", seed=906),
    SyntheticSpec(num_tuples=260, num_selection_dims=1, num_ranking_dims=3,
                  cardinality=6, distribution="E", seed=907),
    SyntheticSpec(num_tuples=340, num_selection_dims=3, num_ranking_dims=2,
                  cardinality=9, distribution="E", seed=908),
)

TOPK_PER_RELATION = 18
SKYLINE_PER_RELATION = 8


def _random_conditions(rng, relation, max_conds):
    """0..max_conds equality conditions, occasionally on an absent value."""
    count = int(rng.integers(0, max_conds + 1))
    dims = list(rng.choice(relation.selection_dims, size=count, replace=False))
    conditions = {}
    for dim in dims:
        column = relation.selection_column(dim)
        if rng.random() < 0.15:
            conditions[dim] = int(column.max()) + 3  # provably absent
        else:
            conditions[dim] = int(column[rng.integers(0, len(column))])
    return conditions


def _topk_queries(rng, relation):
    queries = []
    for _ in range(TOPK_PER_RELATION):
        conditions = _random_conditions(
            rng, relation, min(3, len(relation.selection_dims)))
        num_dims = int(rng.integers(1, len(relation.ranking_dims) + 1))
        dims = list(rng.choice(relation.ranking_dims, size=num_dims,
                               replace=False))
        if rng.random() < 0.5:
            function = skewed_linear_function(dims, float(rng.uniform(1, 4)),
                                              rng=rng)
        else:
            function = SquaredDistanceFunction(
                dims, [float(v) for v in rng.random(num_dims)])
        k = int(rng.choice([1, 3, 7, relation.num_tuples + 5]))
        queries.append(TopKQuery(Predicate.of(conditions), function, k))
    return queries


def _skyline_queries(rng, relation):
    queries = []
    for _ in range(SKYLINE_PER_RELATION):
        conditions = _random_conditions(
            rng, relation, min(2, len(relation.selection_dims)))
        num_dims = int(rng.integers(2, len(relation.ranking_dims) + 1))
        dims = tuple(rng.choice(relation.ranking_dims, size=num_dims,
                                replace=False))
        targets = None
        if rng.random() < 0.4:
            targets = tuple(float(v) for v in rng.random(num_dims))
        queries.append(SkylineQuery(Predicate.of(conditions), dims,
                                    targets=targets))
    return queries


def _slim_shard_factory(relation):
    """Cheap per-shard stack: grid cube + scan top-k + scan skyline.

    The parity claim is about the scatter/gather *path*, not which backend
    a shard picks, so shards skip the R-tree / signature construction.
    """
    from repro.skyline import BooleanFirstSkyline

    executor = Executor.for_relation(relation, block_size=32,
                                     with_signature=False, with_skyline=False)
    executor.register(SkylineScanBackend(BooleanFirstSkyline(relation)))
    return executor


def brute_force_skyline(relation, query):
    """O(n^2) dominance oracle straight off the relation's columns."""
    tids = [tid for tid in relation.iter_tids()
            if query.predicate.matches(relation, tid)]
    points = {}
    for tid in tids:
        values = relation.ranking_values(tid, query.preference_dims)
        if query.targets is not None:
            values = [abs(float(v) - float(t))
                      for v, t in zip(values, query.targets)]
        points[tid] = tuple(float(v) for v in values)

    def dominates(a, b):
        return (all(x <= y for x, y in zip(a, b))
                and any(x < y for x, y in zip(a, b)))

    return tuple(sorted(
        tid for tid in tids
        if not any(dominates(points[other], points[tid])
                   for other in tids if other != tid)))


@pytest.fixture(scope="module")
def universe():
    """Relations, engines, sharded engines, and query workloads — built once."""
    rigs = []
    for i, spec in enumerate(SPECS):
        relation = generate_relation(spec, name=f"O{i}")
        engine = Executor.for_relation(relation, block_size=48,
                                       rtree_max_entries=8)
        sharded = {}
        for count in SHARD_COUNTS:
            if count == 2:
                policy = RangeShardingPolicy(relation,
                                             relation.selection_dims[0], count)
            else:
                policy = HashShardingPolicy(count)
            manager = ShardManager(relation, policy,
                                   executor_factory=_slim_shard_factory)
            sharded[count] = ScatterGatherExecutor(manager)
        rng = np.random.default_rng(7000 + i)
        queries = _topk_queries(rng, relation) + _skyline_queries(rng, relation)
        rigs.append((relation, engine, sharded, queries))
    return rigs


def test_case_count_meets_bar(universe):
    """The harness generates at least 200 randomized cases."""
    total = sum(len(queries) for _, _, _, queries in universe)
    assert total >= 200


@pytest.mark.parametrize("spec_index", range(len(SPECS)))
def test_topk_oracle_parity(universe, spec_index):
    relation, engine, sharded, queries = universe[spec_index]
    for query in queries:
        if not isinstance(query, TopKQuery):
            continue
        oracle_tids, oracle_scores = brute_force_topk(relation, query)
        routed = engine.execute(query)
        assert routed.tids == oracle_tids, engine.explain(query)
        assert routed.scores == oracle_scores, engine.explain(query)
        for backend in engine.registry:
            if backend.kind != "topk" or not backend.supports(query):
                continue
            direct = backend.run(query)
            assert direct.tids == oracle_tids, backend.name
            assert direct.scores == oracle_scores, backend.name
        for count, scatter in sharded.items():
            gathered = scatter.execute(query)
            assert gathered.tids == oracle_tids, (count, scatter.explain(query))
            assert gathered.scores == oracle_scores, count


@pytest.mark.parametrize("spec_index", range(len(SPECS)))
def test_skyline_oracle_parity(universe, spec_index):
    relation, engine, sharded, queries = universe[spec_index]
    for query in queries:
        if not isinstance(query, SkylineQuery):
            continue
        oracle_tids = brute_force_skyline(relation, query)
        routed = engine.execute(query)
        assert tuple(sorted(routed.tids)) == oracle_tids, engine.explain(query)
        for backend in engine.registry:
            if backend.kind != "skyline" or not backend.supports(query):
                continue
            direct = backend.run(query)
            assert tuple(sorted(direct.tids)) == oracle_tids, backend.name
        for count, scatter in sharded.items():
            gathered = scatter.execute(query)
            assert tuple(sorted(gathered.tids)) == oracle_tids, count


def _uncacheable_function(relation):
    """An expression-tree function: fusable by object identity, uncacheable.

    ``query_cache_key`` has no canonical key for expression trees, so these
    queries bypass the result cache entirely — exactly the mix the fused
    batch path must keep bit-identical alongside cacheable queries.
    """
    from repro.engine.cache import query_cache_key
    from repro.functions import Add, ExpressionFunction, Mul, Var

    dims = relation.ranking_dims[:2]
    expr = Add(Mul(Var(dims[0]), Var(dims[0])), Var(dims[1]))
    function = ExpressionFunction(expr, dims=dims)
    probe = TopKQuery(Predicate.of(), function, 1)
    assert query_cache_key(probe) is None
    return function


@pytest.mark.parametrize("spec_index", range(len(SPECS)))
def test_fused_batch_matches_loop_and_oracle(universe, spec_index):
    """The fused ``execute_many`` path is bit-identical to loop + oracle.

    The batch mixes functions, predicates, and k values (so the engine
    forms several fused groups plus singles), includes repeats of one
    query, and appends uncacheable expression-function queries sharing one
    function object — covering cacheable/uncacheable mixing.  The same
    batch runs through the engine front door and every shard count.
    """
    relation, engine, sharded, queries = universe[spec_index]
    batch = [query for query in queries if isinstance(query, TopKQuery)]
    uncacheable = _uncacheable_function(relation)
    first_dim = relation.selection_dims[0]
    value = int(relation.selection_column(first_dim)[0])
    batch = batch + [
        batch[0],  # a batch repeat of a cacheable query
        TopKQuery(Predicate.of(), uncacheable, 5),
        TopKQuery(Predicate.of({first_dim: value}), uncacheable, 3),
    ]
    oracle = [brute_force_topk(relation, query) for query in batch]

    engine.invalidate_results()
    fused = engine.execute_many(batch)
    for query, result, (tids, scores) in zip(batch, fused, oracle):
        assert result.tids == tids, engine.explain(query)
        assert result.scores == scores, engine.explain(query)
        assert "plans_reused" in result.extra
        assert result.extra.get("fused_group_size", 0.0) >= 1.0
    # The two expression-function queries share one function object, so
    # whenever the planner routes them to the same backend they form a
    # fused group; random same-function collisions may add more.  (Group
    # sizes > 1 are pinned deterministically in tests/test_batch_fusion.py.)

    for count, scatter in sharded.items():
        scatter.manager.invalidate_caches()
        gathered = scatter.execute_many(batch)
        for query, result, (tids, scores) in zip(batch, gathered, oracle):
            assert result.tids == tids, (count, scatter.explain(query))
            assert result.scores == scores, count


@pytest.mark.parametrize("spec_index", range(len(SPECS)))
def test_traced_execution_keeps_oracle_parity(universe, spec_index):
    """Enabled tracing records spans without ever changing an answer.

    Re-runs the top-k workload with a live :class:`~repro.obs.Tracer` on
    the engine front door, on every shard count in {1, 2, 7}, and through
    the fused ``execute_many`` path — result caches invalidated first so
    the traced paths actually execute — and asserts bit-identical results
    against the brute-force oracle, plus that traces were recorded.
    """
    from repro.obs import NULL_TRACER, Tracer

    relation, engine, sharded, queries = universe[spec_index]
    batch = [query for query in queries if isinstance(query, TopKQuery)]
    oracle = [brute_force_topk(relation, query) for query in batch]
    try:
        engine.tracer = Tracer(ring_size=8)
        engine.invalidate_results()
        for query, (tids, scores) in zip(batch, oracle):
            traced = engine.execute(query)
            assert traced.tids == tids, engine.explain(query)
            assert traced.scores == scores, engine.explain(query)
        engine.invalidate_results()
        fused = engine.execute_many(batch)
        for query, result, (tids, scores) in zip(batch, fused, oracle):
            assert result.tids == tids, engine.explain(query)
            assert result.scores == scores, engine.explain(query)
        assert engine.tracer.traces_recorded >= len(batch) + 1

        for count, scatter in sharded.items():
            scatter.tracer = Tracer(ring_size=8)
            scatter.manager.invalidate_caches()
            for query, (tids, scores) in zip(batch, oracle):
                gathered = scatter.execute(query)
                assert gathered.tids == tids, (count, scatter.explain(query))
                assert gathered.scores == scores, count
            scatter.manager.invalidate_caches()
            gathered_batch = scatter.execute_many(batch)
            for result, (tids, scores) in zip(gathered_batch, oracle):
                assert result.tids == tids, count
                assert result.scores == scores, count
            assert scatter.tracer.traces_recorded >= len(batch) + 1
    finally:
        engine.tracer = NULL_TRACER
        for scatter in sharded.values():
            scatter.tracer = NULL_TRACER


#: Relations the process-scatter pass replays (a subset: every worker is a
#: real spawned process, so the full 8-spec sweep would dominate suite
#: runtime without adding coverage — the scatter *path* is the subject).
PROCESS_SPEC_INDICES = (1, 3)


@pytest.fixture(scope="module")
def process_universe():
    """Process-scatter engines over shard counts {1, 2, 7}, legs forced
    onto worker processes (``process_leg_overhead = 0``)."""
    from repro.engine.cost import CostModel
    from repro.shard import ProcessScatterExecutor

    rigs = []
    engines = []
    for i in PROCESS_SPEC_INDICES:
        relation = generate_relation(SPECS[i], name=f"P{i}")
        sharded = {}
        for count in SHARD_COUNTS:
            if count == 2:
                policy = RangeShardingPolicy(relation,
                                             relation.selection_dims[0], count)
            else:
                policy = HashShardingPolicy(count)
            # Process mode ships executor kwargs (not a factory closure) to
            # the workers, so the slim stack is configured via kwargs here.
            manager = ShardManager(relation, policy, block_size=32,
                                   with_signature=False, with_skyline=False)
            cost_model = CostModel()
            cost_model.process_leg_overhead = 0.0
            sharded[count] = ProcessScatterExecutor(manager,
                                                    cost_model=cost_model)
            engines.append(sharded[count])
        rng = np.random.default_rng(7000 + i)
        rigs.append((relation, sharded, _topk_queries(rng, relation)))
    yield rigs
    for engine in engines:
        engine.close()


@pytest.mark.parametrize("rig_index", range(len(PROCESS_SPEC_INDICES)))
def test_process_scatter_oracle_parity_solo_and_fused(process_universe,
                                                      rig_index):
    """Worker-process legs are bit-identical to the oracle, solo and fused.

    Every leg crosses a pipe to an executor rebuilt over shared memory in
    another process — pickling the query, scoring there, shipping top-k
    back — and none of that round trip may perturb a single tid or score.
    """
    relation, sharded, queries = process_universe[rig_index]
    oracle = [brute_force_topk(relation, query) for query in queries]
    for count, scatter in sharded.items():
        for query, (tids, scores) in zip(queries, oracle):
            gathered = scatter.execute(query)
            assert gathered.tids == tids, (count, scatter.explain(query))
            assert gathered.scores == scores, count
            assert gathered.extra["scatter_mode"] == "processes", count
        scatter.manager.invalidate_caches()
        fused = scatter.execute_many(queries)
        for query, result, (tids, scores) in zip(queries, fused, oracle):
            assert result.tids == tids, (count, scatter.explain(query))
            assert result.scores == scores, count


@pytest.mark.parametrize("spec_index", range(len(SPECS)))
def test_every_case_was_planned(universe, spec_index):
    """Every generated query routes through a real (explainable) plan."""
    relation, engine, _, queries = universe[spec_index]
    for query in queries:
        plan = engine.plan(query)
        assert plan.backend in engine.registry.names()
        assert plan.query_kind == kind_of(query)


# ----------------------------------------------------------------------
# chaos parity: answers stay bit-identical THROUGH injected faults
# ----------------------------------------------------------------------
#: Relations the thread-mode chaos pass replays (a subset keeps the
#: suite's chaos share proportionate; the injector sweeps every leg of
#: every shard count, so more specs would add runtime, not coverage).
CHAOS_SPEC_INDICES = (0, 3, 6)


def _chaos_policy(relation, count):
    if count == 2:
        return RangeShardingPolicy(relation, relation.selection_dims[0],
                                   count)
    return HashShardingPolicy(count)


@pytest.mark.parametrize("spec_index", CHAOS_SPEC_INDICES)
def test_chaos_parity_thread_scatter(spec_index):
    """Injected crashes + retries never change an answer (thread legs).

    A seeded :class:`~repro.fault.inject.FaultInjector` plants pre- and
    post-leg crashes plus delays while the retry policy re-runs the
    failed legs.  ``max_faults`` is kept strictly below
    ``max_attempts - 1`` so recovery *provably* converges: no leg can
    accumulate enough consecutive faults to exhaust its attempts.  Every
    answer — strict mode, no degradation allowed — must be bit-identical
    to the brute-force oracle, at every shard count in {1, 2, 7}.
    """
    from repro.fault import FaultInjector, RetryPolicy
    from repro.shard import ScatterGatherExecutor as ThreadScatter

    relation = generate_relation(SPECS[spec_index], name=f"C{spec_index}")
    rng = np.random.default_rng(7000 + spec_index)
    queries = _topk_queries(rng, relation)
    oracle = [brute_force_topk(relation, query) for query in queries]
    for count in SHARD_COUNTS:
        manager = ShardManager(relation, _chaos_policy(relation, count),
                               executor_factory=_slim_shard_factory)
        injector = FaultInjector(
            seed=1300 + 10 * spec_index + count,
            rates={"worker.crash.pre": 0.35, "worker.crash.post": 0.2,
                   "leg.delay": 0.1},
            max_faults=12, delay_seconds=0.0)
        engine = ThreadScatter(
            manager, fault_injector=injector,
            retry_policy=RetryPolicy(max_attempts=14, base_delay=0.0002,
                                     cap_delay=0.001, budget=None,
                                     jitter_seed=count))
        with engine:
            for query, (tids, scores) in zip(queries, oracle):
                gathered = engine.execute(query)
                assert gathered.tids == tids, (count, injector.fired)
                assert gathered.scores == scores, count
                assert "degraded" not in gathered.extra, count
            # Replay the batch path under fresh chaos: fused-group legs
            # retry and recover just like solo legs.
            engine.fault_injector = FaultInjector(
                seed=4300 + 10 * spec_index + count,
                rates={"worker.crash.pre": 0.35, "worker.crash.post": 0.2},
                max_faults=12)
            manager.invalidate_caches()
            fused = engine.execute_many(queries)
            for result, (tids, scores) in zip(fused, oracle):
                assert result.tids == tids, count
                assert result.scores == scores, count
            # A vacuous chaos run proves nothing: the injectors must
            # actually have planted faults for the parity to mean much.
            assert injector.total_fired > 0, (count, injector.fired)
            assert engine.fault_injector.total_fired > 0, count


def test_chaos_parity_process_scatter():
    """Injected crashes + hangs never change an answer (process legs).

    Here the chaos is *real*: ``worker.crash.pre`` kills the worker
    process, ``pipe.hang`` wedges it past the bounded recv (which kills
    it), and every retried leg runs against a freshly respawned worker
    over a fresh shared-memory copy.  Answers must stay bit-identical to
    the oracle at every shard count in {1, 2, 7}.
    """
    from repro.engine.cost import CostModel
    from repro.fault import FaultInjector, RetryPolicy
    from repro.shard import ProcessScatterExecutor

    relation = generate_relation(SPECS[1], name="PC1")
    rng = np.random.default_rng(8101)
    queries = _topk_queries(rng, relation)[:6]
    oracle = [brute_force_topk(relation, query) for query in queries]
    chaos_seen = 0
    for count in SHARD_COUNTS:
        manager = ShardManager(relation, _chaos_policy(relation, count),
                               block_size=32, with_signature=False,
                               with_skyline=False)
        cost_model = CostModel()
        cost_model.process_leg_overhead = 0.0
        injector = FaultInjector(seed=500 + count,
                                 rates={"worker.crash.pre": 0.3,
                                        "pipe.hang": 0.15},
                                 max_faults=3, hang_seconds=30.0)
        engine = ProcessScatterExecutor(
            manager, cost_model=cost_model, recv_timeout=1.0,
            fault_injector=injector,
            retry_policy=RetryPolicy(max_attempts=5, base_delay=0.001,
                                     cap_delay=0.004, jitter_seed=count))
        with engine:
            for query, (tids, scores) in zip(queries, oracle):
                gathered = engine.execute(query)
                assert gathered.tids == tids, (count, injector.fired)
                assert gathered.scores == scores, count
                assert gathered.extra["scatter_mode"] == "processes", count
        chaos_seen += injector.total_fired
    assert chaos_seen > 0
