"""The async serving layer: parity, batching, backpressure, writes, stats.

Covers the serving parity gate (answers through :class:`QueryService` are
bit-identical to direct ``execute`` on the same engine, unsharded and
across shard counts {1, 2, 7}), the adaptive micro-batcher's flush
triggers and linger adaptation, admission control, per-request timeouts
and cancellation, per-backend concurrency limits, the serialized write
path interleaved with queued work (the predicate-aware invalidation
contract), and the merged statistics views
(``ScatterGatherExecutor.cache_stats`` + ``ServiceStats``).

The tests drive asyncio through plain ``asyncio.run`` so the suite needs
no async pytest plugin (the dev extra ships one for convenience, not
correctness).
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.engine import Executor
from repro.functions.linear import LinearFunction, sum_function
from repro.query import Predicate, SkylineQuery, TopKQuery
from repro.serve import (
    MicroBatcher,
    QueryService,
    QueuedRequest,
    RequestTimeoutError,
    ServeError,
    ServiceClosedError,
    ServiceConfig,
    ServiceOverloadedError,
)
from repro.workloads import (
    SyntheticSpec,
    generate_relation,
    make_sharded_engine,
    serving_client_queries,
)


@pytest.fixture(scope="module")
def relation():
    return generate_relation(SyntheticSpec(
        num_tuples=1500, num_selection_dims=3, num_ranking_dims=2,
        cardinality=6, seed=77))


def make_engine(relation, num_shards=0):
    """A grid-only stack, unsharded (0) or scatter/gather over N shards."""
    if num_shards:
        manager, engine = make_sharded_engine(
            relation, num_shards, range_dim="A1", block_size=100,
            with_signature=False, with_skyline=False)
        return manager, engine
    return None, Executor.for_relation(relation, block_size=100,
                                       with_signature=False,
                                       with_skyline=False)


def mixed_workload():
    f1 = LinearFunction(["N1", "N2"], [1.0, 2.0])
    f2 = LinearFunction(["N1", "N2"], [3.0, 1.0])
    queries = [TopKQuery(Predicate.of(), f, k)
               for f in (f1, f2) for k in (1, 4, 9)]
    queries += [TopKQuery(Predicate.of(A1=value), f1, 5) for value in range(3)]
    queries.append(TopKQuery(Predicate.of(A1=1, A2=0), f2, 7))
    return queries


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


class TestMicroBatcher:
    def request(self, clock):
        # The batcher never touches the future, so unit tests can pass a
        # placeholder instead of binding an event loop.
        return QueuedRequest(query=object(), future=None,
                             enqueued_at=clock())

    def test_deadline_trigger_and_drain(self):
        clock = FakeClock()
        batcher = MicroBatcher(max_batch_size=8, max_linger=1.0,
                               min_linger=0.25, clock=clock)
        assert batcher.drain() == []
        assert batcher.next_deadline() is None
        first = self.request(clock)
        batcher.append(first)
        assert batcher.next_deadline() == 1.0
        assert not batcher.due(0.5)
        assert batcher.drain(0.5) == []
        clock.t = 1.0
        assert batcher.due()
        assert batcher.drain() == [first]
        assert len(batcher) == 0

    def test_size_trigger_ignores_linger(self):
        clock = FakeClock()
        batcher = MicroBatcher(max_batch_size=3, max_linger=99.0, clock=clock)
        requests = [self.request(clock) for _ in range(3)]
        for request in requests:
            batcher.append(request)
        assert batcher.size_ready() and batcher.due(0.0)
        assert batcher.drain(0.0) == requests

    def test_drain_caps_at_max_batch_size(self):
        clock = FakeClock()
        batcher = MicroBatcher(max_batch_size=2, max_linger=99.0, clock=clock)
        requests = [self.request(clock) for _ in range(5)]
        for request in requests:
            batcher.append(request)
        assert batcher.drain(0.0) == requests[:2]
        assert batcher.drain(0.0) == requests[2:4]
        # One left: below the size trigger and before the deadline.
        assert batcher.drain(0.0) == []
        assert len(batcher) == 1

    def test_linger_adapts_within_bounds(self):
        clock = FakeClock()
        batcher = MicroBatcher(max_batch_size=8, max_linger=1.0,
                               min_linger=0.25, clock=clock)
        # Deadline flush of a single request: sparse traffic, halve.
        batcher.append(self.request(clock))
        clock.t = 1.0
        batcher.drain()
        assert batcher.linger == 0.5
        # Partial batch (2 of 8) on the deadline: grow back toward the cap.
        for _ in range(2):
            batcher.append(self.request(clock))
        clock.t += 0.5
        batcher.drain()
        assert batcher.linger == 1.0
        # Size-triggered flush: saturating traffic, halve again.
        for _ in range(8):
            batcher.append(self.request(clock))
        batcher.drain()
        assert batcher.linger == 0.5
        # The floor holds no matter how many sparse flushes follow.
        for _ in range(10):
            batcher.append(self.request(clock))
            clock.t += 99.0
            batcher.drain()
        assert batcher.linger == 0.25

    def test_forced_drain_flushes_without_trigger(self):
        clock = FakeClock()
        batcher = MicroBatcher(max_batch_size=8, max_linger=99.0, clock=clock)
        request = self.request(clock)
        batcher.append(request)
        linger_before = batcher.linger
        assert batcher.drain(force=True) == [request]
        # A forced (shutdown) flush does not distort the adaptation.
        assert batcher.linger == linger_before


class TestServingParity:
    @pytest.mark.parametrize("num_shards", [0, 1, 2, 7])
    def test_service_answers_match_direct_execute(self, relation, num_shards):
        _, reference = make_engine(relation, num_shards)
        _, engine = make_engine(relation, num_shards)
        queries = mixed_workload()
        expected = [reference.execute(query) for query in queries]

        async def run():
            config = ServiceConfig(max_linger=0.005, max_batch_size=64)
            async with QueryService(engine, config) as service:
                return await asyncio.gather(
                    *(service.submit(query) for query in queries))

        results = asyncio.run(run())
        for alone, served in zip(expected, results):
            assert alone.tids == served.tids
            assert alone.scores == served.scores
            assert served.extra["queue_wait"] >= 0.0
            assert served.extra["batch_size"] >= 1.0
            assert "fused_group_size" in served.extra

    def test_full_stack_serves_skyline_and_topk(self, relation):
        reference = Executor.for_relation(relation, block_size=100,
                                          rtree_max_entries=16)
        engine = Executor.for_relation(relation, block_size=100,
                                       rtree_max_entries=16)
        queries = [
            SkylineQuery(Predicate.of(A1=1), ("N1", "N2")),
            TopKQuery(Predicate.of(), sum_function(["N1", "N2"]), 4),
        ]
        expected = [reference.execute(query) for query in queries]

        async def run():
            async with QueryService(engine) as service:
                return await service.submit_many(queries)

        results = asyncio.run(run())
        assert tuple(sorted(results[0].tids)) == tuple(sorted(expected[0].tids))
        assert results[1].tids == expected[1].tids
        assert results[1].scores == expected[1].scores

    def test_concurrent_clients_fuse_through_one_tick(self, relation):
        _, engine = make_engine(relation)
        clients = serving_client_queries(relation, num_clients=6,
                                         per_client=4)

        async def run():
            config = ServiceConfig(max_linger=0.05, max_batch_size=512)
            async with QueryService(engine, config) as service:
                gathered = await asyncio.gather(
                    *(service.submit_many(stream) for stream in clients))
                return gathered, service.stats_snapshot()

        gathered, snap = asyncio.run(run())
        # Every stream got one result per query, and the batcher fused
        # same-function queries from different clients into shared sweeps.
        assert [len(results) for results in gathered] == [4] * 6
        assert snap["fused_queries"] > 0
        assert snap["batches"] < snap["completed"]
        fused_sizes = {result.extra["fused_group_size"]
                       for results in gathered for result in results}
        assert max(fused_sizes) > 1.0


class TestFlushTriggers:
    def test_flush_on_max_batch_size(self, relation):
        _, engine = make_engine(relation)
        function = sum_function(["N1", "N2"])
        queries = [TopKQuery(Predicate.of(A1=value), function, 3)
                   for value in range(4)]

        async def run():
            # The linger alone would park requests for 30 s; only the size
            # trigger can flush, so batches of exactly 2 prove it fired.
            config = ServiceConfig(max_batch_size=2, max_linger=30.0)
            async with QueryService(engine, config) as service:
                return await service.submit_many(queries)

        results = asyncio.run(run())
        assert [result.extra["batch_size"] for result in results] == [2.0] * 4

    def test_flush_on_linger_deadline(self, relation):
        _, engine = make_engine(relation)
        function = sum_function(["N1", "N2"])
        queries = [TopKQuery(Predicate.of(A1=value), function, 3)
                   for value in range(3)]

        async def run():
            # Far below the size trigger: only the deadline can flush.
            config = ServiceConfig(max_batch_size=512, max_linger=0.01)
            async with QueryService(engine, config) as service:
                return await service.submit_many(queries)

        results = asyncio.run(run())
        assert [result.extra["batch_size"] for result in results] == [3.0] * 3
        assert all(result.extra["queue_wait"] >= 0.009 for result in results)


class TestAdmissionAndDeadlines:
    def test_overload_rejects_beyond_high_water_mark(self, relation):
        _, engine = make_engine(relation)
        function = sum_function(["N1", "N2"])

        async def run():
            config = ServiceConfig(max_pending=2, max_batch_size=512,
                                   max_linger=30.0)
            async with QueryService(engine, config) as service:
                first = asyncio.ensure_future(
                    service.submit(TopKQuery(Predicate.of(A1=0), function, 3)))
                second = asyncio.ensure_future(
                    service.submit(TopKQuery(Predicate.of(A1=1), function, 3)))
                await asyncio.sleep(0)
                with pytest.raises(ServiceOverloadedError):
                    await service.submit(TopKQuery(Predicate.of(A1=2),
                                                   function, 3))
                snap = service.stats_snapshot()
                assert snap["rejected"] == 1.0
                assert snap["pending"] == 2.0
                # Graceful close executes what was admitted.
                close_task = asyncio.ensure_future(service.close())
                results = await asyncio.gather(first, second)
                await close_task
                return results, service.stats_snapshot()

        (first, second), snap = asyncio.run(run())
        assert len(first.tids) == 3 and len(second.tids) == 3
        assert snap["completed"] == 2.0

    def test_submit_many_overload_abandons_partial_batch(self, relation):
        _, engine = make_engine(relation)
        function = sum_function(["N1", "N2"])
        queries = [TopKQuery(Predicate.of(A1=value), function, 3)
                   for value in range(4)]

        async def run():
            config = ServiceConfig(max_pending=2, max_batch_size=512,
                                   max_linger=30.0)
            async with QueryService(engine, config) as service:
                with pytest.raises(ServiceOverloadedError):
                    await service.submit_many(queries)
                return service.stats_snapshot()

        snap = asyncio.run(run())
        # The two admitted requests were cancelled, not executed.
        assert snap["rejected"] == 1.0
        assert snap["completed"] == 0.0

    def test_per_request_timeout(self, relation):
        _, engine = make_engine(relation)
        function = sum_function(["N1", "N2"])

        async def run():
            config = ServiceConfig(max_batch_size=512, max_linger=30.0)
            async with QueryService(engine, config) as service:
                with pytest.raises(RequestTimeoutError):
                    await service.submit(
                        TopKQuery(Predicate.of(A1=0), function, 3),
                        timeout=0.02)
                timed_out = service.stats_snapshot()["timed_out"]
                # The service keeps serving after the timeout.
                live = await service.submit(
                    TopKQuery(Predicate.of(A1=1), function, 3), timeout=None)
                return timed_out, live

        timed_out, live = asyncio.run(run())
        assert timed_out == 1.0
        assert len(live.tids) == 3

    def test_cancelled_request_is_dropped_at_drain(self, relation):
        _, engine = make_engine(relation)
        function = sum_function(["N1", "N2"])

        async def run():
            config = ServiceConfig(max_batch_size=512, max_linger=0.05)
            async with QueryService(engine, config) as service:
                doomed = asyncio.ensure_future(service.submit(
                    TopKQuery(Predicate.of(A1=0), function, 3)))
                survivor_future = asyncio.ensure_future(service.submit(
                    TopKQuery(Predicate.of(A1=1), function, 3)))
                await asyncio.sleep(0)
                doomed.cancel()
                survivor = await survivor_future
                with pytest.raises(asyncio.CancelledError):
                    await doomed
                return survivor, service.stats_snapshot()

        survivor, snap = asyncio.run(run())
        assert snap["cancelled"] == 1.0
        # The cancelled request never reached the engine: the dispatched
        # batch carried only the survivor.
        assert survivor.extra["batch_size"] == 1.0
        assert snap["batched_requests"] == 1.0

    def test_cancellation_mid_flight_is_counted(self, relation):
        _, engine = make_engine(relation)
        function = sum_function(["N1", "N2"])
        original = engine.execute_many
        started = threading.Event()

        def slow_execute_many(batch):
            started.set()
            time.sleep(0.05)
            return original(batch)

        engine.execute_many = slow_execute_many

        async def run():
            config = ServiceConfig(max_linger=0.0)
            async with QueryService(engine, config) as service:
                task = asyncio.ensure_future(service.submit(
                    TopKQuery(Predicate.of(A1=0), function, 3)))
                # Block (off-loop) until the batch is inside the engine,
                # then abandon the request mid-flight.
                await asyncio.get_running_loop().run_in_executor(
                    None, started.wait)
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task
            return service.stats_snapshot()

        snap = asyncio.run(run())
        assert snap["cancelled"] == 1.0
        assert snap["completed"] == 0.0
        assert snap["batched_requests"] == 1.0

    def test_close_drains_backlog_deeper_than_one_batch(self, relation):
        """Shutdown with 2 x max_batch_size + 1 pending strands nothing.

        The drain loop must keep flushing forced micro-batches until the
        queue is empty — a backlog deeper than one batch used to leave the
        overflow waiting forever.  Every submitted request must resolve
        with a real answer (graceful drain, not failure), bit-identical to
        direct execution.
        """
        _, engine = make_engine(relation)
        function = sum_function(["N1", "N2"])
        queries = [TopKQuery(Predicate.of(A1=value % 4), function, k)
                   for value, k in enumerate([2, 3, 4, 5, 6] * 2, start=1)]
        queries = queries[:2 * 4 + 1]  # 2 x max_batch_size + 1
        assert len(queries) == 9

        async def run():
            # A huge linger keeps the deadline trigger from firing: only
            # close() itself can flush what the size trigger leaves behind.
            config = ServiceConfig(max_batch_size=4, max_linger=60.0,
                                   min_linger=60.0)
            service = QueryService(engine, config)
            async with service:
                tasks = [asyncio.ensure_future(service.submit(query))
                         for query in queries]
                await asyncio.sleep(0)  # admit all 9; none dispatched yet
            done, pending = await asyncio.wait(tasks, timeout=10.0)
            return done, pending, service.stats_snapshot()

        done, pending, snap = asyncio.run(run())
        assert pending == set()
        assert len(done) == len(queries)
        for task in done:
            assert task.result().tids is not None  # raises if any failed
        assert snap["completed"] == float(len(queries))
        assert snap["failed"] == 0.0

    def test_close_drained_answers_match_direct_execution(self, relation):
        _, engine = make_engine(relation)
        function = sum_function(["N1", "N2"])
        queries = [TopKQuery(Predicate.of(A1=value % 4), function, 3 + value)
                   for value in range(9)]

        async def run():
            config = ServiceConfig(max_batch_size=4, max_linger=60.0,
                                   min_linger=60.0)
            service = QueryService(engine, config)
            async with service:
                tasks = [asyncio.ensure_future(service.submit(query))
                         for query in queries]
                await asyncio.sleep(0)
            return await asyncio.gather(*tasks)

        served = asyncio.run(run())
        for query, result in zip(queries, served):
            expected = engine.execute(query)
            assert result.tids == expected.tids
            assert result.scores == expected.scores

    def test_closed_service_rejects_submissions(self, relation):
        _, engine = make_engine(relation)
        query = TopKQuery(Predicate.of(A1=0), sum_function(["N1", "N2"]), 3)

        async def run():
            service = QueryService(engine)
            with pytest.raises(ServiceClosedError):
                await service.submit(query)  # never started
            async with service:
                await service.submit(query)
            with pytest.raises(ServiceClosedError):
                await service.submit(query)  # closed
            with pytest.raises(ServiceClosedError):
                await service.insert({"A1": 0})

        asyncio.run(run())


class TestBackendLimits:
    def test_backend_semaphore_serializes_batches(self, relation):
        _, engine = make_engine(relation)
        function = sum_function(["N1", "N2"])
        queries = [TopKQuery(Predicate.of(A1=value), function, 3)
                   for value in range(4)]
        active = {"now": 0, "peak": 0}
        original = engine.execute_many

        def instrumented(batch):
            active["now"] += 1
            active["peak"] = max(active["peak"], active["now"])
            try:
                return original(batch)
            finally:
                active["now"] -= 1

        engine.execute_many = instrumented

        async def run():
            # Four size-1 batches race through an engine allowed 4-wide,
            # but every batch routes to the same backend, whose limit is 1.
            config = ServiceConfig(max_batch_size=1, max_linger=30.0,
                                   engine_concurrency=4,
                                   backend_limits={"ranking-cube": 1,
                                                   "table-scan": 1})
            async with QueryService(engine, config) as service:
                return await service.submit_many(queries)

        results = asyncio.run(run())
        assert len(results) == 4
        assert active["peak"] == 1

    def test_scatter_engine_routes_to_scatter_gather(self, relation):
        manager, engine = make_engine(relation, num_shards=2)
        assert engine.plan_backends(mixed_workload()) == {"scatter-gather"}
        assert engine.plan_backends([]) == set()


class TestWritePath:
    def test_insert_between_queue_and_drain_is_not_stale(self, relation):
        # The write-serialization contract: a row inserted after a query
        # was queued but before its batch drained must be visible to that
        # query — the predicate-aware invalidation may not serve the
        # pre-insert cached answer.
        mutable = generate_relation(SyntheticSpec(
            num_tuples=900, num_selection_dims=3, num_ranking_dims=2,
            cardinality=6, seed=78))
        manager, engine = make_sharded_engine(
            mutable, 3, range_dim="A1", block_size=80,
            with_signature=False, with_skyline=False)
        function = sum_function(["N1", "N2"])
        hot = TopKQuery(Predicate.of(A1=4), function, 5)
        cold = TopKQuery(Predicate.of(A1=1), function, 5)
        row = {"A1": 1, "A2": 0, "A3": 0, "N1": -9.0, "N2": -9.0}

        async def run():
            config = ServiceConfig(max_batch_size=512, max_linger=0.05)
            async with QueryService(engine, config) as service:
                # Warm the result cache for both predicates.
                await service.submit_many([hot, cold])
                # Queue the cold query again, then mutate while it lingers.
                queued = asyncio.ensure_future(service.submit(cold))
                await asyncio.sleep(0)
                new_tid = await service.insert(row)
                result = await queued
                hot_again = await service.submit(hot)
                return new_tid, result, hot_again

        new_tid, result, hot_again = asyncio.run(run())
        assert new_tid == 900
        # The queued query re-executed against the post-insert data...
        assert result.extra.get("result_cache") != "hit"
        assert result.tids[0] == new_tid
        # ...while the provably-unaffected predicate stayed cached.
        assert hot_again.extra["result_cache"] == "hit"

    def test_insert_waits_for_inflight_batches(self, relation):
        mutable = generate_relation(SyntheticSpec(
            num_tuples=600, num_selection_dims=3, num_ranking_dims=2,
            cardinality=6, seed=79))
        manager, engine = make_sharded_engine(
            mutable, 2, range_dim="A1", block_size=80,
            with_signature=False, with_skyline=False)
        function = sum_function(["N1", "N2"])
        order = []
        original = engine.execute_many

        def slow_execute_many(batch):
            order.append("engine-start")
            result = original(batch)
            order.append("engine-end")
            return result

        engine.execute_many = slow_execute_many

        async def run():
            config = ServiceConfig(max_linger=0.0, max_batch_size=512)
            async with QueryService(engine, config) as service:
                submitted = asyncio.ensure_future(service.submit(
                    TopKQuery(Predicate.of(), function, 3)))
                # Let the batch reach the engine, then race an insert.
                while not order:
                    await asyncio.sleep(0.001)
                order.append("insert-requested")
                tid = await service.insert(
                    {"A1": 0, "A2": 0, "A3": 0, "N1": 0.0, "N2": 0.0})
                order.append("insert-done")
                await submitted
                return tid

        asyncio.run(run())
        # The insert could not slot in before the in-flight batch finished.
        assert order.index("engine-end") < order.index("insert-done")

    def test_reshard_through_service_keeps_answers(self, relation):
        from repro.shard import HashShardingPolicy

        mutable = generate_relation(SyntheticSpec(
            num_tuples=700, num_selection_dims=3, num_ranking_dims=2,
            cardinality=6, seed=80))
        manager, engine = make_sharded_engine(
            mutable, 3, range_dim="A1", block_size=80,
            with_signature=False, with_skyline=False)
        reference = Executor.for_relation(mutable, block_size=80,
                                          with_signature=False,
                                          with_skyline=False)
        queries = mixed_workload()
        expected = [reference.execute(query) for query in queries]

        async def run():
            async with QueryService(engine,
                                    ServiceConfig(max_linger=0.005)) as service:
                before = await service.submit_many(queries)
                await service.reshard(HashShardingPolicy(2))
                after = await service.submit_many(queries)
                return before, after

        before, after = asyncio.run(run())
        for alone, first, second in zip(expected, before, after):
            assert alone.tids == first.tids == second.tids
            assert alone.scores == first.scores == second.scores

    def test_unsharded_service_has_no_reshard(self, relation):
        _, engine = make_engine(relation)

        async def run():
            async with QueryService(engine, relation=relation) as service:
                with pytest.raises(ServeError, match="ShardManager"):
                    await service.reshard(object())

        asyncio.run(run())


class TestStatsViews:
    def test_merged_scatter_cache_stats(self, relation):
        manager, engine = make_engine(relation, num_shards=3)
        queries = mixed_workload()
        engine.execute_many(queries)
        engine.execute_many(queries)  # repeats: front-door hits
        stats = engine.cache_stats()
        # Front-door result cache, per-shard sums, and fusion counters all
        # come from the one merged mapping.
        assert stats["result_hits"] >= float(len(queries))
        assert stats["fused_groups"] >= 2.0
        assert stats["fused_queries"] >= 6.0
        assert stats["shards_built"] == 3.0
        built = manager.built_executors()
        assert len(built) == 3
        for summed, source in (("shard_bound_hits", "hits"),
                               ("shard_bound_misses", "misses"),
                               ("shard_bound_entries", "entries"),
                               ("shard_plans_reused", "plans_reused"),
                               ("shard_fused_queries", "fused_queries"),
                               ("shard_result_hits", "result_hits")):
            assert stats[summed] == sum(
                executor.cache_stats()[source] for executor in built.values())
        lookups = stats["shard_bound_hits"] + stats["shard_bound_misses"]
        assert stats["shard_bound_hit_rate"] == (
            stats["shard_bound_hits"] / lookups if lookups else 0.0)

    def test_lazily_pruned_shards_stay_unbuilt_in_stats(self, relation):
        manager, engine = make_engine(relation, num_shards=3)
        function = sum_function(["N1", "N2"])
        # Range shards on A1: one single-value predicate touches one shard.
        engine.execute(TopKQuery(Predicate.of(A1=0), function, 3))
        stats = engine.cache_stats()
        assert stats["shards_built"] == 1.0

    def test_service_snapshot_merges_engine_and_service(self, relation):
        _, engine = make_engine(relation)
        queries = mixed_workload()

        async def run():
            async with QueryService(engine,
                                    ServiceConfig(max_linger=0.005)) as service:
                await service.submit_many(queries)
                await service.submit_many(queries)  # cache hits
                return service.stats_snapshot()

        snap = asyncio.run(run())
        assert snap["submitted"] == float(2 * len(queries))
        assert snap["completed"] == float(2 * len(queries))
        for key in ("throughput_qps", "latency_p50", "latency_p99",
                    "queue_wait_p50", "mean_batch_size", "fusion_rate",
                    "current_linger", "pending", "result_hits",
                    "fused_queries", "hit_rate"):
            assert key in snap
        assert snap["pending"] == 0.0
        assert snap["result_hits"] >= float(len(queries) - 1)
        assert 0.0 <= snap["fusion_rate"] <= 1.0

    def test_percentile_nearest_rank(self):
        from repro.serve import percentile

        assert percentile([], 50) == 0.0
        # Nearest rank: ceil(q/100 * n), never rounded half-to-even.
        assert percentile([1.0, 2.0], 50) == 1.0
        assert percentile([6.0, 5.0, 4.0, 3.0, 2.0, 1.0], 50) == 3.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 99) == 4.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 25) == 1.0

    def test_fusion_rate_excludes_pre_service_engine_use(self, relation):
        _, engine = make_engine(relation)
        function = sum_function(["N1", "N2"])
        # Fusion the engine did *before* the service attached...
        engine.execute_many([TopKQuery(Predicate.of(), function, k)
                             for k in (2, 5, 8)])
        assert engine.cache_stats()["fused_queries"] == 3.0

        async def run():
            async with QueryService(engine) as service:
                # ...must not leak into the service's rate: these two
                # requests use distinct functions, so nothing fuses.
                await service.submit_many([
                    TopKQuery(Predicate.of(A1=0),
                              LinearFunction(["N1"], [1.0]), 3),
                    TopKQuery(Predicate.of(A1=1),
                              LinearFunction(["N2"], [1.0]), 3),
                ])
                return service.stats_snapshot()

        snap = asyncio.run(run())
        assert snap["fusion_rate"] == 0.0
        assert snap["fused_queries"] == 3.0  # lifetime counter untouched

    def test_ensure_pool_grows_for_front_door_reserve(self, relation):
        # A scatter pool created before the serving layer attaches must be
        # replaced by one large enough for the reserve — a same-size pool
        # would let front-door calls occupy every worker and deadlock the
        # legs they wait on.
        manager, engine = make_engine(relation, num_shards=2)
        small = engine.ensure_pool()
        assert small._max_workers == 2
        grown = engine.ensure_pool(reserve=2)
        assert grown is not small
        assert grown._max_workers == 4
        # Idempotent once large enough.
        assert engine.ensure_pool(reserve=2) is grown
        assert engine.ensure_pool() is grown

    def test_service_survives_engine_pool_growth(self, relation):
        # A second caller growing the engine pool mid-service replaces the
        # pool the service started on; dispatches re-fetch the current
        # pool, so requests keep completing.
        manager, engine = make_engine(relation, num_shards=2)
        function = sum_function(["N1", "N2"])

        async def run():
            async with QueryService(engine) as service:
                first = await service.submit(
                    TopKQuery(Predicate.of(), function, 3))
                engine.ensure_pool(reserve=8)
                second = await service.submit(
                    TopKQuery(Predicate.of(), function, 5))
                return first, second

        first, second = asyncio.run(run())
        assert len(first.tids) == 3
        assert len(second.tids) == 5

    def test_config_validation(self):
        with pytest.raises(ServeError):
            ServiceConfig(max_batch_size=0)
        with pytest.raises(ServeError):
            ServiceConfig(min_linger=2.0, max_linger=1.0)
        with pytest.raises(ServeError):
            ServiceConfig(engine_concurrency=0)
        with pytest.raises(ServeError):
            ServiceConfig(backend_limits={"ranking-cube": 0})
        with pytest.raises(ServeError):
            ServiceConfig(default_timeout=0.0)


class TestEngineFailureMapping:
    """Engine-side fault surfaces map to typed serving errors."""

    def test_map_engine_error_types(self, relation):
        from repro.errors import DeadlineExceededError, ShardWorkerError
        from repro.serve import ShardUnavailableError

        _, engine = make_engine(relation)
        service = QueryService(engine)  # mapping needs no running loop
        died = ShardWorkerError("shard 1 worker process died (exit code -9)",
                                shard_index=1)
        mapped = service._map_engine_error(died)
        assert isinstance(mapped, ShardUnavailableError)
        assert mapped.__cause__ is died
        assert "shard unavailable" in str(mapped)
        late = DeadlineExceededError("deadline exceeded before scatter")
        mapped = service._map_engine_error(late)
        assert isinstance(mapped, RequestTimeoutError)
        assert mapped.__cause__ is late
        other = ValueError("not an engine fault")
        assert service._map_engine_error(other) is other

    def test_engine_shard_failure_surfaces_as_shard_unavailable(
            self, relation):
        from repro.errors import ShardWorkerError
        from repro.serve import ShardUnavailableError

        _, engine = make_engine(relation)
        original = engine.execute_many
        broken = {"on": True}

        def flaky_execute_many(batch):
            if broken["on"]:
                raise ShardWorkerError(
                    "shard 1 worker process died (exit code -9)",
                    shard_index=1)
            return original(batch)

        engine.execute_many = flaky_execute_many
        query = TopKQuery(Predicate.of(A1=0), sum_function(["N1", "N2"]), 3)

        async def run():
            config = ServiceConfig(max_linger=0.0)
            async with QueryService(engine, config) as service:
                with pytest.raises(ShardUnavailableError) as excinfo:
                    await service.submit(query)
                assert isinstance(excinfo.value.__cause__, ShardWorkerError)
                # The service outlives the shard loss: once the engine
                # recovers, the same service answers again.
                broken["on"] = False
                result = await service.submit(query)
                return result, service.stats_snapshot()

        result, snap = asyncio.run(run())
        assert len(result.tids) == 3
        assert snap["failed"] == 1.0
        assert snap["completed"] == 1.0

    def test_partial_batch_failure_resolves_per_position(self, relation):
        """One fused group's failure rejects its members, not the batch."""
        from repro.fault import FaultInjector
        from repro.serve import ShardUnavailableError

        _, engine = make_engine(relation, num_shards=3)
        engine.fault_injector = FaultInjector(
            seed=9, rates={"worker.crash.pre": 1.0}, max_faults=1)
        f_hit = sum_function(["N1", "N2"])
        f_spared = sum_function(["N1"])
        queries = [TopKQuery(Predicate.of(), f_hit, 3),
                   TopKQuery(Predicate.of(), f_hit, 5),
                   TopKQuery(Predicate.of(), f_spared, 3),
                   TopKQuery(Predicate.of(), f_spared, 5)]

        async def run():
            config = ServiceConfig(max_batch_size=4, max_linger=0.2)
            async with QueryService(engine, config) as service:
                tasks = [asyncio.ensure_future(service.submit(query))
                         for query in queries]
                outcomes = await asyncio.gather(*tasks,
                                                return_exceptions=True)
                return outcomes, service.stats_snapshot()

        outcomes, snap = asyncio.run(run())
        assert isinstance(outcomes[0], ShardUnavailableError)
        assert isinstance(outcomes[1], ShardUnavailableError)
        for query, result in zip(queries[2:], outcomes[2:]):
            expected = engine.execute(query)
            assert result.tids == expected.tids
            assert result.scores == expected.scores
        assert snap["failed"] == 2.0
        assert snap["completed"] == 2.0

    def test_close_force_drains_through_engine_failures(self, relation):
        """Shutdown under a dead engine resolves every future — no hang."""
        from repro.errors import ShardWorkerError
        from repro.serve import ShardUnavailableError

        _, engine = make_engine(relation)

        def broken_execute_many(batch):
            raise ShardWorkerError(
                "shard 0 worker process died (exit code -9)", shard_index=0)

        engine.execute_many = broken_execute_many
        function = sum_function(["N1", "N2"])
        queries = [TopKQuery(Predicate.of(A1=value % 4), function, 3)
                   for value in range(9)]

        async def run():
            config = ServiceConfig(max_batch_size=4, max_linger=60.0,
                                   min_linger=60.0)
            service = QueryService(engine, config)
            async with service:
                tasks = [asyncio.ensure_future(service.submit(query))
                         for query in queries]
                await asyncio.sleep(0)  # admit all; none dispatched yet
            done, pending = await asyncio.wait(tasks, timeout=10.0)
            return done, pending, service.stats_snapshot()

        done, pending, snap = asyncio.run(run())
        assert pending == set()
        for task in done:
            with pytest.raises(ShardUnavailableError):
                task.result()
        assert snap["failed"] == float(len(queries))


class TestDeadlinePropagation:
    def test_submit_timeout_mints_an_engine_deadline(self, relation):
        _, engine = make_engine(relation)
        captured = {}
        original = engine.execute_many

        def capturing(batch, parent_span=None, deadline=None,
                      allow_partial=None):
            captured["deadline"] = deadline
            return original(batch, parent_span=parent_span)

        engine.execute_many = capturing  # installed before __init__ inspects
        query = TopKQuery(Predicate.of(A1=0), sum_function(["N1", "N2"]), 3)

        async def run():
            config = ServiceConfig(max_linger=0.0)
            async with QueryService(engine, config) as service:
                await service.submit(query, timeout=5.0)
                first = captured["deadline"]
                await service.submit(query, timeout=None)
                return first, captured["deadline"]

        bounded, unbounded = asyncio.run(run())
        # The deadline the engine saw ticks on the service clock and is
        # no looser than the submit timeout that minted it.
        assert bounded is not None
        assert 0.0 < bounded.remaining() <= 5.0
        # No timeout, no deadline: the engine keeps its unbounded waits.
        assert unbounded is None

    def test_mixed_batch_omits_the_engine_deadline(self, relation):
        """One unbounded member vetoes the batch's engine deadline.

        The engine-side deadline is the max of the members' deadlines —
        but only when every live member has one; bounding an unbounded
        request would let a peer's timeout cancel work the unbounded
        client is still entitled to.
        """
        _, engine = make_engine(relation)
        seen = []
        original = engine.execute_many

        def capturing(batch, parent_span=None, deadline=None,
                      allow_partial=None):
            seen.append(deadline)
            return original(batch, parent_span=parent_span)

        engine.execute_many = capturing
        function = sum_function(["N1", "N2"])

        async def run():
            config = ServiceConfig(max_batch_size=2, max_linger=0.2)
            async with QueryService(engine, config) as service:
                await asyncio.gather(
                    service.submit(TopKQuery(Predicate.of(A1=0), function, 3),
                                   timeout=5.0),
                    service.submit(TopKQuery(Predicate.of(A1=1), function, 3),
                                   timeout=None))

        asyncio.run(run())
        assert seen and all(deadline is None for deadline in seen)
