"""The worked example of Chapter 3 (Tables 3.1–3.7, Figure 3.3).

The thesis runs a top-2 query ``A1 = 1 and A2 = 1 order by N1 + N2`` over a
small example database whose equi-depth partition has bin boundaries
``[0, 0.4, 0.45, 0.8, 1]`` and ``[0, 0.2, 0.45, 0.9, 1]``.  The tests below
reconstruct that setup with an explicit grid and check the elements the
thesis walks through: the block assignment, the pseudo-block scale factor,
the first candidate block, and the final answer {t1, t3}.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cube import RankingCube, find_start_block
from repro.functions import sum_function
from repro.partition.grid import GridPartition
from repro.query import Predicate, TopKQuery
from repro.storage.table import Relation, Schema


@pytest.fixture()
def example_setup():
    schema = Schema(("A1", "A2"), ("N1", "N2"))
    rows = [
        {"A1": 1, "A2": 1, "N1": 0.05, "N2": 0.05},   # t1 (tid 0)
        {"A1": 1, "A2": 2, "N1": 0.65, "N2": 0.70},   # t2 (tid 1)
        {"A1": 1, "A2": 1, "N1": 0.05, "N2": 0.25},   # t3 (tid 2)
        {"A1": 1, "A2": 1, "N1": 0.35, "N2": 0.15},   # t4 (tid 3)
        {"A1": 2, "A2": 2, "N1": 0.50, "N2": 0.50},   # filler tuples
        {"A1": 2, "A2": 1, "N1": 0.85, "N2": 0.95},
        {"A1": 2, "A2": 2, "N1": 0.42, "N2": 0.30},
        {"A1": 1, "A2": 2, "N1": 0.90, "N2": 0.10},
    ]
    relation = Relation.from_rows(schema, rows, name="example")
    grid = GridPartition(("N1", "N2"), {
        "N1": np.array([0.0, 0.4, 0.45, 0.8, 1.0]),
        "N2": np.array([0.0, 0.2, 0.45, 0.9, 1.0]),
    })
    cube = RankingCube(relation, grid=grid, block_size=2)
    return relation, grid, cube


class TestWorkedExample:
    def test_grid_shape_matches_table(self, example_setup):
        _, grid, _ = example_setup
        assert grid.bins_per_dim == (4, 4)
        assert grid.num_blocks == 16
        assert grid.meta()["N1"] == [0.0, 0.4, 0.45, 0.8, 1.0]

    def test_block_assignment_of_example_tuples(self, example_setup):
        relation, grid, _ = example_setup
        bids = grid.assign(relation)
        # t1 = (0.05, 0.05) and t4 = (0.35, 0.15) share the first block;
        # t3 = (0.05, 0.25) sits one block above; t2 = (0.65, 0.70) elsewhere.
        assert bids[0] == bids[3]
        assert bids[2] != bids[0]
        assert grid.coords_of_bid(int(bids[0])) == (0, 0)
        assert grid.coords_of_bid(int(bids[2])) == (0, 1)
        assert grid.coords_of_bid(int(bids[1])) == (2, 2)

    def test_scale_factor_matches_thesis(self, example_setup):
        _, grid, cube = example_setup
        cuboid = cube.cuboids[("A1", "A2")]
        # Cardinalities of A1 and A2 are both 2 -> sf = 2 (Example 4).
        assert cuboid.scale_factor == 2

    def test_first_candidate_block_contains_origin(self, example_setup):
        _, grid, _ = example_setup
        start = find_start_block(grid, sum_function(["N1", "N2"]))
        assert grid.coords_of_bid(start) == (0, 0)

    def test_top2_query_returns_t1_and_t3(self, example_setup):
        relation, _, cube = example_setup
        query = TopKQuery(Predicate.of(A1=1, A2=1), sum_function(["N1", "N2"]), 2)
        result = cube.query(query)
        assert result.tids == (0, 2)  # t1 then t3
        assert result.scores[0] == pytest.approx(0.10)
        assert result.scores[1] == pytest.approx(0.30)

    def test_pseudo_block_lookup(self, example_setup):
        relation, grid, cube = example_setup
        cuboid = cube.cuboids[("A1", "A2")]
        bid = int(grid.assign(relation)[0])
        pid = grid.pid_of_bid(bid, cuboid.scale_factor)
        entries = cuboid.get_pseudo_block((1, 1), pid)
        tids = {tid for tid, _ in entries}
        # t1, t3 and t4 all fall in the first pseudo block of cell (1, 1).
        assert tids == {0, 2, 3}

    def test_query_with_single_condition_uses_smaller_cuboid(self, example_setup):
        relation, _, cube = example_setup
        assert cube.covering_cuboids(("A1",)) == [("A1",)]
        query = TopKQuery(Predicate.of(A1=1), sum_function(["N1", "N2"]), 3)
        result = cube.query(query)
        assert result.tids[0] == 0
        assert len(result.tids) == 3
