"""Tests for ranking functions and their box lower bounds."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.functions import (
    ConstrainedFunction,
    ExpressionFunction,
    FunctionShape,
    LinearFunction,
    ManhattanDistanceFunction,
    SquaredDistanceFunction,
    Var,
    WeightedAverageFunction,
    skewed_linear_function,
    sum_function,
)
from repro.geometry import Box


def random_box(dims, lows, widths):
    highs = [lo + w for lo, w in zip(lows, widths)]
    return Box.from_bounds(dims, lows, highs)


class TestLinearFunction:
    def test_evaluate(self):
        fn = LinearFunction(["a", "b"], [2.0, -1.0], constant=0.5)
        assert fn([1.0, 3.0]) == pytest.approx(2 - 3 + 0.5)

    def test_lower_bound_uses_signs(self):
        fn = LinearFunction(["a", "b"], [1.0, -1.0])
        box = Box.from_bounds(["a", "b"], [0, 0], [2, 4])
        # min = 0*1 + 4*(-1) = -4
        assert fn.lower_bound(box) == -4

    def test_shape(self):
        assert LinearFunction(["a"], [1.0]).shape is FunctionShape.MONOTONE
        assert LinearFunction(["a"], [-1.0]).shape is FunctionShape.GENERAL

    def test_skewness(self):
        fn = LinearFunction(["a", "b"], [1.0, 5.0])
        assert fn.skewness() == 5.0
        assert LinearFunction(["a"], [0.0]).skewness() == 1.0

    def test_from_weights_and_sum(self):
        fn = LinearFunction.from_weights({"b": 2.0, "a": 1.0})
        assert fn.dims == ("a", "b")
        assert sum_function(["x", "y"]).evaluate([1, 2]) == 3

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            LinearFunction(["a", "b"], [1.0])
        with pytest.raises(ValueError):
            LinearFunction([], [])

    def test_skewed_generator_respects_u(self):
        rng = np.random.default_rng(3)
        fn = skewed_linear_function(["a", "b", "c"], 4.0, rng=rng)
        assert fn.skewness() == pytest.approx(4.0)

    def test_weighted_average_normalizes(self):
        fn = WeightedAverageFunction(["a", "b"], [1.0, 3.0])
        assert sum(fn.weights) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            WeightedAverageFunction(["a"], [0.0])


class TestDistanceFunctions:
    def test_squared_distance(self):
        fn = SquaredDistanceFunction(["a", "b"], [1.0, 2.0])
        assert fn([1.0, 2.0]) == 0.0
        assert fn([2.0, 0.0]) == pytest.approx(1 + 4)
        assert fn.shape is FunctionShape.SEMI_MONOTONE
        assert fn.minimum_point() == {"a": 1.0, "b": 2.0}

    def test_squared_distance_lower_bound_clamps(self):
        fn = SquaredDistanceFunction(["a"], [0.5])
        inside = Box.from_bounds(["a"], [0.0], [1.0])
        outside = Box.from_bounds(["a"], [2.0], [3.0])
        assert fn.lower_bound(inside) == 0.0
        assert fn.lower_bound(outside) == pytest.approx(2.25)

    def test_manhattan_distance(self):
        fn = ManhattanDistanceFunction(["a", "b"], [0.0, 0.0], [1.0, 2.0])
        assert fn([1.0, -1.0]) == pytest.approx(1 + 2)
        box = Box.from_bounds(["a", "b"], [2, 3], [4, 5])
        assert fn.lower_bound(box) == pytest.approx(2 + 6)

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            SquaredDistanceFunction(["a"], [0.0], [-1.0])
        with pytest.raises(ValueError):
            ManhattanDistanceFunction(["a"], [0.0], [-1.0])


class TestExpressionFunctions:
    def test_general_fg_function(self):
        # fg = (A - B^2)^2 from Section 5.4.2
        fn = ExpressionFunction((Var("A") - Var("B") ** 2) ** 2)
        assert fn.dims == ("A", "B")
        assert fn.evaluate_mapping({"A": 4.0, "B": 2.0}) == 0.0
        assert fn.evaluate_mapping({"A": 5.0, "B": 2.0}) == 1.0

    def test_expression_lower_bound_is_sound(self):
        fn = ExpressionFunction((Var("A") - Var("B") ** 2) ** 2)
        box = Box.from_bounds(["A", "B"], [0.0, 0.0], [1.0, 1.0])
        lb = fn.lower_bound(box)
        rng = np.random.default_rng(0)
        samples = rng.random((200, 2))
        values = [fn.evaluate(row) for row in samples]
        assert lb <= min(values) + 1e-12

    def test_expression_operator_sugar(self):
        expr = 2 * Var("x") + 1 - Var("y")
        fn = ExpressionFunction(expr)
        assert fn.evaluate_mapping({"x": 2.0, "y": 1.0}) == pytest.approx(4.0)

    def test_unknown_dims_rejected(self):
        with pytest.raises(ValueError):
            ExpressionFunction(Var("x") + Var("y"), dims=["x"])

    def test_constrained_function(self):
        base = LinearFunction(["A", "B"], [1.0, 1.0])
        fn = ConstrainedFunction(base, "B", 0.4, 0.6)
        assert fn([0.1, 0.5]) == pytest.approx(0.6)
        assert fn([0.1, 0.9]) == math.inf
        inside = Box.from_bounds(["A", "B"], [0, 0.45], [1, 0.5])
        outside = Box.from_bounds(["A", "B"], [0, 0.7], [1, 0.9])
        assert fn.lower_bound(inside) == pytest.approx(0.45)
        assert fn.lower_bound(outside) == math.inf

    def test_constrained_function_validation(self):
        base = LinearFunction(["A"], [1.0])
        with pytest.raises(ValueError):
            ConstrainedFunction(base, "Z", 0, 1)
        with pytest.raises(ValueError):
            ConstrainedFunction(base, "A", 1, 0)


# ----------------------------------------------------------------------
# property-based soundness of lower bounds for every function family
# ----------------------------------------------------------------------
coords = st.floats(min_value=-10, max_value=10, allow_nan=False)
widths = st.floats(min_value=0, max_value=5, allow_nan=False)


@settings(max_examples=60, deadline=None)
@given(st.lists(coords, min_size=2, max_size=2), st.lists(widths, min_size=2, max_size=2),
       st.lists(st.floats(min_value=0, max_value=1), min_size=2, max_size=2),
       st.lists(coords, min_size=2, max_size=2))
def test_lower_bounds_never_exceed_point_values(lows, box_widths, fractions, params):
    """For every function family, lower_bound(box) <= f(point in box)."""
    dims = ["u", "v"]
    box = random_box(dims, lows, box_widths)
    point = [lo + frac * w for lo, w, frac in zip(lows, box_widths, fractions)]
    functions = [
        LinearFunction(dims, params),
        SquaredDistanceFunction(dims, params),
        ManhattanDistanceFunction(dims, [abs(p) for p in params]),
        ExpressionFunction((Var("u") - Var("v") ** 2) ** 2, dims=dims),
        ExpressionFunction(Var("u") * Var("v") + Var("u"), dims=dims),
    ]
    for fn in functions:
        assert fn.lower_bound(box) <= fn.evaluate(point) + 1e-6
