"""Tests for index merging: joint states, expanders, join-signatures, engines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import QueryError
from repro.functions import (
    ConstrainedFunction,
    ExpressionFunction,
    LinearFunction,
    SquaredDistanceFunction,
    Var,
)
from repro.indexmerge import (
    MODE_BASELINE,
    MODE_PROGRESSIVE,
    MODE_SELECTIVE,
    IndexMergeTopK,
    JoinSignature,
    JoinSignatureSet,
    JointState,
    MergeContext,
    choose_expander,
)
from repro.indexmerge.expansion import (
    FullExpander,
    NeighborhoodExpander,
    ThresholdExpander,
)
from repro.storage.btree import BPlusTree
from repro.storage.rtree import RTree
from repro.workloads import SyntheticSpec, generate_relation


@pytest.fixture(scope="module")
def relation():
    return generate_relation(SyntheticSpec(num_tuples=1500, num_selection_dims=2,
                                           num_ranking_dims=3, cardinality=4, seed=61))


@pytest.fixture(scope="module")
def btrees(relation):
    return {
        dim: BPlusTree.build(dim, relation.ranking_column(dim), fanout=12)
        for dim in relation.ranking_dims
    }


@pytest.fixture(scope="module")
def pair_signature(btrees):
    return JoinSignatureSet.full([btrees["N1"], btrees["N2"]])


def oracle_scores(relation, function, k):
    values = relation.ranking_values_bulk(np.arange(relation.num_tuples), function.dims)
    scores = sorted(function.evaluate(row) for row in values)
    return [pytest.approx(s) for s in scores[:k]]


FUNCTIONS = {
    "semi_monotone": SquaredDistanceFunction(["N1", "N2"], [0.25, 0.75]),
    "general": ExpressionFunction((Var("N1") - Var("N2") ** 2) ** 2),
    "constrained": ConstrainedFunction(
        LinearFunction(["N1", "N2"], [1.0, 1.0]), "N2", 0.3, 0.5),
    "monotone": LinearFunction(["N1", "N2"], [1.0, 2.0]),
}


class TestJointState:
    def test_root_state_and_box(self, relation, btrees):
        context = MergeContext([btrees["N1"], btrees["N2"]], FUNCTIONS["monotone"])
        root = context.root_state()
        assert not root.is_leaf
        box = root.box()
        assert set(box.dims) == {"N1", "N2"}
        assert root.lower_bound(FUNCTIONS["monotone"]) <= 0.1
        assert root.key == ((), ())

    def test_child_coordinates(self, btrees):
        context = MergeContext([btrees["N1"], btrees["N2"]], FUNCTIONS["monotone"])
        root = context.root_state()
        children_lists = context.all_member_children(root)
        child = JointState((children_lists[0][0], children_lists[1][1]))
        assert root.child_coordinates(child) == (1, 2)

    def test_merge_requires_leaf(self, btrees):
        context = MergeContext([btrees["N1"], btrees["N2"]], FUNCTIONS["monotone"])
        with pytest.raises(QueryError):
            context.merge_leaf_state(context.root_state())

    def test_uncovered_dims_rejected(self, btrees):
        with pytest.raises(QueryError):
            MergeContext([btrees["N1"]], FUNCTIONS["monotone"])
        with pytest.raises(QueryError):
            MergeContext([], FUNCTIONS["monotone"])


class TestExpanders:
    @pytest.mark.parametrize("factory", [FullExpander, ThresholdExpander])
    def test_expanders_emit_children_in_bound_order(self, btrees, factory):
        function = FUNCTIONS["general"]
        context = MergeContext([btrees["N1"], btrees["N2"]], function)
        expander = factory(context, context.root_state())
        bounds = []
        for _ in range(10):
            state = expander.get_next()
            if state is None:
                break
            bounds.append(state.lower_bound(function))
        assert bounds == sorted(bounds)

    def test_neighborhood_expander_matches_threshold_front(self, btrees):
        function = FUNCTIONS["semi_monotone"]
        context = MergeContext([btrees["N1"], btrees["N2"]], function)
        neighborhood = NeighborhoodExpander(context, context.root_state())
        threshold = ThresholdExpander(context, context.root_state())
        n_first = [neighborhood.get_next().lower_bound(function) for _ in range(5)]
        t_first = [threshold.get_next().lower_bound(function) for _ in range(5)]
        assert n_first == pytest.approx(t_first)

    def test_peek_matches_next(self, btrees):
        function = FUNCTIONS["monotone"]
        context = MergeContext([btrees["N1"], btrees["N2"]], function)
        expander = ThresholdExpander(context, context.root_state())
        peeked = expander.peek_bound()
        state = expander.get_next()
        assert state.lower_bound(function) == pytest.approx(peeked)

    def test_choose_expander_strategy(self, relation, btrees):
        context = MergeContext([btrees["N1"], btrees["N2"]], FUNCTIONS["monotone"])
        root = context.root_state()
        assert isinstance(choose_expander(context, root, progressive=False), FullExpander)
        assert isinstance(choose_expander(context, root), NeighborhoodExpander)
        general = MergeContext([btrees["N1"], btrees["N2"]], FUNCTIONS["general"])
        assert isinstance(choose_expander(general, general.root_state()),
                          ThresholdExpander)
        points = relation.ranking_values_bulk(np.arange(relation.num_tuples),
                                              ["N1", "N2"])
        rtree = RTree.build(["N1", "N2"], points, max_entries=16)
        rtree_context = MergeContext([rtree, btrees["N3"]],
                                     SquaredDistanceFunction(["N1", "N3"], [0.5, 0.5]))
        assert isinstance(choose_expander(rtree_context, rtree_context.root_state()),
                          ThresholdExpander)


class TestJoinSignature:
    def test_requires_two_indexes(self, btrees):
        from repro.errors import SignatureError
        with pytest.raises(SignatureError):
            JoinSignature([btrees["N1"]])

    def test_nonempty_states_recorded(self, btrees, pair_signature):
        signature = next(iter(pair_signature.signatures.values()))
        assert signature.num_states() > 0
        assert signature.size_in_bytes() > 0
        assert signature.has_state(((), ()))
        assert signature.stats.build_seconds >= 0

    def test_child_pruning_is_sound(self, relation, btrees, pair_signature):
        """Every child declared empty really contains no tuple."""
        t1, t2 = btrees["N1"], btrees["N2"]
        leaf_paths_1 = dict(t1.iter_leaf_paths())
        leaf_paths_2 = dict(t2.iter_leaf_paths())
        function = FUNCTIONS["monotone"]
        context = MergeContext([t1, t2], function)
        root = context.root_state()
        children = context.all_member_children(root)
        for c1 in children[0][:4]:
            for c2 in children[1][:4]:
                child = JointState((c1, c2))
                declared = pair_signature.child_is_nonempty(
                    root.key, root.child_coordinates(child))
                truly = any(
                    leaf_paths_1[tid][: len(c1.path)] == c1.path
                    and leaf_paths_2[tid][: len(c2.path)] == c2.path
                    for tid in range(relation.num_tuples)
                )
                if truly:
                    assert declared, "a non-empty child must never be pruned"

    def test_unknown_parent_means_empty(self, pair_signature):
        fake_key = ((9, 9, 9), (9, 9, 9))
        assert not pair_signature.child_is_nonempty(fake_key, (1, 1))
        assert not pair_signature.state_is_known(fake_key)

    def test_pairwise_set_for_three_indexes(self, btrees):
        trio = [btrees["N1"], btrees["N2"], btrees["N3"]]
        pairwise = JoinSignatureSet.pairwise(trio)
        assert len(pairwise.signatures) == 3
        assert pairwise.size_in_bytes() > 0
        assert pairwise.build_seconds() >= 0


class TestEngines:
    @pytest.mark.parametrize("name", list(FUNCTIONS))
    @pytest.mark.parametrize("mode", [MODE_BASELINE, MODE_PROGRESSIVE, MODE_SELECTIVE])
    def test_all_modes_match_oracle(self, relation, btrees, pair_signature, name, mode):
        function = FUNCTIONS[name]
        engine = IndexMergeTopK(
            [btrees["N1"], btrees["N2"]], mode=mode,
            join_signatures=pair_signature if mode == MODE_SELECTIVE else None)
        result = engine.query(function, 10)
        finite_expected = [s for s in oracle_scores(relation, function, 10)]
        assert list(result.scores) == finite_expected[: len(result.scores)]

    def test_mode_validation(self, btrees):
        with pytest.raises(ValueError):
            IndexMergeTopK([btrees["N1"], btrees["N2"]], mode="??")
        with pytest.raises(ValueError):
            IndexMergeTopK([btrees["N1"], btrees["N2"]], mode=MODE_SELECTIVE)

    def test_progressive_generates_fewer_states_than_baseline(self, relation, btrees):
        function = FUNCTIONS["general"]
        baseline = IndexMergeTopK([btrees["N1"], btrees["N2"]], mode=MODE_BASELINE)
        progressive = IndexMergeTopK([btrees["N1"], btrees["N2"]], mode=MODE_PROGRESSIVE)
        r_bl = baseline.query(function, 20)
        r_pe = progressive.query(function, 20)
        assert r_pe.states_generated < r_bl.states_generated
        assert r_pe.peak_heap_size < r_bl.peak_heap_size

    def test_signature_prunes_further(self, relation, btrees, pair_signature):
        function = FUNCTIONS["general"]
        progressive = IndexMergeTopK([btrees["N1"], btrees["N2"]], mode=MODE_PROGRESSIVE)
        selective = IndexMergeTopK([btrees["N1"], btrees["N2"]], mode=MODE_SELECTIVE,
                                   join_signatures=pair_signature)
        r_pe = progressive.query(function, 20)
        r_sig = selective.query(function, 20)
        assert r_sig.states_generated <= r_pe.states_generated
        assert list(r_sig.scores) == list(r_pe.scores)

    def test_three_way_merge_with_pairwise_signatures(self, relation, btrees):
        trio = [btrees["N1"], btrees["N2"], btrees["N3"]]
        function = SquaredDistanceFunction(["N1", "N2", "N3"], [0.3, 0.6, 0.1])
        pairwise = JoinSignatureSet.pairwise(trio)
        engine = IndexMergeTopK(trio, mode=MODE_SELECTIVE, join_signatures=pairwise)
        result = engine.query(function, 10)
        assert list(result.scores) == oracle_scores(relation, function, 10)

    def test_rtree_merge(self, relation, btrees):
        points = relation.ranking_values_bulk(np.arange(relation.num_tuples),
                                              ["N1", "N2"])
        rtree = RTree.build(["N1", "N2"], points, max_entries=16)
        function = SquaredDistanceFunction(["N1", "N2", "N3"], [0.2, 0.4, 0.9])
        engine = IndexMergeTopK([rtree, btrees["N3"]], mode=MODE_PROGRESSIVE)
        result = engine.query(function, 10)
        assert list(result.scores) == oracle_scores(relation, function, 10)

    def test_partial_attribute_ranking(self, relation, btrees):
        # Only a subset of the indexed attributes participates in ranking
        # (Figure 5.18): merging still returns correct results.
        function = LinearFunction(["N1"], [1.0])
        engine = IndexMergeTopK([btrees["N1"], btrees["N2"]], mode=MODE_PROGRESSIVE)
        result = engine.query(function, 5)
        assert list(result.scores) == oracle_scores(relation, function, 5)
