"""Tests for the unified engine layer: registry, planner, executor, cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cube import RankingCube
from repro.engine import (
    Executor,
    EngineRegistry,
    LowerBoundCache,
    Planner,
    RankingCubeBackend,
    SkylineBackend,
    TableScanBackend,
    kind_of,
)
from repro.errors import PlanningError
from repro.functions import LinearFunction, SquaredDistanceFunction
from repro.functions.base import RankingFunction
from repro.joins import JoinCondition, RelationTerm, SPJRQuery
from repro.query import Predicate, SkylineQuery, TopKQuery
from repro.skyline import BooleanFirstSkyline, SkylineEngine
from repro.workloads import QuerySpec, SyntheticSpec, generate_queries, generate_relation
from tests.conftest import brute_force_topk


@pytest.fixture(scope="module")
def relation():
    return generate_relation(SyntheticSpec(num_tuples=3000, num_selection_dims=3,
                                           num_ranking_dims=2, cardinality=8,
                                           seed=111))


@pytest.fixture(scope="module")
def executor(relation):
    return Executor.for_relation(relation, block_size=200, rtree_max_entries=16)


class PerTupleFunction(RankingFunction):
    """Wrapper forcing the per-tuple (seed) scoring path of a function."""

    def __init__(self, inner: RankingFunction) -> None:
        self.inner = inner
        self.dims = inner.dims

    def evaluate(self, values):
        return self.inner.evaluate(values)

    def lower_bound(self, box):
        return self.inner.lower_bound(box)

    @property
    def shape(self):
        return self.inner.shape

    def minimum_point(self):
        return self.inner.minimum_point()


class TestRouting:
    def test_topk_routes_to_ranking_cube(self, executor):
        query = TopKQuery(Predicate.of(A1=1, A2=2),
                          LinearFunction(["N1", "N2"], [1.0, 2.0]), 5)
        result = executor.execute(query)
        assert result.extra["backend"] == "ranking-cube"
        assert "ranking-cube" in result.extra["plan"]
        assert result.backend == "ranking-cube"
        assert result.plan is not None

    def test_skyline_routes_to_skyline_engine(self, executor):
        query = SkylineQuery(Predicate.of(A1=1), ("N1", "N2"))
        result = executor.execute(query)
        assert result.extra["backend"] == "skyline"
        assert result.plan is not None and "skyline" in result.plan

    def test_join_routes_to_index_merge(self):
        r1 = generate_relation(SyntheticSpec(num_tuples=400, num_selection_dims=2,
                                             num_ranking_dims=2, cardinality=4,
                                             seed=91), name="R1")
        r2 = generate_relation(SyntheticSpec(num_tuples=300, num_selection_dims=2,
                                             num_ranking_dims=2, cardinality=4,
                                             seed=92), name="R2")
        executor = Executor.for_system([r1, r2], rtree_max_entries=16)
        query = SPJRQuery(
            terms=(RelationTerm(r1, Predicate.of(A2=1),
                                LinearFunction(["N1", "N2"], [1, 1])),
                   RelationTerm(r2, Predicate.of(A2=2),
                                LinearFunction(["N1"], [1.0]))),
            joins=(JoinCondition("R1", "A1", "R2", "A1"),), k=5)
        result = executor.execute(query)
        assert result.extra["backend"] == "index-merge"
        assert "join_order" in result.extra["plan"]

    def test_unroutable_query_kind(self, executor):
        with pytest.raises(PlanningError):
            executor.execute(object())

    def test_no_supporting_backend(self, relation):
        from repro.signature import SignatureRankingCube

        lonely = Executor()
        cube = SignatureRankingCube(relation, rtree_max_entries=16)
        lonely.register(SkylineBackend(SkylineEngine(cube)))
        with pytest.raises(PlanningError):
            lonely.execute(TopKQuery(Predicate.of(),
                                     LinearFunction(["N1"], [1.0]), 3))

    def test_kind_of(self, relation):
        assert kind_of(TopKQuery(Predicate.of(),
                                 LinearFunction(["N1"], [1.0]), 1)) == "topk"
        assert kind_of(SkylineQuery(Predicate.of(), ("N1",))) == "skyline"
        with pytest.raises(PlanningError):
            kind_of(42)


class TestPlannerResultsMatchDirectCalls:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_linear_workload(self, relation, executor, seed):
        queries = generate_queries(
            relation, QuerySpec(k=10, num_selection_conditions=2,
                                num_ranking_dims=2, skewness=2.0, seed=seed),
            count=4)
        direct = RankingCube(relation, block_size=200)
        for query in queries:
            routed = executor.execute(query)
            reference = direct.query(query)
            assert routed.tids == reference.tids
            assert routed.scores == reference.scores
            _, expected = brute_force_topk(relation, query)
            assert routed.scores == pytest.approx(expected)

    def test_distance_workload(self, relation, executor):
        queries = generate_queries(
            relation, QuerySpec(k=5, num_selection_conditions=1,
                                num_ranking_dims=2, function_kind="distance",
                                seed=9),
            count=3)
        for query in queries:
            routed = executor.execute(query)
            _, expected = brute_force_topk(relation, query)
            assert routed.scores == pytest.approx(expected)

    def test_skyline_matches_direct_engines(self, relation, executor):
        baseline = BooleanFirstSkyline(relation)
        for value in (0, 1, 2):
            query = SkylineQuery(Predicate.of(A1=value), ("N1", "N2"))
            assert executor.execute(query).tids == baseline.query(query).tids


class TestVectorizedParity:
    """Vectorized block scoring == the seed per-tuple loop, bit for bit."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_workload_identical(self, relation, seed):
        cube = RankingCube(relation, block_size=200)
        queries = generate_queries(
            relation, QuerySpec(k=10, num_selection_conditions=2,
                                num_ranking_dims=2, skewness=3.0, seed=seed),
            count=4)
        for query in queries:
            vectorized = cube.query(query)
            per_tuple = cube.query(TopKQuery(query.predicate,
                                             PerTupleFunction(query.function),
                                             query.k))
            assert vectorized.tids == per_tuple.tids
            assert vectorized.scores == per_tuple.scores  # exact, not approx
            assert vectorized.tuples_evaluated == per_tuple.tuples_evaluated

    def test_empty_predicate_identical(self, relation):
        cube = RankingCube(relation, block_size=200)
        function = SquaredDistanceFunction(["N1", "N2"], [0.3, 0.6])
        query = TopKQuery(Predicate.of(), function, 7)
        vectorized = cube.query(query)
        per_tuple = cube.query(TopKQuery(query.predicate,
                                         PerTupleFunction(function), query.k))
        assert vectorized.tids == per_tuple.tids
        assert vectorized.scores == per_tuple.scores


class TestRegistry:
    def test_duplicate_name_rejected(self, relation):
        registry = EngineRegistry()
        cube = RankingCube(relation, block_size=300)
        registry.register(RankingCubeBackend(cube))
        with pytest.raises(PlanningError):
            registry.register(RankingCubeBackend(cube))
        registry.register(RankingCubeBackend(cube), replace=True)
        assert registry.names() == ["ranking-cube"]

    def test_unregister_and_get(self, relation):
        registry = EngineRegistry()
        cube = RankingCube(relation, block_size=300)
        backend = registry.register(RankingCubeBackend(cube))
        assert registry.get("ranking-cube") is backend
        assert "ranking-cube" in registry
        removed = registry.unregister("ranking-cube")
        assert removed is backend
        with pytest.raises(PlanningError):
            registry.get("ranking-cube")
        with pytest.raises(PlanningError):
            registry.unregister("ranking-cube")

    def test_priority_ordering(self, executor):
        names = [b.name for b in executor.registry.backends_for("topk")]
        assert names == ["ranking-cube", "signature-cube", "table-scan"]

    def test_topk_only_stack(self, relation):
        slim = Executor.for_relation(relation, block_size=300,
                                     with_signature=False, with_skyline=False)
        assert slim.registry.names() == ["ranking-cube", "table-scan"]
        with pytest.raises(PlanningError):
            slim.execute(SkylineQuery(Predicate.of(), ("N1", "N2")))

    def test_fragments_stack(self, relation):
        stacked = Executor.for_relation(relation, block_size=300,
                                        rtree_max_entries=16,
                                        include_fragments=True)
        assert "fragments" in stacked.registry.names()
        names = [b.name for b in stacked.registry.backends_for("topk")]
        assert names.index("ranking-cube") < names.index("fragments")


class TestBoundCacheAndBatch:
    def test_execute_many_fuses_shared_function_queries(self, relation):
        executor = Executor.for_relation(relation, block_size=200,
                                         rtree_max_entries=16)
        function = LinearFunction(["N1", "N2"], [1.0, 2.0])
        queries = [TopKQuery(Predicate.of(A1=value), function, 5)
                   for value in range(4)]
        results = executor.execute_many(queries)
        assert len(results) == len(queries)
        stats = executor.cache_stats()
        # The shared-function group runs as one fused frontier sweep, so
        # each block's bound is computed once for the whole batch instead
        # of once per query (the pre-fusion batch path shared them through
        # bound-cache hits).
        assert stats["fused_groups"] == 1.0
        assert stats["fused_queries"] == float(len(queries))
        for query, batched in zip(queries, results):
            assert batched.extra["fused_group_size"] == float(len(queries))
            alone = executor.execute(query)
            assert alone.tids == batched.tids
            assert alone.scores == batched.scores

    def test_cache_counts_and_clear(self):
        from repro.partition.grid import GridPartition  # noqa: F401 (doc import)

        cache = LowerBoundCache(max_entries=2)

        class FakeGrid:
            def block_box(self, bid):
                return bid

        class FakeFunction:
            calls = 0

            def lower_bound(self, box):
                FakeFunction.calls += 1
                return float(box)

        grid, function = FakeGrid(), FakeFunction()
        assert cache.lower_bound(grid, function, 1) == 1.0
        assert cache.lower_bound(grid, function, 1) == 1.0
        assert (cache.hits, cache.misses) == (1, 1)
        assert FakeFunction.calls == 1
        cache.lower_bound(grid, function, 2)
        cache.lower_bound(grid, function, 3)  # evicts bid 1 (LRU, capacity 2)
        assert len(cache) == 2
        cache.lower_bound(grid, function, 1)
        assert FakeFunction.calls == 4
        assert 0.0 < cache.hit_rate < 1.0
        cache.clear()
        assert len(cache) == 0

    def test_execute_many_hoists_plans_for_repeated_queries(self, relation):
        from repro.engine import ResultCache

        class NoStoreCache(ResultCache):
            """A cache that never retains results, forcing re-execution."""

            def store(self, key, result):
                result.extra["result_cache"] = "miss"

        executor = Executor.for_relation(relation, block_size=200,
                                         with_signature=False,
                                         with_skyline=False)
        executor.result_cache = NoStoreCache()
        plan_calls = []
        inner_plan = executor.planner.plan
        executor.planner.plan = lambda query: (plan_calls.append(query)
                                               or inner_plan(query))
        query = TopKQuery(Predicate.of(A1=1),
                          LinearFunction(["N1", "N2"], [1.0, 1.0]), 4)
        other = TopKQuery(Predicate.of(A1=2),
                          LinearFunction(["N1", "N2"], [1.0, 1.0]), 4)
        results = executor.execute_many([query, other, query, query])
        # Even with every result re-executed (no result cache), the two
        # distinct logical queries are planned exactly once each.
        assert len(plan_calls) == 2
        assert executor.cache_stats()["plans_reused"] == 2.0
        assert results[0].tids == results[2].tids == results[3].tids
        assert results[0].scores == results[3].scores
        alone = executor.execute(query)
        assert alone.tids == results[0].tids

    def test_execute_many_fully_cached_batch_never_plans(self, relation):
        executor = Executor.for_relation(relation, block_size=200,
                                         with_signature=False,
                                         with_skyline=False)
        query = TopKQuery(Predicate.of(A1=1),
                          LinearFunction(["N1", "N2"], [1.0, 1.0]), 4)
        warm = executor.execute(query)  # fills the result cache
        plan_calls = []
        inner_plan = executor.planner.plan
        executor.planner.plan = lambda q: (plan_calls.append(q)
                                           or inner_plan(q))
        results = executor.execute_many([query, query, query])
        # Every occurrence hits the result cache; hoisting is lazy, so no
        # plan is ever computed and no reuse is (over)counted.
        assert plan_calls == []
        assert executor.cache_stats()["plans_reused"] == 0.0
        assert all(r.extra["result_cache"] == "hit" for r in results)
        assert results[0].tids == warm.tids

    def test_execute_many_unkeyable_queries_still_replan(self, relation):
        executor = Executor.for_relation(relation, block_size=200,
                                         with_signature=False,
                                         with_skyline=False)
        plan_calls = []
        inner_plan = executor.planner.plan
        executor.planner.plan = lambda query: (plan_calls.append(query)
                                               or inner_plan(query))
        query = TopKQuery(Predicate.of(A1=1),
                          PerTupleFunction(LinearFunction(["N1", "N2"],
                                                          [1.0, 1.0])), 3)
        executor.execute_many([query, query])
        # No canonical key means no safe sharing: each occurrence plans.
        assert len(plan_calls) == 2
        assert executor.cache_stats()["plans_reused"] == 0.0

    def test_cached_results_identical_to_uncached(self, relation):
        plain = RankingCube(relation, block_size=200)
        cached = RankingCube(relation, block_size=200,
                             bound_cache=LowerBoundCache())
        queries = generate_queries(
            relation, QuerySpec(k=8, num_selection_conditions=1,
                                num_ranking_dims=2, seed=4),
            count=3)
        for query in queries:
            for _ in range(2):  # second pass hits the cache
                a = plain.query(query)
                b = cached.query(query)
                assert a.tids == b.tids
                assert a.scores == b.scores


class TestResultCache:
    def test_repeat_query_hits_and_matches(self, relation):
        executor = Executor.for_relation(relation, block_size=200,
                                         rtree_max_entries=16)
        query = TopKQuery(Predicate.of(A1=1),
                          LinearFunction(["N1", "N2"], [1.0, 2.0]), 5)
        first = executor.execute(query)
        assert first.extra["result_cache"] == "miss"
        # A logically identical query (new objects) is served from cache.
        twin = TopKQuery(Predicate.of(A1=1),
                         LinearFunction(["N1", "N2"], [1.0, 2.0]), 5)
        second = executor.execute(twin)
        assert second.extra["result_cache"] == "hit"
        assert second.tids == first.tids
        assert second.scores == first.scores
        stats = executor.cache_stats()
        assert stats["result_hits"] == 1.0
        assert stats["result_misses"] == 1.0
        assert stats["result_hit_rate"] == 0.5

    def test_cached_result_copies_do_not_alias(self, relation):
        executor = Executor.for_relation(relation, block_size=200,
                                         rtree_max_entries=16)
        query = SkylineQuery(Predicate.of(A1=1), ("N1", "N2"))
        first = executor.execute(query)
        first.extra["poison"] = True
        second = executor.execute(query)
        assert second.extra["result_cache"] == "hit"
        assert "poison" not in second.extra

    def test_invalidate_results_drops_entries(self, relation):
        executor = Executor.for_relation(relation, block_size=200,
                                         rtree_max_entries=16)
        query = TopKQuery(Predicate.of(A2=1),
                          LinearFunction(["N1"], [1.0]), 3)
        executor.execute(query)
        assert executor.cache_stats()["result_entries"] == 1.0
        executor.invalidate_results()
        assert executor.cache_stats()["result_entries"] == 0.0
        assert executor.execute(query).extra["result_cache"] == "miss"

    def test_key_distinguishes_predicate_function_and_k(self, relation):
        from repro.engine import query_cache_key

        base = TopKQuery(Predicate.of(A1=1),
                         LinearFunction(["N1", "N2"], [1.0, 2.0]), 5)
        same = TopKQuery(Predicate.of(A1=1),
                         LinearFunction(["N1", "N2"], [1.0, 2.0]), 5)
        assert query_cache_key(base) == query_cache_key(same)
        assert query_cache_key(base) != query_cache_key(
            TopKQuery(Predicate.of(A1=2),
                      LinearFunction(["N1", "N2"], [1.0, 2.0]), 5))
        assert query_cache_key(base) != query_cache_key(
            TopKQuery(Predicate.of(A1=1),
                      LinearFunction(["N1", "N2"], [1.0, 3.0]), 5))
        assert query_cache_key(base) != query_cache_key(
            TopKQuery(Predicate.of(A1=1),
                      LinearFunction(["N1", "N2"], [1.0, 2.0]), 6))
        sky = SkylineQuery(Predicate.of(A1=1), ("N1", "N2"))
        assert query_cache_key(sky) == query_cache_key(
            SkylineQuery(Predicate.of(A1=1), ("N1", "N2")))
        assert query_cache_key(sky) != query_cache_key(
            SkylineQuery(Predicate.of(A1=1), ("N1", "N2"), targets=(0.1, 0.2)))

    def test_shared_result_cache_is_scoped_per_executor(self):
        from repro.baselines import TableScanTopK
        from repro.engine import ResultCache
        from repro.engine.backends import TableScanBackend

        r1 = generate_relation(SyntheticSpec(num_tuples=300, num_selection_dims=2,
                                             num_ranking_dims=2, cardinality=4,
                                             seed=41), name="R1")
        r2 = generate_relation(SyntheticSpec(num_tuples=300, num_selection_dims=2,
                                             num_ranking_dims=2, cardinality=4,
                                             seed=42), name="R2")
        shared = ResultCache()
        executors = []
        for rel in (r1, r2):
            executor = Executor(result_cache=shared)
            executor.register(TableScanBackend(TableScanTopK(rel)))
            executors.append(executor)
        query = TopKQuery(Predicate.of(A1=1),
                          LinearFunction(["N1", "N2"], [1.0, 1.0]), 5)
        first = executors[0].execute(query)
        second = executors[1].execute(query)
        # Same cache object, same query — but scoped keys keep the two
        # relations' answers apart.
        assert second.extra["result_cache"] == "miss"
        assert first.tids != second.tids

    def test_direct_append_invalidates_watched_cache(self):
        relation = generate_relation(SyntheticSpec(num_tuples=500,
                                                   num_selection_dims=2,
                                                   num_ranking_dims=2,
                                                   cardinality=4, seed=31))
        executor = Executor.for_relation(relation, block_size=100,
                                         rtree_max_entries=16,
                                         with_signature=False,
                                         with_skyline=False)
        query = TopKQuery(Predicate.of(A1=1),
                          LinearFunction(["N1", "N2"], [1.0, 1.0]), 3)
        executor.execute(query)
        # Mutate the relation directly (the incremental-maintenance path):
        # the next execution must re-run, not serve the stale cached answer.
        new_tid = relation.append({"A1": 1, "A2": 0, "N1": 0.0, "N2": 0.0})
        executor.registry.unregister("ranking-cube")  # cube predates the row
        result = executor.execute(query)
        assert result.extra["result_cache"] == "miss"
        assert result.tids[0] == new_tid

    def test_direct_append_refreshes_cached_statistics(self):
        relation = generate_relation(SyntheticSpec(num_tuples=400,
                                                   num_selection_dims=2,
                                                   num_ranking_dims=2,
                                                   cardinality=4, seed=33))
        executor = Executor.for_relation(relation, block_size=100,
                                         with_signature=False,
                                         with_skyline=False)
        query = TopKQuery(Predicate.of(A1=1),
                          LinearFunction(["N1", "N2"], [1.0, 1.0]), 3)
        executor.execute(query)  # plans → profiles the relation
        before = executor.statistics_for(relation)
        assert executor.statistics_for(relation) is before  # cached
        assert before.num_tuples == 400
        assert 55 not in before.selection_values["A1"]
        # Mutate directly (the incremental-maintenance path): both the
        # cached result AND the cached profile must refresh.
        relation.append({"A1": 55, "A2": 0, "N1": 0.0, "N2": 0.0})
        executor.registry.unregister("ranking-cube")  # cube predates the row
        result = executor.execute(query)
        assert result.extra["result_cache"] == "miss"
        after = executor.statistics_for(relation)
        assert after is not before
        assert after.num_tuples == 401
        assert 55 in after.selection_values["A1"]
        assert after.selection_cardinalities["A1"] == 5
        # The refreshed profile changes planning too: A1=55 is now a known
        # value, so its selectivity is no longer zero.
        assert after.selectivity(Predicate.of(A1=55)) > 0.0
        assert before.selectivity(Predicate.of(A1=55)) == 0.0

    def test_invalidate_results_drops_statistics_catalog(self, relation):
        executor = Executor.for_relation(relation, block_size=200,
                                         with_signature=False,
                                         with_skyline=False)
        executor.statistics_for(relation)
        assert len(executor.statistics) == 1
        executor.invalidate_results()
        assert len(executor.statistics) == 0

    def test_unkeyable_function_is_never_cached(self, relation, executor):
        from repro.engine import query_cache_key

        # PerTupleFunction exposes no exact parameter attributes, so its
        # queries must stay uncacheable rather than risk a key collision.
        query = TopKQuery(Predicate.of(A1=1),
                          PerTupleFunction(LinearFunction(["N1", "N2"],
                                                          [1.0, 1.0])), 3)
        assert query_cache_key(query) is None
        result = executor.execute(query)
        assert "result_cache" not in result.extra


class TestDeterministicPlanning:
    def test_equal_priority_breaks_ties_by_name(self, relation):
        from repro.baselines import TableScanTopK
        from repro.engine.backends import TableScanBackend

        scanner = TableScanTopK(relation)
        query = TopKQuery(Predicate.of(), LinearFunction(["N1"], [1.0]), 3)
        # Register the same-priority backends in both orders: the winner
        # must be the lexicographically first name either way.
        for names in (("b-scan", "a-scan"), ("a-scan", "b-scan")):
            executor = Executor()
            for name in names:
                executor.register(TableScanBackend(scanner, name=name, priority=50))
            assert executor.plan(query).backend == "a-scan"

    def test_losing_candidates_and_priorities_recorded(self, executor):
        query = TopKQuery(Predicate.of(A1=1),
                          LinearFunction(["N1", "N2"], [1.0, 1.0]), 3)
        plan = executor.plan(query)
        assert plan.details["losing_candidates"] == "signature-cube:20,table-scan:90"
        assert plan.candidates == ("ranking-cube", "signature-cube", "table-scan")


class TestTieBreakAcrossBackends:
    def test_boundary_ties_agree_across_backends(self):
        from repro.functions.linear import sum_function
        from repro.storage.table import Relation, Schema

        # Quantized ranking values force exact score ties at the k-th
        # boundary; every top-k backend must admit the same small-tid
        # winners under the canonical (score, tid) order, even when a
        # block/node bound exactly equals the k-th score.
        schema = Schema(("A",), ("X", "Y"))
        rows = [{"A": i % 2, "X": (i % 4) * 0.25, "Y": ((i + 2) % 4) * 0.25}
                for i in range(64)]
        relation = Relation.from_rows(schema, rows, name="ties")
        executor = Executor.for_relation(relation, block_size=8,
                                         rtree_max_entries=8)
        query = TopKQuery(Predicate.of(A=0), sum_function(["X", "Y"]), 5)
        reference = brute_force_topk(relation, query)  # sorted by (score, tid)
        for name in ("ranking-cube", "signature-cube", "table-scan"):
            result = executor.registry.get(name).run(query)
            assert result.tids == reference[0], name
            assert result.scores == pytest.approx(reference[1]), name


class TestSignatureSharing:
    def test_skyline_and_signature_backends_share_one_cube(self, executor):
        signature_backend = executor.registry.get("signature-cube")
        skyline_backend = executor.registry.get("skyline")
        assert skyline_backend.engine.cube is signature_backend.cube

    def test_skyline_without_signature_backend_still_prunes(self, relation):
        stack = Executor.for_relation(relation, block_size=300,
                                      rtree_max_entries=16,
                                      with_signature=False, with_skyline=True)
        assert "signature-cube" not in stack.registry.names()
        result = stack.execute(SkylineQuery(Predicate.of(A1=1), ("N1", "N2")))
        assert result.backend == "skyline"
        assert stack.registry.get("skyline").engine.use_signature
        baseline = BooleanFirstSkyline(relation)
        assert result.tids == baseline.query(
            SkylineQuery(Predicate.of(A1=1), ("N1", "N2"))).tids


class TestExplain:
    def test_explain_names_backend_and_details(self, executor):
        query = TopKQuery(Predicate.of(A1=1),
                          SquaredDistanceFunction(["N1", "N2"], [0.2, 0.4]), 3)
        text = executor.explain(query)
        assert "ranking-cube" in text
        assert "semi_monotone" in text
        assert "k=3" in text

    def test_plan_as_dict(self, executor):
        query = TopKQuery(Predicate.of(A1=1),
                          LinearFunction(["N1", "N2"], [1.0, 1.0]), 3)
        plan = executor.plan(query)
        payload = plan.as_dict()
        assert payload["backend"] == "ranking-cube"
        assert payload["query_kind"] == "topk"
        assert "covering_cuboids" in payload["details"]
