"""Batch (vectorized) scoring must match per-tuple scoring bit for bit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.functions import (
    Abs,
    ConstrainedFunction,
    ExpressionFunction,
    LinearFunction,
    ManhattanDistanceFunction,
    SquaredDistanceFunction,
    Var,
    WeightedAverageFunction,
)
from repro.functions.base import RankingFunction
from repro.geometry import Box, Interval


def random_rows(dims: int, n: int = 500, seed: int = 3) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.random((n, dims)) * 2.0 - 0.5


ALL_FUNCTIONS = {
    "linear": LinearFunction(["N1", "N2"], [1.0, 2.0]),
    "linear_negative": LinearFunction(["N1", "N2", "N3"], [0.5, -1.5, 3.0],
                                      constant=0.25),
    "weighted_average": WeightedAverageFunction(["N1", "N2"], [1.0, 3.0]),
    "squared_distance": SquaredDistanceFunction(["N1", "N2"], [0.25, 0.75],
                                                weights=[1.0, 2.0]),
    "manhattan": ManhattanDistanceFunction(["N1", "N2"], [0.4, 0.6]),
    "expression": ExpressionFunction((Var("N1") - Var("N2") ** 2) ** 2),
    "expression_abs": ExpressionFunction(Abs(Var("N1") - 0.5) + 2.0 * Var("N2")),
    "expression_const": ExpressionFunction(Var("N1") * 0.0 + 1.5, dims=["N1"]),
    "constrained": ConstrainedFunction(
        LinearFunction(["N1", "N2"], [1.0, 1.0]), "N2", 0.3, 0.5),
}


class TestBatchParity:
    @pytest.mark.parametrize("name", sorted(ALL_FUNCTIONS))
    def test_batch_matches_per_tuple_exactly(self, name):
        function = ALL_FUNCTIONS[name]
        rows = random_rows(len(function.dims))
        batch = function.evaluate_batch(rows)
        scalar = np.array([function.evaluate(row) for row in rows])
        assert batch.shape == (len(rows),)
        # Bitwise identity, not approximation: the batch implementations
        # apply the same per-row operation order as ``evaluate``.
        assert np.array_equal(batch, scalar), name

    @pytest.mark.parametrize("name", sorted(ALL_FUNCTIONS))
    def test_empty_batch(self, name):
        function = ALL_FUNCTIONS[name]
        empty = np.empty((0, len(function.dims)))
        assert function.evaluate_batch(empty).shape == (0,)

    def test_constrained_scores_inf_outside_window(self):
        function = ALL_FUNCTIONS["constrained"]
        rows = np.array([[0.1, 0.4], [0.1, 0.9], [0.2, 0.3]])
        scores = function.evaluate_batch(rows)
        assert scores[0] == pytest.approx(0.5)
        assert np.isinf(scores[1])
        assert scores[2] == pytest.approx(0.5)

    def test_base_fallback_loops_over_evaluate(self):
        class OddFunction(RankingFunction):
            dims = ("N1",)

            def evaluate(self, values):
                return float(values[0]) ** 3 - 1.0

            def lower_bound(self, box: Box) -> float:
                return -10.0

        function = OddFunction()
        rows = random_rows(1)
        batch = function.evaluate_batch(rows)
        scalar = np.array([function.evaluate(row) for row in rows])
        assert np.array_equal(batch, scalar)

    def test_batch_accepts_python_lists(self):
        function = ALL_FUNCTIONS["linear"]
        rows = [[0.0, 1.0], [1.0, 0.0]]
        assert function.evaluate_batch(rows) == pytest.approx([2.0, 1.0])
