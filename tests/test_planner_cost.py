"""Tests for the statistics-driven cost-based planner and its plumbing."""

from __future__ import annotations

import pytest

from repro.engine import (
    CostModel,
    Executor,
    MODE_COST,
    MODE_STATIC,
    Planner,
    RelationStatistics,
    StatisticsCatalog,
)
from repro.engine.cost import CostEstimate
from repro.errors import PlanningError
from repro.functions import LinearFunction
from repro.functions.linear import sum_function
from repro.query import Predicate, SkylineQuery, TopKQuery
from repro.workloads import (
    QuerySpec,
    SyntheticSpec,
    generate_queries,
    generate_relation,
    skewed_planner_workload,
)


@pytest.fixture(scope="module")
def relation():
    return generate_relation(SyntheticSpec(num_tuples=3000, num_selection_dims=3,
                                           num_ranking_dims=2, cardinality=8,
                                           seed=111))


@pytest.fixture(scope="module")
def executor(relation):
    return Executor.for_relation(relation, block_size=200, rtree_max_entries=16)


@pytest.fixture(scope="module")
def static_executor(relation):
    return Executor.for_relation(relation, block_size=200, rtree_max_entries=16,
                                 planner_mode=MODE_STATIC)


def _workload(relation):
    queries = generate_queries(
        relation, QuerySpec(k=10, num_selection_conditions=2,
                            num_ranking_dims=2, skewness=2.0, seed=5), count=6)
    queries += skewed_planner_workload(relation, seed=8, count=12)
    queries.append(SkylineQuery(Predicate.of(A1=1), ("N1", "N2")))
    queries.append(SkylineQuery(Predicate.of(), ("N1", "N2"),
                                targets=(0.5, 0.5)))
    return queries


class TestRelationStatistics:
    def test_profile_matches_relation(self, relation):
        stats = RelationStatistics.of(relation)
        assert stats.num_tuples == relation.num_tuples
        for dim in relation.selection_dims:
            assert stats.selection_cardinalities[dim] == relation.cardinality(dim)
            column = relation.selection_column(dim)
            assert stats.selection_values[dim] == {int(v) for v in column}
        for dim in relation.ranking_dims:
            column = relation.ranking_column(dim)
            assert stats.ranking_ranges[dim] == (float(column.min()),
                                                 float(column.max()))

    def test_selectivity_product_and_absent_value(self, relation):
        stats = RelationStatistics.of(relation)
        single = stats.selectivity(Predicate.of(A1=1))
        assert single == pytest.approx(1.0 / relation.cardinality("A1"))
        double = stats.selectivity(Predicate.of(A1=1, A2=2))
        assert double == pytest.approx(
            single / relation.cardinality("A2"))
        assert stats.selectivity(Predicate.of(A1=999)) == 0.0
        assert stats.expected_matches(Predicate.of(A1=999)) == 0.0
        ok, reason = stats.can_match(Predicate.of(A1=999))
        assert not ok and "outside relation values" in reason

    def test_score_floor_is_sound(self, relation):
        stats = RelationStatistics.of(relation)
        function = sum_function(["N1", "N2"])
        floor = stats.score_floor(function)
        scores = (relation.ranking_column("N1") + relation.ranking_column("N2"))
        assert floor <= scores.min()

    def test_catalog_caches_until_version_changes(self):
        rel = generate_relation(SyntheticSpec(num_tuples=200,
                                              num_selection_dims=2,
                                              num_ranking_dims=2,
                                              cardinality=4, seed=3))
        catalog = StatisticsCatalog()
        first = catalog.of(rel)
        assert catalog.of(rel) is first  # cached, not recomputed
        rel.append({"A1": 77, "A2": 0, "N1": 2.0, "N2": -1.0})
        refreshed = catalog.of(rel)
        assert refreshed is not first
        assert refreshed.num_tuples == 201
        assert 77 in refreshed.selection_values["A1"]
        assert refreshed.ranking_ranges["N1"][1] == 2.0
        catalog.invalidate()
        assert len(catalog) == 0


class TestCostBasedSelection:
    def test_candidate_sets_agree_across_modes(self, relation, executor,
                                               static_executor):
        """Cost mode re-ranks the same supported-candidate set, never edits it."""
        for query in _workload(relation):
            cost_plan = executor.plan(query)
            static_plan = static_executor.plan(query)
            assert cost_plan.candidates == static_plan.candidates
            assert cost_plan.mode == MODE_COST
            assert static_plan.mode == MODE_STATIC
            assert static_plan.backend == static_plan.candidates[0]

    def test_costs_and_inputs_recorded_in_details(self, executor):
        query = TopKQuery(Predicate.of(A1=1),
                          LinearFunction(["N1", "N2"], [1.0, 2.0]), 5)
        plan = executor.plan(query)
        estimates = plan.details["cost_estimates"]
        for name in plan.candidates:
            assert f"{name}:" in estimates
        assert plan.details["estimated_cost"] > 0
        inputs = plan.details["cost_inputs"]
        assert "selectivity=0.125" in inputs
        assert "expected_matches=375" in inputs
        assert "k=5" in inputs
        assert "shape=monotone" in inputs
        assert "mode=cost" in plan.describe()
        assert plan.as_dict()["mode"] == MODE_COST

    def test_selective_query_prefers_grid_cube(self, executor):
        query = TopKQuery(Predicate.of(A1=1, A2=2),
                          LinearFunction(["N1", "N2"], [1.0, 2.0]), 5)
        assert executor.plan(query).backend == "ranking-cube"

    def test_broad_small_k_prefers_signature_cube(self, executor,
                                                  static_executor, relation):
        """An unselective predicate with small k favours node granularity."""
        query = TopKQuery(Predicate.of(), sum_function(["N1", "N2"]), 5)
        cost_plan = executor.plan(query)
        assert cost_plan.backend == "signature-cube"
        assert static_executor.plan(query).backend == "ranking-cube"
        # The cheaper routing really is cheaper on the execution metric.
        cube = executor.registry.get("ranking-cube").run(query)
        signature = executor.registry.get("signature-cube").run(query)
        assert signature.tuples_evaluated < cube.tuples_evaluated
        assert signature.tids == cube.tids
        assert signature.scores == cube.scores

    def test_equal_costs_fall_back_to_static_tie_break(self, relation):
        from repro.baselines import TableScanTopK
        from repro.engine.backends import TableScanBackend

        scanner = TableScanTopK(relation)
        query = TopKQuery(Predicate.of(), LinearFunction(["N1"], [1.0]), 3)
        # Two identical scans cost exactly the same; the static
        # (priority, name) order must decide, independent of registration
        # order, and the plan still reports cost mode.
        for names in (("b-scan", "a-scan"), ("a-scan", "b-scan")):
            executor = Executor()
            for name in names:
                executor.register(TableScanBackend(scanner, name=name,
                                                   priority=50))
            plan = executor.plan(query)
            assert plan.backend == "a-scan"
            assert plan.mode == MODE_COST

    def test_unestimable_candidate_forces_static_fallback(self, relation):
        from repro.baselines import TableScanTopK
        from repro.engine.backends import TableScanBackend

        class OpaqueBackend(TableScanBackend):
            """A scan without a cost profile (e.g. a custom adapter)."""

            def cost_profile(self, query):
                return None

        executor = Executor()
        executor.register(TableScanBackend(TableScanTopK(relation),
                                           name="plain", priority=50))
        executor.register(OpaqueBackend(TableScanTopK(relation),
                                        name="opaque", priority=10))
        plan = executor.plan(TopKQuery(Predicate.of(),
                                       LinearFunction(["N1"], [1.0]), 3))
        assert plan.mode == MODE_STATIC
        assert plan.backend == "opaque"  # static order: lowest priority wins
        assert "cost_fallback" in plan.details

    def test_invalid_mode_rejected(self, executor):
        with pytest.raises(PlanningError):
            Planner(executor.registry, mode="oracle")

    def test_skyline_costing_keeps_bbs_first(self, executor):
        plan = executor.plan(SkylineQuery(Predicate.of(A1=1), ("N1", "N2")))
        assert plan.mode == MODE_COST
        assert plan.backend == "skyline"
        assert "preference_dims=2" in plan.details["cost_inputs"]

    def test_absent_value_routes_to_statistics_shortcut(self, executor):
        """A provably-absent value is answered for (near) free."""
        query = TopKQuery(Predicate.of(A1=999), sum_function(["N1", "N2"]), 5)
        plan = executor.plan(query)
        assert plan.mode == MODE_COST
        assert "selectivity=0" in plan.details["cost_inputs"]
        result = executor.registry.get(plan.backend).run(query)
        assert result.tids == ()
        assert result.tuples_evaluated == 0

    def test_subclassed_estimator_override_is_honoured(self, relation,
                                                       executor):
        class TunedModel(CostModel):
            """Overrides a whole estimator, not just the constants."""

            def _scan_topk(self, profile, query, stats, selectivity, matches):
                return 0.5, {"access": "scan-tuned"}

        backend = executor.registry.get("table-scan")
        stats = RelationStatistics.of(relation)
        query = TopKQuery(Predicate.of(A1=1), sum_function(["N1", "N2"]), 5)
        estimate = TunedModel().estimate(backend, query, stats)
        assert estimate.cost == 0.5
        assert estimate.inputs["access"] == "scan-tuned"
        assert CostModel().estimate(backend, query, stats).cost != 0.5

    def test_estimates_are_deterministic(self, relation, executor):
        model = CostModel()
        stats = RelationStatistics.of(relation)
        query = TopKQuery(Predicate.of(A1=1), sum_function(["N1", "N2"]), 5)
        backend = executor.registry.get("ranking-cube")
        first = model.estimate(backend, query, stats)
        second = model.estimate(backend, query, stats)
        assert isinstance(first, CostEstimate)
        assert first.cost == second.cost
        assert first.describe_inputs() == second.describe_inputs()


class TestCostVsStaticAnswers:
    def test_routings_agree_on_answers(self, relation, executor,
                                       static_executor):
        """Different routing, identical answers — cost is purely about speed."""
        for query in _workload(relation):
            if not isinstance(query, TopKQuery):
                continue
            cost_result = executor.execute(query)
            static_result = static_executor.execute(query)
            assert cost_result.tids == static_result.tids
            assert cost_result.scores == static_result.scores
