"""End-to-end integration: every engine answers the same workload consistently."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    BooleanFirstTopK,
    RankMappingTopK,
    RankingFirstTopK,
    TableScanTopK,
)
from repro.cube import RankingCube, build_ranking_fragments
from repro.query import SkylineQuery, TopKQuery
from repro.signature import SignatureRankingCube, SignatureTopKExecutor
from repro.skyline import BooleanFirstSkyline, SkylineEngine
from repro.workloads import QuerySpec, SyntheticSpec, generate_queries, generate_relation
from tests.conftest import brute_force_topk


@pytest.fixture(scope="module")
def relation():
    return generate_relation(SyntheticSpec(num_tuples=3000, num_selection_dims=3,
                                           num_ranking_dims=2, cardinality=8,
                                           seed=111))


@pytest.fixture(scope="module")
def engines(relation):
    grid = RankingCube(relation, block_size=200)
    fragments = build_ranking_fragments(relation, fragment_size=2, block_size=200)
    signature = SignatureRankingCube(relation, rtree_max_entries=16)
    return {
        "grid cube": grid.query,
        "fragments": fragments.query,
        "signature cube": SignatureTopKExecutor(signature).query,
        "table scan": TableScanTopK(relation).query,
        "boolean first": BooleanFirstTopK(relation).query,
        "ranking first": RankingFirstTopK(relation, signature.rtree).query,
        "rank mapping": RankMappingTopK(relation).query,
    }


class TestAllEnginesAgree:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_workload(self, relation, engines, seed):
        queries = generate_queries(
            relation, QuerySpec(k=10, num_selection_conditions=2,
                                num_ranking_dims=2, skewness=2.0, seed=seed),
            count=3)
        for query in queries:
            _, expected = brute_force_topk(relation, query)
            for name, run in engines.items():
                outcome = run(query)
                assert outcome.scores == pytest.approx(expected), \
                    f"{name} diverged on seed {seed}"

    def test_distance_workload(self, relation, engines):
        queries = generate_queries(
            relation, QuerySpec(k=5, num_selection_conditions=1, num_ranking_dims=2,
                                function_kind="distance", seed=9),
            count=3)
        for query in queries:
            _, expected = brute_force_topk(relation, query)
            for name, run in engines.items():
                assert run(query).scores == pytest.approx(expected), name

    def test_skyline_engines_agree(self, relation):
        from repro.query import Predicate

        cube = SignatureRankingCube(relation, rtree_max_entries=16)
        signature_engine = SkylineEngine(cube)
        baseline = BooleanFirstSkyline(relation)
        rng = np.random.default_rng(5)
        for _ in range(3):
            tid = int(rng.integers(0, relation.num_tuples))
            values = relation.selection_values(tid)
            query = SkylineQuery(Predicate.of(A1=values["A1"]), ("N1", "N2"))
            assert signature_engine.query(query).tids == baseline.query(query).tids
