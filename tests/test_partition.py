"""Tests for grid partitioning: bins, blocks, pseudo blocks, neighborhoods."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CubeError
from repro.partition import (
    GridPartition,
    equidepth_boundaries,
    equidepth_partition,
    equiwidth_boundaries,
    equiwidth_partition,
)
from repro.partition.equidepth import bins_per_dimension
from repro.storage.table import Relation, Schema
from repro.workloads import SyntheticSpec, generate_relation


@pytest.fixture(scope="module")
def relation():
    return generate_relation(SyntheticSpec(num_tuples=3000, num_selection_dims=2,
                                           num_ranking_dims=2, cardinality=4, seed=9))


class TestBoundaries:
    def test_bins_per_dimension_formula(self):
        # b = (T/P)^(1/R): 16 blocks for 1600 tuples at block size 100 in 2-D.
        assert bins_per_dimension(1600, 100, 2) == 4
        assert bins_per_dimension(0, 100, 2) == 1
        assert bins_per_dimension(10, 100, 2) == 1

    def test_equidepth_boundaries_balanced(self):
        rng = np.random.default_rng(1)
        values = rng.random(1000)
        bounds = equidepth_boundaries(values, 4)
        assert len(bounds) == 5
        counts = np.histogram(values, bins=bounds)[0]
        assert counts.max() - counts.min() <= 60  # approximately equal depth

    def test_equidepth_handles_duplicates(self):
        values = np.array([0.5] * 100)
        bounds = equidepth_boundaries(values, 4)
        assert np.all(np.diff(bounds) > 0)

    def test_equidepth_empty_input(self):
        bounds = equidepth_boundaries(np.array([]), 3)
        assert len(bounds) == 4

    def test_equiwidth_boundaries(self):
        bounds = equiwidth_boundaries(np.array([0.0, 10.0]), 5)
        assert bounds[0] == 0 and bounds[-1] == 10
        assert np.allclose(np.diff(bounds), 2.0)
        degenerate = equiwidth_boundaries(np.array([3.0, 3.0]), 2)
        assert np.all(np.diff(degenerate) > 0)


class TestGridPartition:
    def test_validation(self):
        with pytest.raises(CubeError):
            GridPartition([], {})
        with pytest.raises(CubeError):
            GridPartition(["x"], {"x": np.array([0.0])})
        with pytest.raises(CubeError):
            GridPartition(["x"], {"x": np.array([0.0, 0.0, 1.0])})

    def test_bid_coords_roundtrip(self):
        grid = GridPartition(["x", "y"], {"x": np.linspace(0, 1, 5),
                                          "y": np.linspace(0, 1, 4)})
        assert grid.bins_per_dim == (4, 3)
        assert grid.num_blocks == 12
        for bid in grid.iter_bids():
            assert grid.bid_of_coords(grid.coords_of_bid(bid)) == bid
        with pytest.raises(CubeError):
            grid.coords_of_bid(12)
        with pytest.raises(CubeError):
            grid.bid_of_coords((4, 0))

    def test_point_assignment_and_blocks(self):
        grid = GridPartition(["x", "y"], {"x": np.linspace(0, 1, 5),
                                          "y": np.linspace(0, 1, 5)})
        bid = grid.bid_of_point({"x": 0.05, "y": 0.05})
        assert grid.coords_of_bid(bid) == (0, 0)
        # values past the last boundary are clamped into the last bin
        bid_edge = grid.bid_of_point({"x": 1.5, "y": 0.99})
        assert grid.coords_of_bid(bid_edge)[0] == 3
        box = grid.block_box(bid)
        assert box.interval("x").low == 0.0
        assert box.interval("x").high == pytest.approx(0.25)

    def test_neighbors(self):
        grid = GridPartition(["x", "y"], {"x": np.linspace(0, 1, 5),
                                          "y": np.linspace(0, 1, 5)})
        corner = grid.bid_of_coords((0, 0))
        middle = grid.bid_of_coords((1, 2))
        assert len(grid.neighbors(corner)) == 2
        assert len(grid.neighbors(middle)) == 4
        assert grid.bid_of_coords((0, 1)) in grid.neighbors(corner)

    def test_assign_matches_pointwise(self, relation):
        grid = equidepth_partition(relation, block_size=100)
        bids = grid.assign(relation)
        for tid in (0, 17, 512, relation.num_tuples - 1):
            point = {d: relation.ranking_values(tid, [d])[0] for d in grid.dims}
            assert bids[tid] == grid.bid_of_point(point)

    def test_pseudo_blocks(self):
        grid = GridPartition(["x", "y"], {"x": np.linspace(0, 1, 5),
                                          "y": np.linspace(0, 1, 5)})
        # Cardinalities 2x2 -> sf = floor(sqrt(4)) = 2 (the thesis example).
        sf = grid.scale_factor([2, 2])
        assert sf == 2
        assert grid.pseudo_bins_per_dim(sf) == (2, 2)
        assert grid.num_pseudo_blocks(sf) == 4
        # Blocks in the same 2x2 tile map to the same pid.
        assert grid.pid_of_bid(grid.bid_of_coords((0, 0)), sf) == \
            grid.pid_of_bid(grid.bid_of_coords((1, 1)), sf)
        assert grid.pid_of_bid(grid.bid_of_coords((0, 0)), sf) != \
            grid.pid_of_bid(grid.bid_of_coords((2, 2)), sf)
        assert grid.scale_factor([1]) == 1

    def test_meta_and_project(self):
        grid = GridPartition(["x", "y"], {"x": np.linspace(0, 1, 3),
                                          "y": np.linspace(0, 1, 3)})
        meta = grid.meta()
        assert set(meta) == {"x", "y"}
        projected = grid.project(["y"])
        assert projected.dims == ("y",)
        with pytest.raises(CubeError):
            grid.project(["z"])

    def test_equidepth_partition_of_relation(self, relation):
        grid = equidepth_partition(relation, block_size=300)
        assert set(grid.dims) == set(relation.ranking_dims)
        bids = grid.assign(relation)
        counts = np.bincount(bids, minlength=grid.num_blocks)
        assert counts.sum() == relation.num_tuples
        # Equi-depth keeps block populations within a reasonable factor.
        assert counts.max() <= 4 * max(1, counts[counts > 0].min())

    def test_equiwidth_partition_of_relation(self, relation):
        grid = equiwidth_partition(relation, num_bins=4)
        assert grid.bins_per_dim == (4, 4)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=6),
       st.floats(min_value=0, max_value=1), st.floats(min_value=0, max_value=1))
def test_every_point_lands_in_its_block_box(bx, by, px, py):
    """bid_of_point and block_box are consistent for any grid shape."""
    grid = GridPartition(["x", "y"], {"x": np.linspace(0, 1, bx + 1),
                                      "y": np.linspace(0, 1, by + 1)})
    bid = grid.bid_of_point({"x": px, "y": py})
    box = grid.block_box(bid)
    assert box.interval("x").low - 1e-9 <= px <= box.interval("x").high + 1e-9
    assert box.interval("y").low - 1e-9 <= py <= box.interval("y").high + 1e-9
