"""Integration tests for the grid ranking cube, fragments, and providers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cube import (
    RankingCube,
    TopKAccumulator,
    all_nonempty_subsets,
    build_ranking_fragments,
    fragment_groups,
)
from repro.errors import CubeError, QueryError
from repro.functions import LinearFunction, SquaredDistanceFunction
from repro.query import Predicate, TopKQuery
from repro.workloads import SyntheticSpec, generate_relation
from tests.conftest import brute_force_topk


@pytest.fixture(scope="module")
def relation():
    return generate_relation(SyntheticSpec(num_tuples=4000, num_selection_dims=4,
                                           num_ranking_dims=2, cardinality=6, seed=31))


@pytest.fixture(scope="module")
def cube(relation):
    return RankingCube(relation, block_size=150)


@pytest.fixture(scope="module")
def fragments(relation):
    return build_ranking_fragments(relation, fragment_size=2, block_size=150)


class TestTopKAccumulator:
    def test_keeps_best_k(self):
        acc = TopKAccumulator(3)
        for tid, score in enumerate([5.0, 1.0, 3.0, 0.5, 4.0]):
            acc.offer(tid, score)
        assert acc.ranked() == [(3, 0.5), (1, 1.0), (2, 3.0)]
        assert acc.kth_score == 3.0
        assert acc.is_full()
        assert len(acc) == 3

    def test_kth_score_before_full(self):
        acc = TopKAccumulator(2)
        acc.offer(0, 1.0)
        assert acc.kth_score == float("inf")
        assert not acc.is_full()

    def test_invalid_k(self):
        with pytest.raises(QueryError):
            TopKAccumulator(0)


class TestCubeStructure:
    def test_all_subsets_materialized(self, relation, cube):
        assert cube.num_cuboids() == 2 ** len(relation.selection_dims) - 1
        assert len(all_nonempty_subsets(["a", "b"])) == 3
        names = cube.cuboid_names()
        assert any(name.startswith("A1_") for name in names)

    def test_cuboid_dim_validation(self, relation):
        with pytest.raises(CubeError):
            RankingCube(relation, cuboid_dims=[()])

    def test_covering_cuboids_full_cube(self, cube):
        assert cube.covering_cuboids(["A1", "A3"]) == [("A1", "A3")]
        assert cube.covering_cuboids([]) == []

    def test_covering_cuboids_fragments(self, fragments):
        # Fragments are (A1,A2) and (A3,A4): a cross-fragment query needs two.
        chosen = fragments.covering_cuboids(["A1", "A3"])
        assert len(chosen) == 2
        assert {dim for dims in chosen for dim in dims} == {"A1", "A3"}
        within = fragments.covering_cuboids(["A3", "A4"])
        assert within == [("A3", "A4")]

    def test_fragment_groups_helper(self):
        assert fragment_groups(["a", "b", "c"], 2) == [("a", "b"), ("c",)]
        with pytest.raises(CubeError):
            fragment_groups(["a"], 0)

    def test_fragment_space_grows_linearly(self, relation):
        small = build_ranking_fragments(relation.project(relation.selection_dims[:2],
                                                         relation.ranking_dims),
                                        fragment_size=2, block_size=150)
        large = build_ranking_fragments(relation, fragment_size=2, block_size=150)
        # 4 selection dims hold twice as many fragment cuboids as 2 dims.
        assert large.num_cuboids() == 2 * small.num_cuboids()

    def test_size_accounting(self, cube):
        assert cube.size_in_bytes() > 0


class TestCubeQueries:
    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_matches_oracle_linear(self, relation, cube, k):
        query = TopKQuery(Predicate.of(A1=2, A2=3),
                          LinearFunction(["N1", "N2"], [1.0, 2.0]), k)
        expected_tids, expected_scores = brute_force_topk(relation, query)
        result = cube.query(query)
        assert result.scores == pytest.approx(expected_scores)

    def test_matches_oracle_distance(self, relation, cube):
        query = TopKQuery(Predicate.of(A3=1),
                          SquaredDistanceFunction(["N1", "N2"], [0.7, 0.1]), 10)
        _, expected_scores = brute_force_topk(relation, query)
        assert cube.query(query).scores == pytest.approx(expected_scores)

    def test_negative_weight_linear(self, relation, cube):
        query = TopKQuery(Predicate.of(A1=0),
                          LinearFunction(["N1", "N2"], [1.0, -1.0]), 5)
        _, expected_scores = brute_force_topk(relation, query)
        assert cube.query(query).scores == pytest.approx(expected_scores)

    def test_empty_predicate(self, relation, cube):
        query = TopKQuery(Predicate.of(), LinearFunction(["N1"], [1.0]), 5)
        _, expected_scores = brute_force_topk(relation, query)
        assert cube.query(query).scores == pytest.approx(expected_scores)

    def test_selective_predicate_with_few_matches(self, relation, cube):
        predicate = Predicate.of(A1=0, A2=0, A3=0, A4=0)
        query = TopKQuery(predicate, LinearFunction(["N1", "N2"], [1, 1]), 50)
        expected_tids, expected_scores = brute_force_topk(relation, query)
        result = cube.query(query)
        assert result.scores == pytest.approx(expected_scores)
        assert len(result) == len(expected_tids)

    def test_no_matching_tuples(self, relation, cube):
        query = TopKQuery(Predicate.of(A1=999), LinearFunction(["N1"], [1.0]), 5)
        result = cube.query(query)
        assert result.tids == ()

    def test_fragments_match_full_cube(self, relation, cube, fragments):
        query = TopKQuery(Predicate.of(A1=1, A3=2),
                          LinearFunction(["N1", "N2"], [2.0, 1.0]), 10)
        full = cube.query(query)
        frag = fragments.query(query)
        assert frag.scores == pytest.approx(full.scores)
        assert frag.extra["covering_cuboids"] == 2.0

    def test_unknown_dimension_rejected(self, cube):
        query = TopKQuery(Predicate.of(Z9=1), LinearFunction(["N1"], [1.0]), 5)
        with pytest.raises(QueryError):
            cube.query(query)

    def test_disk_accesses_reported(self, relation, cube):
        query = TopKQuery(Predicate.of(A1=2), LinearFunction(["N1", "N2"], [1, 1]), 10)
        result = cube.query(query)
        assert result.disk_accesses >= 0
        assert result.states_generated > 0
        assert result.peak_heap_size > 0

    def test_top_k_convenience(self, relation, cube):
        result = cube.top_k(Predicate.of(A2=1), LinearFunction(["N1"], [1.0]), 3)
        assert len(result) == 3


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=5), st.integers(min_value=0, max_value=5),
       st.integers(min_value=1, max_value=15),
       st.floats(min_value=0.1, max_value=5, allow_nan=False),
       st.floats(min_value=0.1, max_value=5, allow_nan=False))
def test_cube_always_matches_oracle(a1, a2, k, w1, w2):
    """Random predicates and weights: cube scores equal the scan's scores."""
    relation = generate_relation(SyntheticSpec(num_tuples=1200, num_selection_dims=2,
                                               num_ranking_dims=2, cardinality=6,
                                               seed=77))
    cube = test_cube_always_matches_oracle.cube
    if cube is None or cube.relation is not relation:
        # Build once per hypothesis session over the deterministic relation.
        cube = RankingCube(relation, block_size=100)
        test_cube_always_matches_oracle.cube = cube
        test_cube_always_matches_oracle.relation = relation
    relation = test_cube_always_matches_oracle.relation
    cube = test_cube_always_matches_oracle.cube
    query = TopKQuery(Predicate.of(A1=a1, A2=a2),
                      LinearFunction(["N1", "N2"], [w1, w2]), k)
    _, expected_scores = brute_force_topk(relation, query)
    assert cube.query(query).scores == pytest.approx(expected_scores)


test_cube_always_matches_oracle.cube = None
test_cube_always_matches_oracle.relation = None
