"""Tests for the signature ranking cube: construction, queries, maintenance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import QueryError
from repro.functions import (
    ExpressionFunction,
    LinearFunction,
    SquaredDistanceFunction,
    Var,
)
from repro.query import Predicate, TopKQuery
from repro.signature import SignatureRankingCube, SignatureTopKExecutor
from repro.workloads import SyntheticSpec, generate_relation
from tests.conftest import brute_force_topk


@pytest.fixture(scope="module")
def relation():
    return generate_relation(SyntheticSpec(num_tuples=2500, num_selection_dims=3,
                                           num_ranking_dims=3, cardinality=7, seed=41))


@pytest.fixture(scope="module")
def cube(relation):
    return SignatureRankingCube(relation, rtree_max_entries=16)


@pytest.fixture(scope="module")
def executor(cube):
    return SignatureTopKExecutor(cube)


class TestConstruction:
    def test_atomic_cuboids_by_default(self, relation, cube):
        assert set(cube.cuboid_dims) == {(d,) for d in relation.selection_dims}
        # One signature per (dimension, value).
        expected = sum(relation.cardinality(d) for d in relation.selection_dims)
        assert cube.stats.num_signatures == expected
        assert cube.stats.cube_bytes > 0
        assert cube.stats.num_partial_pages >= expected
        assert cube.size_in_bytes() == cube.stats.cube_bytes

    def test_cube_smaller_than_rtree(self, cube):
        assert cube.size_in_bytes() < cube.stats.rtree_bytes

    def test_multidim_cuboid_materialization(self, relation):
        cube = SignatureRankingCube(relation, cuboid_dims=[("A1", "A2")],
                                    rtree_max_entries=16)
        reader = cube.signature_reader(Predicate.of(A1=0, A2=1))
        assert reader is not None

    def test_empty_cuboid_dims_rejected(self, relation):
        from repro.errors import CubeError
        with pytest.raises(CubeError):
            SignatureRankingCube(relation, cuboid_dims=[()])

    def test_signature_reader_validation(self, cube):
        assert cube.signature_reader(Predicate.of()) is None
        with pytest.raises(QueryError):
            cube.signature_reader(Predicate.of(Z9=1))


class TestQueries:
    @pytest.mark.parametrize("k", [1, 10, 50])
    def test_linear_matches_oracle(self, relation, cube, executor, k):
        query = TopKQuery(Predicate.of(A1=3, A2=2),
                          LinearFunction(["N1", "N2"], [1.0, 3.0]), k)
        _, expected = brute_force_topk(relation, query)
        assert executor.query(query).scores == pytest.approx(expected)

    def test_distance_matches_oracle(self, relation, cube, executor):
        query = TopKQuery(Predicate.of(A3=4),
                          SquaredDistanceFunction(["N1", "N2", "N3"], [0.5, 0.5, 0.5]),
                          20)
        _, expected = brute_force_topk(relation, query)
        assert executor.query(query).scores == pytest.approx(expected)

    def test_general_function_matches_oracle(self, relation, cube, executor):
        query = TopKQuery(Predicate.of(A1=1),
                          ExpressionFunction((Var("N1") - Var("N2") ** 2) ** 2), 10)
        _, expected = brute_force_topk(relation, query)
        assert executor.query(query).scores == pytest.approx(expected)

    def test_empty_predicate(self, relation, cube, executor):
        query = TopKQuery(Predicate.of(), LinearFunction(["N3"], [1.0]), 5)
        _, expected = brute_force_topk(relation, query)
        assert executor.query(query).scores == pytest.approx(expected)

    def test_unsatisfiable_predicate(self, relation, cube, executor):
        query = TopKQuery(Predicate.of(A1=999), LinearFunction(["N1"], [1.0]), 5)
        assert executor.query(query).tids == ()

    def test_statistics_reported(self, relation, cube, executor):
        query = TopKQuery(Predicate.of(A1=2, A3=1),
                          LinearFunction(["N1", "N2"], [1, 1]), 10)
        result = executor.query(query)
        assert result.states_generated > 0
        assert result.peak_heap_size > 0
        assert "signature_accesses" in result.extra
        assert "rtree_accesses" in result.extra


class TestMaintenance:
    def _insert_rows(self, relation, count, seed):
        rng = np.random.default_rng(seed)
        rows = []
        for _ in range(count):
            row = {d: int(rng.integers(0, relation.cardinality(d)))
                   for d in relation.selection_dims}
            row.update({d: float(rng.random()) for d in relation.ranking_dims})
            rows.append(row)
        return rows

    def test_incremental_insert_keeps_queries_correct(self):
        relation = generate_relation(SyntheticSpec(
            num_tuples=800, num_selection_dims=2, num_ranking_dims=2,
            cardinality=4, seed=55))
        cube = SignatureRankingCube(relation, rtree_max_entries=8)
        executor = SignatureTopKExecutor(cube)
        rows = self._insert_rows(relation, 60, seed=56)
        report = cube.insert(rows)
        assert report.tuples_inserted == 60
        assert report.cells_updated > 0
        assert report.pages_written > 0
        assert relation.num_tuples == 860
        # Some inserts on a small fanout-8 tree must have split nodes.
        assert report.node_splits > 0
        query = TopKQuery(Predicate.of(A1=1),
                          LinearFunction(["N1", "N2"], [1.0, 1.0]), 15)
        _, expected = brute_force_topk(relation, query)
        assert executor.query(query).scores == pytest.approx(expected)

    def test_insert_touches_only_target_cells(self):
        relation = generate_relation(SyntheticSpec(
            num_tuples=500, num_selection_dims=2, num_ranking_dims=2,
            cardinality=10, seed=57))
        cube = SignatureRankingCube(relation, rtree_max_entries=32)
        row = {d: 0 for d in relation.selection_dims}
        row.update({d: 0.5 for d in relation.ranking_dims})
        report = cube.insert([row])
        # Without a node split only the two atomic cells of the new tuple's
        # values are touched (one per boolean dimension).
        if report.node_splits == 0:
            assert report.cells_updated == len(relation.selection_dims)

    def test_rebuild_slower_than_incremental(self):
        relation = generate_relation(SyntheticSpec(
            num_tuples=1500, num_selection_dims=3, num_ranking_dims=2,
            cardinality=20, seed=58))
        cube = SignatureRankingCube(relation, rtree_max_entries=16)
        rows = self._insert_rows(relation, 5, seed=59)
        report = cube.insert(rows)
        rebuild_seconds = cube.rebuild()
        assert report.elapsed_seconds < rebuild_seconds * 5  # incremental is not worse
