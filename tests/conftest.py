"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.query import Predicate, TopKQuery
from repro.storage.table import Relation, Schema
from repro.workloads import SyntheticSpec, generate_relation


@pytest.fixture(scope="session")
def small_relation() -> Relation:
    """A small synthetic relation shared by read-only tests."""
    spec = SyntheticSpec(num_tuples=2000, num_selection_dims=3,
                         num_ranking_dims=2, cardinality=6, seed=101)
    return generate_relation(spec)


@pytest.fixture(scope="session")
def three_dim_relation() -> Relation:
    """A relation with three ranking dimensions (index-merge / skyline tests)."""
    spec = SyntheticSpec(num_tuples=1500, num_selection_dims=3,
                         num_ranking_dims=3, cardinality=5, seed=202)
    return generate_relation(spec)


@pytest.fixture()
def tiny_relation() -> Relation:
    """The 8-tuple example database of thesis Table 4.1 (values rescaled)."""
    schema = Schema(("A", "B"), ("X", "Y"))
    rows = [
        {"A": 1, "B": 1, "X": 0.00, "Y": 0.40},
        {"A": 2, "B": 2, "X": 0.20, "Y": 0.60},
        {"A": 1, "B": 1, "X": 0.30, "Y": 0.70},
        {"A": 3, "B": 3, "X": 0.50, "Y": 0.40},
        {"A": 4, "B": 1, "X": 0.60, "Y": 0.00},
        {"A": 2, "B": 3, "X": 0.72, "Y": 0.30},
        {"A": 4, "B": 2, "X": 0.72, "Y": 0.36},
        {"A": 3, "B": 3, "X": 0.85, "Y": 0.62},
    ]
    return Relation.from_rows(schema, rows, name="sample")


def brute_force_topk(relation: Relation, query: TopKQuery):
    """Reference implementation every engine must agree with."""
    mask = relation.mask_equal(query.predicate.as_dict)
    tids = np.nonzero(mask)[0]
    scored = []
    for tid in tids:
        score = query.function.evaluate_tuple(relation, int(tid))
        scored.append((float(score), int(tid)))
    scored.sort()
    top = scored[: query.k]
    return tuple(t for _, t in top), tuple(s for s, _ in top)


@pytest.fixture(scope="session")
def oracle():
    """Expose the brute-force oracle as a fixture-callable."""
    return brute_force_topk
