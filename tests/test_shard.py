"""Tests for the sharded execution subsystem: policies, stats, scatter/gather.

The heart is the parity suite: the sharded engine must return *identical*
answers (same ids, same scores, same order after tie-break) to the
unsharded engine for top-k and skyline queries, across policies, shard
counts, and predicates that prune no, some, and all shards.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import Executor
from repro.errors import PlanningError
from repro.functions import LinearFunction
from repro.functions.linear import sum_function
from repro.query import Predicate, SkylineQuery, TopKQuery, topk_order_key
from repro.shard import (
    HashShardingPolicy,
    RangeShardingPolicy,
    ScatterGatherExecutor,
    ShardManager,
)
from repro.shard.stats import ShardStatistics
from repro.storage.table import Relation, Schema
from repro.workloads import (
    QuerySpec,
    SyntheticSpec,
    generate_queries,
    generate_relation,
    make_sharded_engine,
    pruned_predicate_queries,
)

SHARD_COUNTS = (1, 2, 7)
POLICY_KINDS = ("hash", "range-width", "range-depth")


def make_policy(kind: str, relation: Relation, num_shards: int):
    if kind == "hash":
        return HashShardingPolicy(num_shards)
    mode = "width" if kind == "range-width" else "depth"
    return RangeShardingPolicy(relation, "A1", num_shards, mode=mode)


@pytest.fixture(scope="module")
def relation():
    return generate_relation(SyntheticSpec(num_tuples=1500, num_selection_dims=3,
                                           num_ranking_dims=2, cardinality=6,
                                           seed=77))


@pytest.fixture(scope="module")
def unsharded(relation):
    return Executor.for_relation(relation, block_size=100, rtree_max_entries=16)


def build_engine(relation, kind: str, num_shards: int,
                 parallel: bool = False) -> ScatterGatherExecutor:
    policy = make_policy(kind, relation, num_shards)
    manager = ShardManager(relation, policy, block_size=60, rtree_max_entries=16)
    return ScatterGatherExecutor(manager, parallel=parallel)


class TestParity:
    """Sharded answers are bit-identical to the unsharded engine."""

    @pytest.mark.parametrize("kind", POLICY_KINDS)
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_topk_parity(self, relation, unsharded, kind, num_shards):
        engine = build_engine(relation, kind, num_shards)
        queries = generate_queries(
            relation, QuerySpec(k=10, num_selection_conditions=1,
                                num_ranking_dims=2, skewness=2.0, seed=3),
            count=3)
        # Predicates pruning zero shards (empty), some shards (A1 pinned),
        # and all shards (value absent from the data).
        queries.append(TopKQuery(Predicate.of(),
                                 sum_function(["N1", "N2"]), 12))
        queries.append(TopKQuery(Predicate.of(A1=2, A3=1),
                                 LinearFunction(["N1", "N2"], [2.0, 1.0]), 7))
        queries.append(TopKQuery(Predicate.of(A1=999),
                                 sum_function(["N1", "N2"]), 5))
        for query in queries:
            expected = unsharded.execute(query)
            gathered = engine.execute(query)
            assert gathered.tids == expected.tids
            assert gathered.scores == expected.scores
            assert gathered.extra["backend"] == "scatter-gather"

    @pytest.mark.parametrize("kind", POLICY_KINDS)
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_skyline_parity(self, relation, unsharded, kind, num_shards):
        engine = build_engine(relation, kind, num_shards)
        queries = [
            SkylineQuery(Predicate.of(), ("N1", "N2")),
            SkylineQuery(Predicate.of(A1=3), ("N1", "N2")),
            SkylineQuery(Predicate.of(A1=1, A2=2), ("N1", "N2")),
            SkylineQuery(Predicate.of(A1=999), ("N1", "N2")),
            SkylineQuery(Predicate.of(A2=4), ("N1", "N2"), targets=(0.4, 0.6)),
        ]
        for query in queries:
            expected = unsharded.execute(query)
            gathered = engine.execute(query)
            assert gathered.tids == expected.tids

    def test_parallel_matches_sequential(self, relation, unsharded):
        engine = build_engine(relation, "hash", 4, parallel=True)
        query = TopKQuery(Predicate.of(A2=1), sum_function(["N1", "N2"]), 10)
        expected = unsharded.execute(query)
        gathered = engine.execute(query)
        assert gathered.tids == expected.tids
        assert gathered.scores == expected.scores

    def test_tie_break_is_stable_across_sharding(self):
        # Quantized ranking values force score ties spanning shards; the
        # canonical (score, tid) order must decide the k-th place the same
        # way sharded and unsharded.
        schema = Schema(("A",), ("X", "Y"))
        rows = [{"A": i % 2, "X": (i % 3) * 0.25, "Y": ((i + 1) % 3) * 0.25}
                for i in range(60)]
        relation = Relation.from_rows(schema, rows, name="ties")
        unsharded = Executor.for_relation(relation, block_size=8,
                                          rtree_max_entries=8)
        query = TopKQuery(Predicate.of(A=0), sum_function(["X", "Y"]), 7)
        expected = unsharded.execute(query)
        for num_shards in (2, 3):
            engine = build_engine(relation, "hash", num_shards)
            gathered = engine.execute(query)
            assert gathered.tids == expected.tids
            assert gathered.scores == expected.scores
        keys = [topk_order_key(tid, score) for tid, score in expected.as_pairs()]
        assert keys == sorted(keys)


class TestPruning:
    """Shard pruning is observable and exact."""

    def test_point_predicate_consults_exactly_one_range_shard(self, relation):
        # Cardinality 6 over 6 width-shards: each A1 value owns one shard.
        engine = build_engine(relation, "range-width", 6)
        for value in range(6):
            query = TopKQuery(Predicate.of(A1=value), sum_function(["N1", "N2"]), 5)
            result = engine.execute(query)
            consulted = result.extra["shards_consulted"].split(",")
            assert len(consulted) == 1, (value, result.extra)
            shard = engine.manager.shards[int(consulted[0])]
            assert value in shard.stats.selection_values["A1"]

    def test_plan_reports_scatter_set_and_backends(self, relation):
        engine = build_engine(relation, "range-width", 3)
        query = TopKQuery(Predicate.of(A1=0), sum_function(["N1", "N2"]), 5)
        plan = engine.plan(query)
        assert plan.backend == "scatter-gather"
        assert plan.details["shards_total"] == 3
        assert plan.details["shards_consulted"] == "0"
        assert "outside shard values" in plan.details["shards_pruned"]
        assert plan.details["shard_backends"] == "0:ranking-cube"
        assert "scatter" in engine.explain(query)

    def test_all_shards_pruned_yields_empty_result(self, relation):
        engine = build_engine(relation, "range-width", 3)
        result = engine.execute(TopKQuery(Predicate.of(A1=999),
                                          sum_function(["N1", "N2"]), 5))
        assert result.tids == ()
        assert result.extra["shards_consulted"] == "-"
        skyline = engine.execute(SkylineQuery(Predicate.of(A1=999), ("N1", "N2")))
        assert skyline.tids == ()

    def test_empty_predicate_consults_every_nonempty_shard(self, relation):
        engine = build_engine(relation, "hash", 4)
        result = engine.execute(TopKQuery(Predicate.of(),
                                          sum_function(["N1", "N2"]), 5))
        assert result.extra["shards_consulted"] == "0,1,2,3"

    def test_every_result_reports_scatter_extras(self, relation):
        engine = build_engine(relation, "hash", 2)
        for query in (TopKQuery(Predicate.of(A1=1), sum_function(["N1", "N2"]), 4),
                      SkylineQuery(Predicate.of(A1=1), ("N1", "N2"))):
            result = engine.execute(query)
            for key in ("shards_consulted", "shards_pruned", "shard_backends",
                        "plan", "backend", "policy"):
                assert key in result.extra, key

    def test_join_queries_are_rejected(self, relation):
        engine = build_engine(relation, "hash", 2)
        with pytest.raises(PlanningError):
            engine.execute(object())


class TestStatsAndPolicies:
    def test_statistics_summarize_shard(self, relation):
        stats = ShardStatistics.of(0, relation)
        assert stats.num_tuples == relation.num_tuples
        assert stats.selection_cardinalities["A1"] == 6
        low, high = stats.ranking_ranges["N1"]
        assert 0.0 <= low <= high <= 1.0
        ok, reason = stats.can_match(Predicate.of(A1=0))
        assert ok and reason is None
        ok, reason = stats.can_match(Predicate.of(A1=17))
        assert not ok and "A1=17" in reason

    def test_hash_policy_covers_all_rows(self, relation):
        policy = HashShardingPolicy(4)
        assignment = policy.assign(relation)
        assert assignment.shape == (relation.num_tuples,)
        assert set(np.unique(assignment)) <= set(range(4))
        # Roughly uniform: no shard is empty at this size.
        assert all((assignment == i).sum() > 0 for i in range(4))

    def test_range_policy_partitions_by_value(self, relation):
        policy = RangeShardingPolicy(relation, "A1", 3, mode="width")
        assignment = policy.assign(relation)
        column = relation.selection_column("A1")
        for index in range(3):
            low, high = policy.shard_range(index)
            values = column[assignment == index]
            if values.size:
                assert values.min() >= low - 1e-9
                assert values.max() <= high + 1e-9

    def test_single_shard_holds_everything(self, relation):
        manager = ShardManager(relation, HashShardingPolicy(1),
                               block_size=60, rtree_max_entries=16)
        assert manager.num_shards == 1
        assert manager.shards[0].relation.num_tuples == relation.num_tuples
        assert np.array_equal(manager.shards[0].tid_map,
                              np.arange(relation.num_tuples))

    def test_invalid_policies_rejected(self, relation):
        with pytest.raises(PlanningError):
            HashShardingPolicy(0)
        with pytest.raises(PlanningError):
            RangeShardingPolicy(relation, "A1", 2, mode="zigzag")
        with pytest.raises(PlanningError):
            RangeShardingPolicy(relation, "nope", 2)

    def test_out_of_range_assignment_rejected(self, relation):
        class LossyPolicy(HashShardingPolicy):
            def assign(self, rel):
                assignment = super().assign(rel)
                assignment[0] = self.num_shards  # would silently drop row 0
                return assignment

        with pytest.raises(PlanningError):
            ShardManager(relation, LossyPolicy(3))


class TestMutation:
    def _fresh(self, num_tuples=400):
        base = generate_relation(SyntheticSpec(num_tuples=num_tuples,
                                               num_selection_dims=2,
                                               num_ranking_dims=2,
                                               cardinality=4, seed=21))
        manager = ShardManager(base, RangeShardingPolicy(base, "A1", 4),
                               block_size=50, rtree_max_entries=16)
        return base, manager, ScatterGatherExecutor(manager)

    def test_insert_routes_to_owning_shard_and_stays_correct(self):
        base, manager, engine = self._fresh()
        query = TopKQuery(Predicate.of(A1=2), sum_function(["N1", "N2"]), 5)
        engine.execute(query)
        row = {"A1": 2, "A2": 1, "N1": 0.0, "N2": 0.0}  # new global best
        global_tid = manager.insert(row)
        assert global_tid == base.num_tuples - 1
        owner = manager.policy.shard_for_row(base, row, global_tid)
        assert global_tid in manager.shards[owner].tid_map
        result = engine.execute(query)
        assert result.tids[0] == global_tid  # not a stale cached answer
        fresh = Executor.for_relation(base, block_size=50, rtree_max_entries=16)
        expected = fresh.execute(query)
        assert result.tids == expected.tids
        assert result.scores == expected.scores

    def test_insert_invalidates_result_caches(self):
        _, manager, engine = self._fresh()
        query = TopKQuery(Predicate.of(A1=1), sum_function(["N1", "N2"]), 3)
        engine.execute(query)
        engine.execute(query)
        assert engine.cache_stats()["result_hits"] == 1.0
        manager.insert({"A1": 1, "A2": 0, "N1": 0.5, "N2": 0.5})
        assert engine.cache_stats()["result_entries"] == 0.0
        assert engine.cache_stats()["result_invalidations"] >= 1.0

    def test_direct_base_append_fails_loudly(self):
        base, manager, engine = self._fresh(num_tuples=200)
        query = TopKQuery(Predicate.of(A1=1), sum_function(["N1", "N2"]), 3)
        engine.execute(query)
        # Bypassing the manager desynchronizes the shards; serving answers
        # that silently miss the new row would be wrong, so execute raises.
        base.append({"A1": 1, "A2": 0, "N1": 0.0, "N2": 0.0})
        with pytest.raises(PlanningError):
            engine.execute(query)
        # The desync persists, so every later query keeps failing loudly
        # rather than silently serving answers missing the new row.
        with pytest.raises(PlanningError):
            engine.execute(query)
        manager.insert({"A1": 1, "A2": 0, "N1": 0.0, "N2": 0.0})
        with pytest.raises(PlanningError):  # base still has 1 uncovered row
            engine.execute(query)
        # reshard() re-splits from the base relation and recovers.
        manager.reshard(manager.policy)
        result = engine.execute(query)
        fresh = Executor.for_relation(base, block_size=50, rtree_max_entries=16)
        assert result.tids == fresh.execute(query).tids

    def test_incremental_stats_match_recomputation(self):
        _, manager, _ = self._fresh(num_tuples=300)
        for value in (0, 3, 3):
            manager.insert({"A1": value, "A2": 2, "N1": 1.5, "N2": -0.5})
        for shard in manager.shards:
            expected = ShardStatistics.of(shard.index, shard.relation)
            assert shard.stats.num_tuples == expected.num_tuples
            assert shard.stats.selection_values == expected.selection_values
            assert (shard.stats.selection_cardinalities
                    == expected.selection_cardinalities)
            assert shard.stats.ranking_ranges == expected.ranking_ranges

    def test_discarded_engine_hook_is_dropped(self):
        import gc

        _, manager, engine = self._fresh(num_tuples=200)
        assert len(manager._invalidation_hooks) == 1
        del engine
        gc.collect()
        manager.insert({"A1": 0, "A2": 0, "N1": 0.1, "N2": 0.1})
        assert manager._invalidation_hooks == []

    def test_reshard_replaces_policy_and_keeps_answers(self):
        base, manager, engine = self._fresh()
        query = TopKQuery(Predicate.of(A2=1), sum_function(["N1", "N2"]), 6)
        before = engine.execute(query)
        manager.reshard(HashShardingPolicy(3))
        assert manager.num_shards == 3
        after = engine.execute(query)
        assert after.tids == before.tids
        assert after.scores == before.scores
        assert after.extra["policy"] == "hash(3)"


class TestCostOrderedScatter:
    """Scatter legs run most-promising-first; hopeless legs are skipped."""

    def _stratified(self, num_rows=240):
        # A-value strata with disjoint ranking ranges: shard s of a range
        # split on A holds scores in [s/3, s/3 + 0.25), so after the first
        # (most promising) leg the k-th score provably beats the others.
        schema = Schema(("A",), ("X", "Y"))
        rows = []
        for i in range(num_rows):
            stratum = i % 3
            low = stratum / 3.0
            rows.append({"A": stratum,
                         "X": low + (i % 40) * 0.003,
                         "Y": low + ((i + 13) % 40) * 0.003})
        relation = Relation.from_rows(schema, rows, name="strata")
        manager = ShardManager(relation, RangeShardingPolicy(relation, "A", 3),
                               block_size=30, rtree_max_entries=8,
                               with_signature=False, with_skyline=False)
        return relation, manager, ScatterGatherExecutor(manager)

    def test_legs_ordered_by_score_floor(self):
        _, _, engine = self._stratified()
        query = TopKQuery(Predicate.of(), sum_function(["X", "Y"]), 5)
        plan = engine.plan(query)
        assert plan.details["scatter_order"] == "0,1,2"
        result = engine.execute(query)
        assert result.extra["scatter_order"] == "0,1,2"

    def test_shard_executor_reuses_shard_statistics(self, relation):
        # The shard layer already profiled each sub-relation; the stack's
        # cost planner must consume that profile, not re-scan the columns.
        engine = build_engine(relation, "range-width", 3)
        engine.execute(TopKQuery(Predicate.of(), sum_function(["N1", "N2"]), 5))
        seeded = 0
        for shard in engine.manager.shards:
            executor = engine.manager._executors.get(shard.index)
            if executor is None:
                continue
            assert executor.statistics.of(shard.relation) is shard.stats
            seeded += 1
        assert seeded > 0

    def test_insert_keeps_seeded_stats_on_untouched_shards(self):
        base = generate_relation(SyntheticSpec(num_tuples=400,
                                               num_selection_dims=2,
                                               num_ranking_dims=2,
                                               cardinality=4, seed=21))
        manager = ShardManager(base, RangeShardingPolicy(base, "A1", 4),
                               block_size=50, rtree_max_entries=16,
                               with_signature=False, with_skyline=False)
        engine = ScatterGatherExecutor(manager)
        engine.execute(TopKQuery(Predicate.of(), sum_function(["N1", "N2"]), 5))
        row = {"A1": 0, "A2": 1, "N1": 0.2, "N2": 0.2}
        owner = manager.policy.shard_for_row(base, row, base.num_tuples)
        manager.insert(row)
        for shard in manager.shards:
            executor = manager._executors.get(shard.index)
            if executor is None:
                continue
            # Untouched shards keep their exact profile without re-scanning.
            assert shard.index != owner  # the owner's stack was dropped
            assert executor.statistics.of(shard.relation) is shard.stats

    def test_gathered_plan_reports_cost_mode(self):
        # Every per-shard planner runs cost-based by default, and explain
        # must say so rather than defaulting to the static label.
        _, _, engine = self._stratified()
        query = TopKQuery(Predicate.of(), sum_function(["X", "Y"]), 5)
        assert engine.plan(query).mode == "cost"
        assert "mode=cost" in engine.explain(query)

    def test_hopeless_legs_skipped_and_answers_identical(self):
        relation, _, engine = self._stratified()
        unsharded = Executor.for_relation(relation, block_size=30,
                                          with_signature=False,
                                          with_skyline=False)
        query = TopKQuery(Predicate.of(), sum_function(["X", "Y"]), 5)
        expected = unsharded.execute(query)
        result = engine.execute(query)
        assert result.tids == expected.tids
        assert result.scores == expected.scores
        # Shard 0's 80 rows fill the top-5 below every other shard's score
        # floor, so shards 1 and 2 are skipped without being executed.
        assert result.extra["shards_consulted"] == "0"
        skipped = result.extra["shards_skipped"]
        assert "1:score floor" in skipped and "2:score floor" in skipped
        assert result.tuples_evaluated <= 80

    def test_skip_never_fires_below_k_gathered(self):
        # k exceeds the whole relation: fewer than k candidates can ever be
        # gathered, so every leg must run even with hopeless floors.
        relation, _, engine = self._stratified()
        unsharded = Executor.for_relation(relation, block_size=30,
                                          with_signature=False,
                                          with_skyline=False)
        query = TopKQuery(Predicate.of(), sum_function(["X", "Y"]), 250)
        expected = unsharded.execute(query)
        result = engine.execute(query)
        assert result.tids == expected.tids
        assert result.scores == expected.scores
        assert result.extra["shards_consulted"] == "0,1,2"
        assert result.extra["shards_skipped"] == "-"

    def test_tied_floor_is_not_skipped(self):
        # Two shards with identical quantized values: the second shard's
        # floor exactly equals the gathered k-th score, so it must still
        # run (a tied tuple with a smaller tid could be admitted).
        schema = Schema(("A",), ("X", "Y"))
        rows = [{"A": i % 2, "X": 0.5, "Y": 0.5} for i in range(40)]
        relation = Relation.from_rows(schema, rows, name="tied")
        manager = ShardManager(relation, RangeShardingPolicy(relation, "A", 2),
                               block_size=10, rtree_max_entries=8,
                               with_signature=False, with_skyline=False)
        engine = ScatterGatherExecutor(manager)
        unsharded = Executor.for_relation(relation, block_size=10,
                                          with_signature=False,
                                          with_skyline=False)
        query = TopKQuery(Predicate.of(), sum_function(["X", "Y"]), 5)
        expected = unsharded.execute(query)
        result = engine.execute(query)
        assert result.extra["shards_skipped"] == "-"
        assert result.extra["shards_consulted"] == "0,1"
        assert result.tids == expected.tids  # smallest tids win the tie

    def test_parallel_scatter_skips_nothing(self):
        relation, _, _ = self._stratified()
        manager = ShardManager(relation, RangeShardingPolicy(relation, "A", 3),
                               block_size=30, rtree_max_entries=8,
                               with_signature=False, with_skyline=False)
        engine = ScatterGatherExecutor(manager, parallel=True)
        query = TopKQuery(Predicate.of(), sum_function(["X", "Y"]), 5)
        result = engine.execute(query)
        assert result.extra["shards_consulted"] == "0,1,2"
        assert result.extra["shards_skipped"] == "-"


class TestBatchAndCache:
    def test_execute_many_and_result_cache(self, relation):
        _, engine = make_sharded_engine(relation, 3, range_dim="A1",
                                        block_size=60, rtree_max_entries=16)
        queries = pruned_predicate_queries(relation, "A1", k=5)
        results = engine.execute_many(queries)
        assert len(results) == len(queries)
        assert all(r.extra["result_cache"] == "miss" for r in results)
        again = engine.execute_many(queries)
        assert all(r.extra["result_cache"] == "hit" for r in again)
        for first, second in zip(results, again):
            assert first.tids == second.tids
            assert first.scores == second.scores
        stats = engine.cache_stats()
        assert stats["result_hits"] == float(len(queries))

    def test_equivalent_function_objects_share_cache_entries(self, relation):
        _, engine = make_sharded_engine(relation, 2, range_dim="A1",
                                        block_size=60, rtree_max_entries=16)
        first = TopKQuery(Predicate.of(A1=1),
                          LinearFunction(["N1", "N2"], [1.0, 2.0]), 5)
        twin = TopKQuery(Predicate.of(A1=1),
                         LinearFunction(["N1", "N2"], [1.0, 2.0]), 5)
        engine.execute(first)
        result = engine.execute(twin)
        assert result.extra["result_cache"] == "hit"
