"""The fault-tolerance machinery: deadlines, retries, breakers, chaos.

Unit coverage of the :mod:`repro.fault` value objects (clock-injected
:class:`Deadline`, full-jitter :class:`RetryPolicy` under a shared
:class:`RetryBudget`, the closed/open/half-open :class:`CircuitBreaker`,
and the seeded :class:`FaultInjector`), then behavioral coverage of the
scatter layer wearing them: retried legs recover bit-identically and
annotate ``extra["leg_attempts"]``, exhausted retries propagate in
strict mode and degrade to the surviving-shard oracle under
``allow_partial``, open breakers refuse legs without burning budget,
expired deadlines raise (never a partial answer), and a hung process
worker is killed at the recv bound — flagged ``timed_out`` — instead of
wedging a scatter thread.

The chaos *parity* gate (injected faults at shard counts {1, 2, 7},
answers bit-identical to the oracle) lives in
``tests/test_parity_oracle.py``.
"""

from __future__ import annotations

import random
import time

import numpy as np
import pytest

from repro.engine.cost import CostModel
from repro.errors import (
    DeadlineExceededError,
    ShardWorkerError,
)
from repro.fault import (
    BreakerOpenError,
    BreakerPolicy,
    CircuitBreaker,
    Deadline,
    FaultInjector,
    INJECTION_POINTS,
    InjectedFaultError,
    RetryPolicy,
)
from repro.functions.linear import sum_function
from repro.query import Predicate, TopKQuery
from repro.shard import (
    HashShardingPolicy,
    ProcessScatterExecutor,
    ScatterGatherExecutor,
    ShardManager,
)
from repro.workloads import SyntheticSpec, generate_relation
from tests.conftest import brute_force_topk


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def advance(self, dt: float) -> None:
        self.t += dt

    def __call__(self) -> float:
        return self.t


# ----------------------------------------------------------------------
# unit: Deadline
# ----------------------------------------------------------------------
class TestDeadline:
    def test_remaining_and_expiry_follow_the_clock(self):
        clock = FakeClock(100.0)
        deadline = Deadline.after(5.0, clock=clock)
        assert deadline.remaining() == pytest.approx(5.0)
        assert not deadline.expired()
        clock.advance(4.0)
        assert deadline.remaining() == pytest.approx(1.0)
        clock.advance(2.0)
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_raise_if_expired_names_the_context(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock=clock)
        deadline.raise_if_expired("anything")  # not yet
        clock.advance(1.0)
        with pytest.raises(DeadlineExceededError, match="before gather"):
            deadline.raise_if_expired("gather")

    def test_bound_takes_the_tighter_of_timeout_and_remaining(self):
        clock = FakeClock()
        deadline = Deadline.after(2.0, clock=clock)
        assert deadline.bound(10.0) == pytest.approx(2.0)
        assert deadline.bound(0.5) == pytest.approx(0.5)
        # None means "no configured timeout": the deadline is the bound.
        assert deadline.bound(None) == pytest.approx(2.0)

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            Deadline.after(-0.1)


# ----------------------------------------------------------------------
# unit: RetryPolicy / RetryBudget
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_backoff_ceiling_doubles_up_to_the_cap(self):
        policy = RetryPolicy(max_attempts=10, base_delay=0.1, cap_delay=0.5)
        assert policy.backoff_ceiling(1) == pytest.approx(0.1)
        assert policy.backoff_ceiling(2) == pytest.approx(0.2)
        assert policy.backoff_ceiling(3) == pytest.approx(0.4)
        assert policy.backoff_ceiling(4) == pytest.approx(0.5)  # capped
        assert policy.backoff_ceiling(1000) == pytest.approx(0.5)

    def test_full_jitter_is_uniform_under_the_ceiling(self):
        policy = RetryPolicy(base_delay=0.2, cap_delay=1.0)
        rng = random.Random(42)
        draws = [policy.backoff(1, rng) for _ in range(200)]
        assert all(0.0 <= d <= 0.2 for d in draws)
        # Same seed, same sleeps: chaos runs replay deterministically.
        again = [policy.backoff(1, random.Random(42)) for _ in range(1)]
        assert again[0] == pytest.approx(draws[0])

    def test_budget_consume_is_all_or_nothing(self):
        budget = RetryPolicy(budget=1.0).new_budget()
        assert budget.consume(0.7)
        assert not budget.consume(0.5)  # would overdraw: refused whole
        assert budget.consume(0.3)
        assert budget.spent == pytest.approx(1.0)
        assert budget.remaining == pytest.approx(0.0)

    def test_unbudgeted_policy_never_refuses(self):
        budget = RetryPolicy(budget=None).new_budget()
        assert budget.consume(1e6)
        assert budget.remaining is None

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="cap_delay"):
            RetryPolicy(base_delay=1.0, cap_delay=0.5)
        with pytest.raises(ValueError, match="non-negative"):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError, match="budget"):
            RetryPolicy(budget=-2.0)


# ----------------------------------------------------------------------
# unit: CircuitBreaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def make(self, threshold=3, cooldown=10.0):
        clock = FakeClock()
        events = []
        breaker = CircuitBreaker(
            0, BreakerPolicy(failure_threshold=threshold, cooldown=cooldown),
            clock=clock, on_event=lambda event, shard: events.append(event))
        return breaker, clock, events

    def test_threshold_consecutive_failures_open_the_breaker(self):
        breaker, _, events = self.make(threshold=3)
        for _ in range(2):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert events == ["opened"]

    def test_success_resets_the_streak(self):
        breaker, _, _ = self.make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # streak broken, not cumulative

    def test_cooldown_admits_one_probe_whose_success_closes(self):
        breaker, clock, events = self.make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        assert not breaker.allow()
        assert breaker.retry_after() == pytest.approx(10.0)
        clock.advance(10.0)
        assert breaker.state == "half_open"
        assert breaker.allow()        # the probe slot
        assert not breaker.allow()    # concurrent leg refused mid-probe
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()
        assert events == ["opened", "half_open_probe", "closed"]

    def test_failed_probe_reopens_for_a_fresh_cooldown(self):
        breaker, clock, events = self.make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.retry_after() == pytest.approx(10.0)
        assert not breaker.allow()
        assert events == ["opened", "half_open_probe", "opened"]

    def test_open_error_is_a_shard_worker_error_with_retry_after(self):
        error = BreakerOpenError(3, retry_after=2.5)
        assert isinstance(error, ShardWorkerError)
        assert error.shard_index == 3
        assert error.retry_after == pytest.approx(2.5)
        assert "shard 3" in str(error)

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ValueError, match="cooldown"):
            BreakerPolicy(cooldown=-1.0)


# ----------------------------------------------------------------------
# unit: FaultInjector
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_same_seed_replays_the_same_fault_sequence(self):
        rates = {"worker.crash.pre": 0.5, "leg.delay": 0.25}
        first = FaultInjector(seed=7, rates=rates)
        second = FaultInjector(seed=7, rates=rates)
        sequence = [(first.fires("worker.crash.pre"),
                     first.fires("leg.delay")) for _ in range(50)]
        replay = [(second.fires("worker.crash.pre"),
                   second.fires("leg.delay")) for _ in range(50)]
        assert sequence == replay
        assert first.fired == second.fired
        assert first.total_fired > 0  # chaos actually happened

    def test_max_faults_caps_total_injections(self):
        injector = FaultInjector(seed=1, rates={"worker.crash.pre": 1.0},
                                 max_faults=3)
        outcomes = [injector.fires("worker.crash.pre") for _ in range(10)]
        assert outcomes == [True, True, True] + [False] * 7
        assert injector.total_fired == 3

    def test_unrated_points_never_fire(self):
        injector = FaultInjector(seed=1, rates={"pipe.hang": 1.0})
        assert not injector.fires("worker.crash.pre")
        assert injector.fires("pipe.hang")

    def test_unknown_points_rejected_loudly(self):
        with pytest.raises(ValueError, match="unknown injection point"):
            FaultInjector(seed=1, rates={"worker.crash.prre": 1.0})
        injector = FaultInjector(seed=1, rates={})
        with pytest.raises(ValueError, match="unknown injection point"):
            injector.fires("not.a.point")
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            FaultInjector(seed=1, rates={"pipe.hang": 1.5})
        with pytest.raises(ValueError, match="max_faults"):
            FaultInjector(seed=1, rates={}, max_faults=-1)

    def test_injected_fault_error_is_a_shard_worker_error(self):
        error = InjectedFaultError("worker.crash.pre", shard_index=2)
        assert isinstance(error, ShardWorkerError)
        assert error.point == "worker.crash.pre"
        assert error.shard_index == 2

    def test_every_documented_point_is_named(self):
        assert set(INJECTION_POINTS) == {
            "worker.crash.pre", "worker.crash.post", "pipe.hang",
            "reply.corrupt", "leg.delay"}


# ----------------------------------------------------------------------
# executor-level: retries, degradation, breakers, deadlines, hangs
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def relation():
    return generate_relation(SyntheticSpec(
        num_tuples=600, num_selection_dims=2, num_ranking_dims=2,
        cardinality=4, seed=33))


def make_engine(relation, num_shards=3, **kwargs):
    manager = ShardManager(relation, HashShardingPolicy(num_shards),
                           block_size=64, with_signature=False,
                           with_skyline=False)
    return manager, ScatterGatherExecutor(manager, **kwargs)


def topk(k=8, **conditions):
    return TopKQuery(Predicate.of(conditions), sum_function(["N1", "N2"]), k)


def surviving_oracle(relation, query, surviving_tids):
    """Brute force restricted to the surviving shards' global tids."""
    mask = relation.mask_equal(query.predicate.as_dict)
    scored = sorted(
        (float(query.function.evaluate_tuple(relation, int(tid))), int(tid))
        for tid in np.nonzero(mask)[0] if int(tid) in surviving_tids)
    top = scored[: query.k]
    return tuple(t for _, t in top), tuple(s for s, _ in top)


def fail_shard(engine, bad_index, error=None):
    """Make every leg to one shard raise, leaving the others honest."""
    original = engine._shard_execute

    def failing(shard, query, leg, deadline=None):
        if shard.index == bad_index:
            raise (error if error is not None
                   else ShardWorkerError(f"shard {shard.index} worker "
                                         f"process died (exit code -9)",
                                         shard_index=shard.index))
        return original(shard, query, leg, deadline=deadline)

    engine._shard_execute = failing


class TestRetries:
    def test_retried_legs_recover_bit_identically(self, relation):
        injector = FaultInjector(seed=11, rates={"worker.crash.pre": 1.0},
                                 max_faults=2)
        _, engine = make_engine(
            relation, fault_injector=injector,
            retry_policy=RetryPolicy(max_attempts=4, base_delay=0.001,
                                     cap_delay=0.002, jitter_seed=5))
        sleeps = []
        engine._sleep = sleeps.append
        with engine:
            query = topk(k=6, A1=1)
            result = engine.execute(query)
        tids, scores = brute_force_topk(relation, query)
        assert result.tids == tids
        assert result.scores == scores
        assert injector.fired["worker.crash.pre"] == 2
        snap = engine.metrics.snapshot()
        assert snap["fault.retries"] == 2.0
        assert snap["fault.leg_failures"] == 2.0
        # The recovered result is not degraded — every shard answered.
        assert "degraded" not in result.extra
        attempts = dict(
            pair.split(":") for pair in
            result.extra["leg_attempts"].split(","))
        assert sum(int(n) for n in attempts.values()) >= len(attempts) + 2

    def test_backoff_sleeps_follow_the_seeded_jitter(self, relation):
        policy = RetryPolicy(max_attempts=3, base_delay=0.01, cap_delay=0.04,
                             jitter_seed=99)
        injector = FaultInjector(seed=3, rates={"worker.crash.pre": 1.0},
                                 max_faults=2)
        _, engine = make_engine(relation, fault_injector=injector,
                                retry_policy=policy)
        sleeps = []
        engine._sleep = sleeps.append
        with engine:
            engine.execute(topk(k=3))
        expected_rng = random.Random(99)
        for attempt, slept in enumerate(sleeps, start=1):
            assert slept == pytest.approx(
                policy.backoff(attempt, expected_rng))

    def test_exhausted_retries_raise_in_strict_mode(self, relation):
        injector = FaultInjector(seed=2, rates={"worker.crash.pre": 1.0})
        _, engine = make_engine(
            relation, fault_injector=injector,
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.0,
                                     cap_delay=0.0, jitter_seed=0))
        with engine:
            with pytest.raises(InjectedFaultError):
                engine.execute(topk())
        snap = engine.metrics.snapshot()
        assert snap["fault.retries"] >= 1.0
        assert snap["fault.shards_failed"] >= 1.0

    def test_dry_retry_budget_stops_the_backoff(self, relation):
        injector = FaultInjector(seed=4, rates={"worker.crash.pre": 1.0})
        _, engine = make_engine(
            relation, fault_injector=injector,
            retry_policy=RetryPolicy(max_attempts=50, base_delay=0.01,
                                     cap_delay=0.01, budget=0.0,
                                     jitter_seed=1))
        with engine:
            with pytest.raises(InjectedFaultError):
                engine.execute(topk(k=2))
        snap = engine.metrics.snapshot()
        # A zero budget cannot cover any positive sleep: the first
        # positive backoff draw is refused and the leg gives up long
        # before max_attempts.
        assert snap["fault.retry_budget_exhausted"] >= 1.0
        assert snap["fault.retries"] < 49.0


class TestPartialResults:
    def test_degraded_answer_is_the_surviving_shard_oracle(self, relation):
        manager, engine = make_engine(relation, num_shards=3,
                                      allow_partial=True)
        fail_shard(engine, bad_index=0)
        surviving = {int(tid) for shard in manager.shards
                     if shard.index != 0 for tid in shard.tid_map}
        with engine:
            query = topk(k=7, A2=1)
            result = engine.execute(query)
            tids, scores = surviving_oracle(relation, query, surviving)
            assert result.tids == tids
            assert result.scores == scores
            assert result.extra["degraded"] == 1.0
            assert result.extra["shards_failed"] == "0:ShardWorkerError"
            assert result.extra["completeness"] == pytest.approx(2.0 / 3.0)

    def test_degraded_results_are_never_cached(self, relation):
        manager, engine = make_engine(relation, allow_partial=True)
        fail_shard(engine, bad_index=1)
        with engine:
            query = topk(k=4)
            degraded = engine.execute(query)
            assert degraded.extra["degraded"] == 1.0
            # The shard recovers; the next call must recompute, not serve
            # the gap from the result cache.
            engine._shard_execute = ScatterGatherExecutor._shard_execute.__get__(engine)
            healed = engine.execute(query)
            assert "degraded" not in healed.extra
            assert healed.tids == brute_force_topk(relation, query)[0]

    def test_strict_mode_still_raises(self, relation):
        _, engine = make_engine(relation, allow_partial=False)
        fail_shard(engine, bad_index=0)
        with engine:
            with pytest.raises(ShardWorkerError):
                engine.execute(topk())

    def test_per_call_override_beats_the_executor_default(self, relation):
        _, engine = make_engine(relation, allow_partial=True)
        fail_shard(engine, bad_index=0)
        with engine:
            with pytest.raises(ShardWorkerError):
                engine.execute(topk(), allow_partial=False)
            result = engine.execute(topk())
            assert result.extra["degraded"] == 1.0

    def test_all_shards_down_raises_even_in_partial_mode(self, relation):
        injector = FaultInjector(seed=6, rates={"worker.crash.pre": 1.0})
        _, engine = make_engine(relation, fault_injector=injector,
                                allow_partial=True)
        with engine:
            # No retries configured: every leg fails on its only attempt,
            # and an answer from zero shards would be a silent lie.
            with pytest.raises(InjectedFaultError):
                engine.execute(topk())


class TestBreakerIntegration:
    def test_breaker_opens_and_refuses_without_attempts(self, relation):
        clock = FakeClock()
        _, engine = make_engine(
            relation, allow_partial=True,
            breaker_policy=BreakerPolicy(failure_threshold=2, cooldown=60.0))
        engine._breaker_clock = clock
        fail_shard(engine, bad_index=0)
        with engine:
            engine.execute(topk(k=2))
            engine.execute(topk(k=3))  # second consecutive failure: trips
            snap = engine.metrics.snapshot()
            assert snap["breaker.opened"] == 1.0
            assert engine._breakers[0].state == "open"
            result = engine.execute(topk(k=4))
            assert result.extra["degraded"] == 1.0
            # Refused fail-fast: zero attempts booked for the open shard.
            assert "0:0" in result.extra["leg_attempts"].split(",")
            assert result.extra["shards_failed"] == "0:BreakerOpenError"
            assert engine.metrics.snapshot()["breaker.rejected"] == 1.0

    def test_half_open_probe_closes_after_recovery(self, relation):
        clock = FakeClock()
        _, engine = make_engine(
            relation, allow_partial=True,
            breaker_policy=BreakerPolicy(failure_threshold=1, cooldown=30.0))
        engine._breaker_clock = clock
        fail_shard(engine, bad_index=0)
        with engine:
            engine.execute(topk(k=2))  # trips shard 0's breaker
            # The shard heals while the breaker cools down.
            engine._shard_execute = ScatterGatherExecutor._shard_execute.__get__(engine)
            clock.advance(30.0)
            query = topk(k=5, A1=2)
            result = engine.execute(query)  # the half-open probe succeeds
            assert result.tids == brute_force_topk(relation, query)[0]
            assert "degraded" not in result.extra
            snap = engine.metrics.snapshot()
            assert snap["breaker.half_open_probes"] == 1.0
            assert snap["breaker.closed"] == 1.0
            assert engine._breakers[0].state == "closed"

    def test_strict_mode_surfaces_breaker_open_error(self, relation):
        clock = FakeClock()
        _, engine = make_engine(
            relation,
            breaker_policy=BreakerPolicy(failure_threshold=1, cooldown=60.0))
        engine._breaker_clock = clock
        fail_shard(engine, bad_index=0)
        with engine:
            with pytest.raises(ShardWorkerError):
                engine.execute(topk(k=2))
            with pytest.raises(BreakerOpenError, match="breaker is open"):
                engine.execute(topk(k=3))


class TestDeadlines:
    def test_expired_deadline_raises_before_any_leg(self, relation):
        _, engine = make_engine(relation)
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock=clock)
        clock.advance(2.0)
        with engine:
            with pytest.raises(DeadlineExceededError):
                engine.execute(topk(), deadline=deadline)
        assert engine.metrics.snapshot()["fault.deadline_exceeded"] == 1.0

    def test_live_deadline_does_not_perturb_the_answer(self, relation):
        _, engine = make_engine(relation)
        with engine:
            query = topk(k=5, A1=1)
            result = engine.execute(
                query, deadline=Deadline.after(60.0))
            assert result.tids == brute_force_topk(relation, query)[0]
            assert "leg_attempts" in result.extra

    def test_expiry_beats_allow_partial(self, relation):
        _, engine = make_engine(relation, allow_partial=True)
        clock = FakeClock()
        deadline = Deadline.after(0.0, clock=clock)
        clock.advance(1.0)
        with engine:
            # A late answer is not a partial answer: expiry always raises.
            with pytest.raises(DeadlineExceededError):
                engine.execute(topk(), deadline=deadline)

    def test_deadline_caps_retry_backoff(self, relation):
        injector = FaultInjector(seed=8, rates={"worker.crash.pre": 1.0},
                                 max_faults=1)
        _, engine = make_engine(
            relation, fault_injector=injector,
            retry_policy=RetryPolicy(max_attempts=3, base_delay=10.0,
                                     cap_delay=10.0, jitter_seed=2))
        sleeps = []
        engine._sleep = sleeps.append
        with engine:
            result = engine.execute(topk(k=3),
                                    deadline=Deadline.after(0.5))
        assert result.tids  # recovered within the deadline
        assert all(slept <= 0.5 for slept in sleeps)


class TestHungWorkers:
    def test_hung_worker_is_killed_at_the_recv_bound(self, relation):
        injector = FaultInjector(seed=12, rates={"pipe.hang": 1.0},
                                 max_faults=1, hang_seconds=30.0)
        manager = ShardManager(relation, HashShardingPolicy(2),
                               block_size=64, with_signature=False,
                               with_skyline=False)
        model = CostModel()
        model.process_leg_overhead = 0.0  # force process legs
        engine = ProcessScatterExecutor(
            manager, cost_model=model, recv_timeout=0.5,
            fault_injector=injector,
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.001,
                                     cap_delay=0.002, jitter_seed=7))
        with engine:
            query = topk(k=5)
            started = time.monotonic()
            result = engine.execute(query)
            elapsed = time.monotonic() - started
        # Detection, not the 30s nap, unwedged the scatter.
        assert elapsed < 15.0
        assert injector.fired["pipe.hang"] == 1
        assert result.tids == brute_force_topk(relation, query)[0]
        snap = engine.metrics.snapshot()
        assert snap["fault.hung_legs"] == 1.0
        assert snap["fault.retries"] >= 1.0

    def test_hang_error_is_flagged_timed_out_in_strict_mode(self, relation):
        injector = FaultInjector(seed=13, rates={"pipe.hang": 1.0},
                                 hang_seconds=30.0)
        manager = ShardManager(relation, HashShardingPolicy(2),
                               block_size=64, with_signature=False,
                               with_skyline=False)
        model = CostModel()
        model.process_leg_overhead = 0.0
        engine = ProcessScatterExecutor(manager, cost_model=model,
                                        recv_timeout=0.5,
                                        fault_injector=injector)
        with engine:
            with pytest.raises(ShardWorkerError,
                               match="did not reply") as excinfo:
                engine.execute(topk())
            assert excinfo.value.timed_out
