"""Tests for the CLI, the report generator, and the hierarchical-index helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import ExperimentResult
from repro.bench.report import build_report, result_to_markdown, run_experiments
from repro.cli import build_parser, main
from repro.storage.btree import BPlusTree
from repro.storage.hierindex import LeafEntry, NodeHandle
from repro.geometry import Box


def tiny_result() -> ExperimentResult:
    result = ExperimentResult("fig0.1", "toy experiment", "x", ("metric",))
    result.add("alpha", 1, metric=2.0)
    result.add("beta", 1, metric=4.0)
    return result


class TestReport:
    def test_markdown_table(self):
        markdown = result_to_markdown(tiny_result())
        assert "### fig0.1" in markdown
        assert "| alpha | 1 | 2.0000 |" in markdown

    def test_run_experiments_selection_and_progress(self):
        calls = []
        registry = {"fig0.1": tiny_result, "fig0.2": tiny_result}
        results = run_experiments(registry, only=["fig0.2"],
                                  progress=lambda name, secs: calls.append(name))
        assert len(results) == 1
        assert calls == ["fig0.2"]
        with pytest.raises(KeyError):
            run_experiments(registry, only=["nope"])

    def test_build_report(self):
        report = build_report([tiny_result(), tiny_result()], title="Report")
        assert report.startswith("# Report")
        assert report.count("### fig0.1") == 2


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig3.4" in out and "fig7.6" in out

    def test_demo_sharded(self, capsys):
        assert main(["demo", "--shards", "3"]) == 0
        out = capsys.readouterr().out
        assert "scatter/gather over 3 range shards" in out
        assert "backend: scatter-gather" in out
        assert "shards consulted:" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "top-5" in out and "block accesses" in out

    def test_serve_sharded(self, capsys):
        assert main(["serve", "--clients", "3", "--queries", "3",
                     "--linger", "2"]) == 0
        out = capsys.readouterr().out
        assert "scatter/gather over 3 range shards" in out
        assert "served 9 queries from 3 concurrent clients" in out
        # Shutdown prints the merged metrics registry as JSON, spanning
        # every layer of the stack.
        assert '"serve.completed"' in out
        assert '"shard.legs_run"' in out
        assert '"engine.tuples_evaluated"' in out

    def test_serve_unsharded(self, capsys):
        assert main(["serve", "--shards", "1", "--clients", "2",
                     "--queries", "2"]) == 0
        out = capsys.readouterr().out
        assert "engine: unsharded" in out
        assert "served 4 queries from 2 concurrent clients" in out
        assert '"serve.completed"' in out
        assert '"engine.queries"' in out

    def test_analyze_served_sharded(self, capsys):
        assert main(["analyze"]) == 0
        out = capsys.readouterr().out
        assert "serve.request" in out
        assert "serve.queue_wait" in out
        assert "shard.leg" in out
        assert "shard.gather" in out
        assert "engine.plan" in out
        assert "estimated cost vs actual tuples evaluated:" in out

    def test_analyze_direct_unsharded(self, capsys):
        assert main(["analyze", "--shards", "1", "--direct"]) == 0
        out = capsys.readouterr().out
        assert "engine.explain_analyze" in out
        assert "engine.plan" in out
        assert "cost_estimates=" in out

    def test_run_experiments_unknown_id(self, capsys):
        assert main(["run-experiments", "--only", "not-a-figure"]) == 2

    def test_run_experiments_to_file(self, tmp_path, monkeypatch, capsys):
        # Patch the registry so the CLI runs a cheap fake experiment.
        import repro.bench as bench

        monkeypatch.setattr(bench, "ALL_EXPERIMENTS", {"fig0.1": tiny_result})
        target = tmp_path / "report.md"
        assert main(["run-experiments", "--only", "fig0.1",
                     "--output", str(target)]) == 0
        assert "### fig0.1" in target.read_text()


class TestHierarchicalIndexHelpers:
    def test_node_handle_and_leaf_entry(self):
        box = Box.from_bounds(["x"], [0], [1])
        handle = NodeHandle(page_id=7, box=box, is_leaf=True, level=1, path=(1, 2))
        assert handle.depth == 2
        entry = LeafEntry(tid=3, values=(0.5,), position=1)
        assert entry.as_mapping(["x"]) == {"x": 0.5}

    def test_iter_nodes_and_count(self):
        values = np.linspace(0, 1, 120)
        tree = BPlusTree.build("x", values, fanout=8)
        nodes = list(tree.iter_nodes())
        assert nodes[0].path == ()
        assert len(nodes) == tree.node_count()
        assert tree.count_tuples() == 120
        leaf_levels = {node.level for node in nodes if node.is_leaf}
        assert leaf_levels == {1}
