"""The HTTP serving tier: wire parity, admission fairness, limits, streams.

Covers the network-tier acceptance gates:

* **wire parity** — every query shape of the oracle-parity corpus
  round-trips JSON → HTTP → decode bit-identically to an in-process
  ``QueryService.submit`` against the same engine, unsharded and over
  shard counts {1, 2, 7} (tids *and* scores compared with ``==``, no
  tolerance), and the result codec reproduces every envelope field;
* **typed errors over the wire** — 400 / 404 / 405 / 429 / 503 / 504
  map back to the same exception classes in-process callers catch, with
  ``Retry-After`` on 429 (token bucket) and 503 (queue full), and the
  degraded-answer flag riding the response envelope;
* **fair-share admission** — weighted interleaving across priority
  classes, round-robin across clients inside a class;
* **streaming** — verified top-k prefixes arrive before the final frame,
  the assembled answer is bit-identical to the non-streaming one, and a
  mid-stream failure surfaces as a typed error frame — over chunked
  HTTP and over the websocket.

Like ``test_serve``, asyncio is driven through plain ``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro.engine import Executor
from repro.functions import (
    Add,
    ConstrainedFunction,
    ExpressionFunction,
    LinearFunction,
    ManhattanDistanceFunction,
    Mul,
    SquaredDistanceFunction,
    Var,
    WeightedAverageFunction,
)
from repro.net import (
    AsyncQueryClient,
    FunctionRegistry,
    NetConfig,
    ProtocolError,
    QueryServer,
    RateLimitedError,
    StreamAssembler,
    decode_function,
    decode_query,
    decode_result,
    encode_function,
    encode_query,
    encode_result,
)
from repro.net.admission import AdmissionController, FairShareScheduler, Ticket
from repro.net.protocol import (
    decode_error,
    decode_priority,
    encode_error,
    encode_predicate,
    decode_predicate,
)
from repro.net.ratelimit import TokenBucket, TokenBucketLimiter
from repro.net.stream import error_frame, final_frame, prefix_frame
from repro.query import Predicate, QueryResult, SkylineQuery, TopKQuery
from repro.serve import (
    QueryService,
    RequestTimeoutError,
    ServiceConfig,
    ServiceOverloadedError,
)
from repro.workloads import SyntheticSpec, generate_relation
from tests.test_parity_oracle import (
    SHARD_COUNTS,
    SPECS,
    _slim_shard_factory,
    _skyline_queries,
    _topk_queries,
)


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


# ----------------------------------------------------------------------
# protocol codec units
# ----------------------------------------------------------------------
class TestProtocolCodec:
    def roundtrip(self, function):
        encoded = json.loads(json.dumps(encode_function(function)))
        return decode_function(encoded)

    def test_linear_function_roundtrips_bit_identically(self):
        function = LinearFunction(["N1", "N2"], [0.1, 0.7], 2.5)
        back = self.roundtrip(function)
        assert back.dims == function.dims
        assert back.weights == function.weights
        assert back.constant == function.constant

    def test_weighted_average_encodes_as_equivalent_linear(self):
        function = WeightedAverageFunction(["N1", "N2", "N3"],
                                           [1.0, 2.0, 3.0])
        back = self.roundtrip(function)
        assert back.dims == function.dims
        assert back.weights == function.weights

    def test_distance_functions_roundtrip(self):
        for cls in (SquaredDistanceFunction, ManhattanDistanceFunction):
            function = cls(["N1", "N2"], [0.25, 0.5], [1.0, 3.0])
            back = self.roundtrip(function)
            assert type(back) is cls
            assert back.dims == function.dims
            assert back.targets == function.targets
            assert back.weights == function.weights

    def test_constrained_and_expression_functions_roundtrip(self):
        base = LinearFunction(["N1", "N2"], [1.0, 1.0])
        constrained = ConstrainedFunction(base, "N1", 0.2, 0.8)
        back = self.roundtrip(constrained)
        assert back.constrained_dim == "N1"
        assert (back.window.low, back.window.high) == (0.2, 0.8)
        assert back.base.weights == base.weights

        expr = Add(Mul(Var("N1"), Var("N1")), Var("N2"))
        function = ExpressionFunction(expr, dims=["N1", "N2"])
        back = self.roundtrip(function)
        assert back.dims == function.dims
        assert back.shape == function.shape
        # Equivalent evaluation is what the wire must preserve.
        values = {"N1": 0.3, "N2": 0.9}
        assert back.expr.value(values) == expr.value(values)

    def test_ref_function_needs_a_registry(self):
        registry = FunctionRegistry()
        function = LinearFunction(["N1"], [2.0])
        registry.register("blessed", function)
        assert decode_function({"kind": "ref", "name": "blessed"},
                               registry) is function
        with pytest.raises(ProtocolError):
            decode_function({"kind": "ref", "name": "blessed"})
        with pytest.raises(ProtocolError):
            decode_function({"kind": "ref", "name": "unknown"}, registry)

    def test_string_function_encodes_as_ref(self):
        assert encode_function("blessed") == {"kind": "ref",
                                              "name": "blessed"}

    def test_predicate_roundtrip_and_validation(self):
        predicate = Predicate.of(A1=3, A2=0)
        assert decode_predicate(encode_predicate(predicate)) == predicate
        assert decode_predicate(None) == Predicate.of()
        with pytest.raises(ProtocolError):
            decode_predicate({"A1": "three"})
        with pytest.raises(ProtocolError):
            decode_predicate({"A1": True})

    def test_query_roundtrip_both_kinds(self):
        topk = TopKQuery(Predicate.of(A1=1),
                         LinearFunction(["N1", "N2"], [1.0, 2.0]), 7)
        back = decode_query(json.loads(json.dumps(encode_query(topk))))
        assert back.predicate == topk.predicate
        assert back.k == topk.k
        assert back.function.weights == topk.function.weights

        skyline = SkylineQuery(Predicate.of(A1=2), ("N1", "N2"),
                               targets=(0.5, 0.25))
        back = decode_query(json.loads(json.dumps(encode_query(skyline))))
        assert back.predicate == skyline.predicate
        assert back.preference_dims == skyline.preference_dims
        assert back.targets == skyline.targets

    def test_result_codec_preserves_every_field(self):
        result = QueryResult(
            tids=(5, 3, 11), scores=(0.1, 0.30000000000000004, 1.7),
            disk_accesses=9, states_generated=4, peak_heap_size=3,
            tuples_evaluated=77, elapsed_seconds=0.001953125,
            extra={"batch_size": 2.0, "plan": "grid", "degraded": 1.0,
                   "completeness": 0.75})
        encoded = json.loads(json.dumps(encode_result(result)))
        assert encoded["degraded"] is True
        back = decode_result(encoded)
        assert back.tids == result.tids
        assert back.scores == result.scores  # floats exact through JSON
        assert back.disk_accesses == result.disk_accesses
        assert back.states_generated == result.states_generated
        assert back.peak_heap_size == result.peak_heap_size
        assert back.tuples_evaluated == result.tuples_evaluated
        assert back.elapsed_seconds == result.elapsed_seconds
        assert back.extra == result.extra

    def test_error_envelope_rebuilds_typed_exceptions(self):
        exc = ServiceOverloadedError("queue full", retry_after=1.25)
        envelope = json.loads(json.dumps(encode_error(exc)))
        assert envelope["error"]["status"] == 503
        back = decode_error(envelope, 503)
        assert isinstance(back, ServiceOverloadedError)
        assert back.retry_after == 1.25

        back = decode_error(json.loads(json.dumps(
            encode_error(RateLimitedError("slow down", retry_after=0.5)))),
            429)
        assert isinstance(back, RateLimitedError)
        assert back.retry_after == 0.5

        back = decode_error({"error": {"type": "SomethingNovel",
                                       "message": "boom"}}, 500)
        assert "boom" in str(back)

    def test_priority_validation(self):
        assert decode_priority(None) == "interactive"
        assert decode_priority("background") == "background"
        with pytest.raises(ProtocolError):
            decode_priority("urgent")


# ----------------------------------------------------------------------
# token bucket units
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_refill_with_exact_retry_after(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, now=clock())
        assert [bucket.take(clock())[0] for _ in range(3)] == [True] * 3
        allowed, retry_after = bucket.take(clock())
        assert not allowed
        assert retry_after == 0.5  # one token at 2 tokens/s
        clock.t = 0.5
        allowed, _ = bucket.take(clock())
        assert allowed

    def test_limiter_disabled_without_rate_or_overrides(self):
        limiter = TokenBucketLimiter(clock=FakeClock())
        assert not limiter.enabled
        assert limiter.check("anyone") == (True, 0.0)

    def test_limiter_overrides_pin_specific_clients(self):
        clock = FakeClock()
        limiter = TokenBucketLimiter(rate=None, clock=clock)
        limiter.configure("crawler", rate=1.0, burst=2.0)
        assert limiter.enabled
        assert limiter.check("crawler")[0]
        assert limiter.check("crawler")[0]
        allowed, retry_after = limiter.check("crawler")
        assert not allowed and retry_after == 1.0
        # Unthrottled peers are untouched while the crawler is throttled.
        assert all(limiter.check("dashboard")[0] for _ in range(50))


# ----------------------------------------------------------------------
# fair-share scheduler units
# ----------------------------------------------------------------------
def ticket(priority: str, client: str, tag: int) -> Ticket:
    return Ticket(query=tag, future=None, client_id=client,
                  priority=priority, enqueued_at=0.0)


class TestFairShareScheduler:
    def test_weighted_interleave_favors_interactive(self):
        scheduler = FairShareScheduler()
        for i in range(12):
            scheduler.push(ticket("interactive", "a", i))
            scheduler.push(ticket("background", "b", i))
        order = [scheduler.pop().priority for _ in range(12)]
        # 8:1 weights — the first stretch is dominated by interactive,
        # yet background is never starved out of the first dozen slots.
        assert order.count("interactive") >= 9
        assert "background" in order

    def test_round_robin_across_clients_within_a_class(self):
        scheduler = FairShareScheduler()
        for i in range(3):
            scheduler.push(ticket("batch", "chatty", 10 + i))
        scheduler.push(ticket("batch", "quiet", 99))
        clients = [scheduler.pop().client_id for _ in range(4)]
        # The quiet client is served second, not behind the whole backlog.
        assert clients == ["chatty", "quiet", "chatty", "chatty"]

    def test_single_class_degrades_to_fifo(self):
        scheduler = FairShareScheduler()
        for i in range(5):
            scheduler.push(ticket("interactive", "a", i))
        assert [scheduler.pop().query for _ in range(5)] == list(range(5))
        assert scheduler.pop() is None

    def test_unknown_class_is_rejected(self):
        with pytest.raises(ValueError):
            FairShareScheduler().push(ticket("urgent", "a", 0))


# ----------------------------------------------------------------------
# stream assembler units
# ----------------------------------------------------------------------
class TestStreamAssembler:
    def final(self, pairs):
        return final_frame(QueryResult(
            tids=tuple(t for t, _ in pairs),
            scores=tuple(s for _, s in pairs)))

    def test_accepts_gap_free_prefixes_matching_the_final(self):
        assembler = StreamAssembler()
        assert not assembler.feed(prefix_frame(0, [(5, 0.1), (3, 0.2)]))
        assert not assembler.feed(prefix_frame(2, [(9, 0.7)]))
        assert assembler.feed(self.final([(5, 0.1), (3, 0.2), (9, 0.7),
                                          (1, 0.9)]))
        assert assembler.result.tids == (5, 3, 9, 1)
        assert assembler.pairs == [(5, 0.1), (3, 0.2), (9, 0.7)]

    def test_rejects_gapped_prefixes(self):
        assembler = StreamAssembler()
        assembler.feed(prefix_frame(0, [(5, 0.1)]))
        with pytest.raises(ProtocolError):
            assembler.feed(prefix_frame(2, [(9, 0.7)]))

    def test_rejects_final_disagreeing_with_prefixes(self):
        assembler = StreamAssembler()
        assembler.feed(prefix_frame(0, [(5, 0.1)]))
        with pytest.raises(ProtocolError):
            assembler.feed(self.final([(6, 0.1), (9, 0.7)]))

    def test_error_frame_terminates_with_typed_error(self):
        assembler = StreamAssembler()
        assert assembler.feed(error_frame(RequestTimeoutError("too slow")))
        assert isinstance(assembler.error, RequestTimeoutError)


# ----------------------------------------------------------------------
# retry-after hints (satellite: principled Retry-After everywhere)
# ----------------------------------------------------------------------
class TestRetryAfterHints:
    def test_overload_error_carries_retry_after(self):
        exc = ServiceOverloadedError("full", retry_after=2.5)
        assert exc.retry_after == 2.5
        assert ServiceOverloadedError("full").retry_after is None

    def test_admission_hint_tracks_depth_over_drain_rate(self):
        clock = FakeClock()

        async def run():
            controller = AdmissionController(object(), max_pending=4,
                                             concurrency=1, clock=clock)
            await controller.start()
            try:
                assert controller.retry_after_hint() is None  # no history
                controller._completed = 20
                clock.t = 10.0  # 2 completions/s
                for i in range(3):
                    controller.scheduler.push(ticket("batch", "c", i))
                assert controller.retry_after_hint() == pytest.approx(1.5)
            finally:
                controller.scheduler.drain()
                await controller.close()

        asyncio.run(run())

    def test_service_hint_clamped_and_none_before_history(self):
        relation = generate_relation(SyntheticSpec(
            num_tuples=60, num_selection_dims=1, num_ranking_dims=2,
            cardinality=2, seed=31))
        engine = Executor.for_relation(relation, block_size=32,
                                       with_signature=False,
                                       with_skyline=False)
        service = QueryService(engine)
        assert service.retry_after_hint() is None

        async def run():
            async with QueryService(engine) as live:
                await live.submit(TopKQuery(
                    Predicate.of(), LinearFunction(["N1"], [1.0]), 3))
                hint = live.retry_after_hint()
                assert hint is None or 0.05 <= hint <= 60.0

        asyncio.run(run())


# ----------------------------------------------------------------------
# wire parity against the oracle corpus
# ----------------------------------------------------------------------
#: Spec subset replayed over HTTP: the corpus' query *shapes* (linear and
#: distance functions, empty/selective/absent predicates, boundary k,
#: skylines with and without targets) all occur within these three, and
#: each shape re-runs against 4 engines x the whole spec — more specs add
#: socket round trips, not shape coverage.
PARITY_SPEC_INDICES = (0, 3, 4)


def parity_rig(spec_index):
    import numpy as np

    relation = generate_relation(SPECS[spec_index], name=f"N{spec_index}")
    # The slim stack (grid + scan top-k + scan skyline) serves every
    # corpus query shape without the R-tree/signature build cost.
    engines = {0: _slim_shard_factory(relation)}
    from repro.shard import (
        HashShardingPolicy,
        RangeShardingPolicy,
        ScatterGatherExecutor,
        ShardManager,
    )
    for count in SHARD_COUNTS:
        if count == 2:
            policy = RangeShardingPolicy(relation,
                                         relation.selection_dims[0], count)
        else:
            policy = HashShardingPolicy(count)
        manager = ShardManager(relation, policy,
                               executor_factory=_slim_shard_factory)
        engines[count] = ScatterGatherExecutor(manager)
    rng = np.random.default_rng(7000 + spec_index)
    queries = _topk_queries(rng, relation) + _skyline_queries(rng, relation)
    return engines, queries


@pytest.mark.parametrize("spec_index", PARITY_SPEC_INDICES)
def test_http_wire_parity_unsharded_and_sharded(spec_index):
    """JSON → HTTP → decode answers bit-identical to in-process submit.

    Every corpus query runs twice against the same served engine — once
    through ``service.submit`` in process, once through the HTTP client —
    and the answers must agree exactly: same tids, same float scores (JSON
    round-trips IEEE doubles exactly), same skyline memberships.
    """
    engines, queries = parity_rig(spec_index)

    async def serve_one(engine):
        config = ServiceConfig(max_linger=0.001, max_batch_size=32)
        async with QueryService(engine, config) as service:
            async with QueryServer(service, NetConfig()) as server:
                client = AsyncQueryClient("127.0.0.1", server.port,
                                          client_id=f"parity{spec_index}")
                expected = await asyncio.gather(
                    *(service.submit(query) for query in queries))
                remote = await asyncio.gather(
                    *(client.query(query) for query in queries))
                return expected, remote

    for count, engine in engines.items():
        expected, remote = asyncio.run(serve_one(engine))
        for query, local, wire in zip(queries, expected, remote):
            label = (count, query)
            assert wire.tids == local.tids, label
            if isinstance(query, TopKQuery):
                assert wire.scores == local.scores, label
            # The full envelope decodes losslessly: re-encoding the wire
            # result reproduces the local result's encoding except for
            # per-request serving metadata.
            volatile = ("queue_wait", "batch_size", "fused_group_size",
                        "plans_reused", "result_cache")
            local_env = encode_result(local)
            wire_env = encode_result(wire)
            for env in (local_env, wire_env):
                for key in volatile:
                    env["extra"].pop(key, None)
                env.pop("elapsed_seconds", None)
            assert wire_env == local_env, label


def test_http_batch_endpoint_matches_submit_many():
    engines, queries = parity_rig(PARITY_SPEC_INDICES[0])
    engine = engines[0]
    batch = [q for q in queries if isinstance(q, TopKQuery)][:8]

    async def run():
        async with QueryService(engine) as service:
            async with QueryServer(service, NetConfig()) as server:
                client = AsyncQueryClient("127.0.0.1", server.port)
                expected = await service.submit_many(batch)
                remote = await client.query_many(batch)
                return expected, remote

    expected, remote = asyncio.run(run())
    assert len(remote) == len(batch)
    for local, wire in zip(expected, remote):
        assert wire.tids == local.tids
        assert wire.scores == local.scores


# ----------------------------------------------------------------------
# typed errors over the wire
# ----------------------------------------------------------------------
class SlowStubEngine:
    """A duck-typed engine whose answers take a configurable wall time."""

    def __init__(self, delay: float = 0.0, extra=None) -> None:
        self.delay = delay
        self.extra = dict(extra or {})

    def _result(self):
        return QueryResult(tids=(1, 2), scores=(0.5, 0.7),
                           extra=dict(self.extra))

    def execute(self, query):
        if self.delay:
            time.sleep(self.delay)
        return self._result()

    def execute_many(self, queries):
        if self.delay:
            time.sleep(self.delay)
        return [self._result() for _ in queries]

    def cache_stats(self):
        return {}


def simple_query():
    return TopKQuery(Predicate.of(), LinearFunction(["N1"], [1.0]), 2)


def run_served(handler, *, engine=None, net_config=None, service_config=None):
    """Stand up service + server around ``engine`` and run ``handler``."""
    engine = engine if engine is not None else SlowStubEngine()

    async def main():
        async with QueryService(engine, service_config) as service:
            async with QueryServer(service, net_config or NetConfig()) \
                    as server:
                client = AsyncQueryClient("127.0.0.1", server.port)
                return await handler(service, server, client)

    return asyncio.run(main())


class TestHttpErrorMapping:
    def test_malformed_json_and_unknown_routes(self):
        async def handler(service, server, client):
            reader, writer = await client._open()
            writer.write(b"POST /v1/query HTTP/1.1\r\n"
                         b"Content-Length: 9\r\n\r\nnot json!")
            await writer.drain()
            status, _, body = (await client._read_head(reader))[0], None, None
            writer.close()
            statuses = {"bad_json": status}
            statuses["not_found"] = (await client._request("GET", "/nope"))[0]
            statuses["bad_method"] = (
                await client._request("GET", "/v1/query"))[0]
            return statuses

        statuses = run_served(handler)
        assert statuses == {"bad_json": 400, "not_found": 404,
                            "bad_method": 405}

    def test_unknown_function_priority_and_query_shape_are_400(self):
        async def handler(service, server, client):
            statuses = []
            for payload in (
                    {"query": {"type": "nonsense"}},
                    {"query": {"type": "topk", "function":
                               {"kind": "ref", "name": "nope"}, "k": 1}},
                    {"query": encode_query(simple_query()),
                     "priority": "urgent"},
                    {"query": encode_query(simple_query()), "timeout": -1}):
                status, _, body = await client._request(
                    "POST", "/v1/query", payload)
                statuses.append(status)
            return statuses

        assert run_served(handler) == [400, 400, 400, 400]

    def test_rate_limited_client_gets_429_while_peers_sail(self):
        async def handler(service, server, client):
            server.limiter.configure("crawler", rate=0.5, burst=2.0)
            crawler = AsyncQueryClient("127.0.0.1", server.port,
                                       client_id="crawler")
            dashboard = AsyncQueryClient("127.0.0.1", server.port,
                                         client_id="dashboard")
            served = bounced = 0
            retry_after = None
            header_value = None
            for _ in range(6):
                try:
                    await crawler.query(simple_query())
                    served += 1
                except RateLimitedError as exc:
                    bounced += 1
                    retry_after = exc.retry_after
            # Raw request to inspect the Retry-After header itself.
            envelope = {"query": encode_query(simple_query()),
                        "client_id": "crawler"}
            status, headers, _ = await crawler._request(
                "POST", "/v1/query", envelope)
            if status == 429:
                header_value = headers.get("retry-after")
            unthrottled = [await dashboard.query(simple_query())
                           for _ in range(6)]
            return served, bounced, retry_after, header_value, unthrottled

        served, bounced, retry_after, header_value, unthrottled = \
            run_served(handler)
        assert served == 2  # exactly the burst
        assert bounced == 4
        assert retry_after is not None and retry_after > 0
        assert header_value is not None and int(header_value) >= 1
        assert len(unthrottled) == 6  # no peer ever saw a 429

    def test_admission_overflow_is_503_with_retry_after(self):
        engine = SlowStubEngine(delay=0.2)

        async def handler(service, server, client):
            sent = [asyncio.create_task(client.query(simple_query()))
                    for _ in range(8)]
            outcomes = await asyncio.gather(*sent, return_exceptions=True)
            return outcomes

        outcomes = run_served(
            engine=engine,
            net_config=NetConfig(max_pending=1, concurrency=1),
            handler=handler)
        overloaded = [o for o in outcomes
                      if isinstance(o, ServiceOverloadedError)]
        succeeded = [o for o in outcomes if isinstance(o, QueryResult)]
        assert overloaded, "saturation never produced a 503"
        assert succeeded, "at least the in-flight requests must answer"

    def test_timeout_is_504_with_typed_error(self):
        engine = SlowStubEngine(delay=0.5)

        async def handler(service, server, client):
            with pytest.raises(RequestTimeoutError):
                await client.query(simple_query(), timeout=0.05)
            status, _, _ = await client._request(
                "POST", "/v1/query",
                {"query": encode_query(simple_query()), "timeout": 0.05})
            return status

        assert run_served(handler, engine=engine) == 504

    def test_degraded_answer_is_flagged_in_the_envelope(self):
        engine = SlowStubEngine(extra={"degraded": 1.0, "completeness": 0.5,
                                       "shards_failed": 1.0})

        async def handler(service, server, client):
            status, _, body = await client._request(
                "POST", "/v1/query",
                {"query": encode_query(simple_query()),
                 "allow_partial": True})
            result = await client.query(simple_query(), allow_partial=True)
            return status, json.loads(body.decode()), result

        status, payload, result = run_served(handler, engine=engine)
        assert status == 200
        assert payload["result"]["degraded"] is True
        assert result.extra["degraded"] == 1.0
        assert result.extra["completeness"] == 0.5


# ----------------------------------------------------------------------
# streaming over chunked HTTP and the websocket
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def stream_rig():
    relation = generate_relation(SyntheticSpec(
        num_tuples=2000, num_selection_dims=2, num_ranking_dims=2,
        cardinality=5, seed=55))
    engine = Executor.for_relation(relation, block_size=64,
                                   with_signature=False, with_skyline=False)
    # An identical twin answers the reference queries so the served
    # engine's result cache stays cold for the streaming runs.
    twin = Executor.for_relation(relation, block_size=64,
                                 with_signature=False, with_skyline=False)
    function = LinearFunction(["N1", "N2"], [1.0, 2.0])
    queries = [TopKQuery(Predicate.of(), function, 12),
               TopKQuery(Predicate.of(A1=1), function, 5),
               TopKQuery(Predicate.of(A1=0, A2=2), function, 3)]
    return engine, twin, queries


class TestStreaming:
    def test_http_stream_prefixes_verified_and_final_bit_identical(
            self, stream_rig):
        engine, twin, queries = stream_rig
        reference = [twin.execute(query) for query in queries]

        async def handler(service, server, client):
            outcomes = []
            for query in queries:
                seen = []
                result, pairs = await client.stream(
                    query, on_prefix=lambda s, e: seen.append((s, len(e))))
                outcomes.append((result, pairs, seen))
            return outcomes

        outcomes = run_served(handler, engine=engine)
        streamed_any = False
        for (result, pairs, seen), expected in zip(outcomes, reference):
            assert result.tids == expected.tids
            assert result.scores == expected.scores
            assert result.extra["streamed"] == 1.0
            # The assembler already proved prefix/final agreement; pin
            # the prefix ordering here too.
            assert pairs == list(zip(result.tids,
                                     result.scores))[:len(pairs)]
            streamed_any = streamed_any or bool(pairs)
        assert streamed_any, "no query streamed a single verified prefix"

    def test_websocket_query_and_stream_match_plain_http(self, stream_rig):
        engine, twin, queries = stream_rig
        expected = twin.execute(queries[1])

        async def handler(service, server, client):
            async with client.websocket() as ws:
                plain = await ws.query(queries[1])
                streamed, pairs = await ws.stream(queries[1])
                return plain, streamed, pairs

        plain, streamed, pairs = run_served(handler, engine=engine)
        assert plain.tids == expected.tids
        assert plain.scores == expected.scores
        assert streamed.tids == expected.tids
        assert streamed.scores == expected.scores
        assert pairs == list(zip(streamed.tids,
                                 streamed.scores))[:len(pairs)]

    def test_stream_timeout_surfaces_as_typed_error_frame(self):
        engine = SlowStubEngine(delay=0.5)

        async def handler(service, server, client):
            with pytest.raises(RequestTimeoutError):
                await client.stream(simple_query(), timeout=0.05)
            return True

        assert run_served(handler, engine=engine)

    def test_websocket_error_frames_carry_request_ids(self):
        async def handler(service, server, client):
            async with client.websocket() as ws:
                bad = TopKQuery(Predicate.of(), "unregistered", 3)
                with pytest.raises(ProtocolError):
                    await ws.query(bad)
                # The session survives the failed request.
                result = await ws.query(simple_query())
                return result

        result = run_served(handler)
        assert result.tids == (1, 2)


# ----------------------------------------------------------------------
# observability endpoints
# ----------------------------------------------------------------------
class TestOpsEndpoints:
    def test_healthz_metrics_and_stats(self):
        async def handler(service, server, client):
            await client.query(simple_query())
            health = await client.healthz()
            metrics = await client.metrics_text()
            stats = await client.stats()
            return health, metrics, stats

        health, metrics, stats = run_served(handler)
        assert health["status"] == "ok"
        assert health["protocol_version"] == 1
        assert "repro_net_requests" in metrics
        assert "repro_net_latency_seconds_interactive" in metrics
        assert "repro_serve_completed" in metrics
        assert stats["completed"] >= 1.0
        assert "net_pending_interactive" in stats
