"""Tests for the selection (inverted/bitmap) indexes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import IndexError_, QueryError
from repro.storage.bitmap import SelectionIndex, intersect_sorted
from repro.storage.pager import Pager
from repro.workloads import SyntheticSpec, generate_relation


@pytest.fixture(scope="module")
def relation():
    return generate_relation(SyntheticSpec(num_tuples=2000, num_selection_dims=3,
                                           num_ranking_dims=2, cardinality=5, seed=21))


@pytest.fixture(scope="module")
def index(relation):
    return SelectionIndex(relation)


class TestSelectionIndex:
    def test_single_dimension_lookup(self, relation, index):
        for value in range(relation.cardinality("A1")):
            expected = set(np.nonzero(relation.selection_column("A1") == value)[0])
            assert set(index.tids_for("A1", value)) == expected

    def test_missing_value_is_empty(self, index):
        assert index.tids_for("A1", 10 ** 6).size == 0

    def test_unknown_dimension_rejected(self, index):
        with pytest.raises(QueryError):
            index.tids_for("Z9", 0)

    def test_ranking_dimension_rejected(self, relation):
        with pytest.raises(IndexError_):
            SelectionIndex(relation, dims=["N1"])

    def test_conjunction(self, relation, index):
        conditions = {"A1": 1, "A2": 3}
        expected = set(relation.tids_matching(conditions))
        assert set(index.tids_for_conditions(conditions)) == expected

    def test_empty_conditions_return_everything(self, relation, index):
        assert len(index.tids_for_conditions({})) == relation.num_tuples

    def test_bitmap(self, relation, index):
        bitmap = index.bitmap_for("A2", 0)
        assert bitmap.dtype == bool
        assert bitmap.sum() == len(index.tids_for("A2", 0))

    def test_selectivity(self, relation, index):
        total = sum(index.selectivity("A1", v) for v in range(relation.cardinality("A1")))
        assert total == pytest.approx(1.0)

    def test_lookup_counts_io(self, relation):
        pager = Pager(page_size=64)  # tiny pages -> several per posting list
        small = SelectionIndex(relation, pager=pager, buffer_capacity=1)
        before = pager.stats.physical_reads
        small.tids_for("A1", 0)
        assert pager.stats.physical_reads > before
        assert small.num_pages() > relation.cardinality("A1")
        assert small.size_in_bytes() > 0


class TestIntersectSorted:
    def test_intersection(self):
        a = np.array([1, 3, 5, 7])
        b = np.array([3, 4, 5])
        c = np.array([5, 3])
        assert list(intersect_sorted([a, b])) == [3, 5]
        assert list(intersect_sorted([a, b, np.sort(c)])) == [3, 5]

    def test_empty_cases(self):
        assert intersect_sorted([]).size == 0
        assert intersect_sorted([np.array([1, 2]), np.array([3])]).size == 0
