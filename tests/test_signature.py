"""Tests for the signature tree: construction, algebra, SIDs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SignatureError
from repro.signature import Signature, path_to_sid, sid_to_path


class TestSignatureBasics:
    def test_from_paths_and_test(self):
        # Paths of t1 and t3 in the thesis example: <1,1,1> and <1,2,1>.
        sig = Signature.from_paths([(1, 1, 1), (1, 2, 1)], fanout=2)
        assert sig.test(())
        assert sig.test((1,))
        assert sig.test((1, 1))
        assert sig.test((1, 1, 1))
        assert sig.test((1, 2, 1))
        assert not sig.test((2,))
        assert not sig.test((1, 1, 2))
        assert sig.node_bits(()) == [1]
        assert sig.node_bits((1,)) == [1, 1]

    def test_invalid_fanout_and_paths(self):
        with pytest.raises(SignatureError):
            Signature(0)
        sig = Signature(2)
        with pytest.raises(SignatureError):
            sig.set_path(())
        with pytest.raises(SignatureError):
            sig.set_path((3,))
        with pytest.raises(SignatureError):
            sig.clear_path(())

    def test_clear_path_cascades(self):
        sig = Signature.from_paths([(1, 1), (1, 2)], fanout=2)
        sig.clear_path((1, 1))
        assert not sig.test((1, 1))
        assert sig.test((1, 2))
        assert sig.test((1,))
        sig.clear_path((1, 2))
        assert sig.is_empty()

    def test_clear_missing_path_is_noop(self):
        sig = Signature.from_paths([(1, 1)], fanout=2)
        sig.clear_path((2, 2))
        assert sig.test((1, 1))

    def test_counts_and_copy(self):
        sig = Signature.from_paths([(1, 1), (2, 1)], fanout=2)
        assert sig.num_nodes() == 3
        assert sig.num_set_bits() == 4
        clone = sig.copy()
        clone.clear_path((1, 1))
        assert sig.test((1, 1))
        assert sig == Signature.from_paths([(2, 1), (1, 1)], fanout=2)

    def test_breadth_first_iteration(self):
        sig = Signature.from_paths([(1, 1), (2, 2)], fanout=2)
        order = [path for path, _ in sig.iter_nodes_breadth_first()]
        assert order[0] == ()
        assert set(order) == {(), (1,), (2,)}


class TestSignatureAlgebra:
    def test_union(self):
        a = Signature.from_paths([(1, 1)], fanout=2)
        b = Signature.from_paths([(2, 2)], fanout=2)
        u = a.union(b)
        assert u.test((1, 1)) and u.test((2, 2))

    def test_intersection_exact_at_leaves(self):
        a = Signature.from_paths([(1, 1), (2, 1)], fanout=2)
        b = Signature.from_paths([(1, 1), (2, 2)], fanout=2)
        i = a.intersection(b)
        assert i.test((1, 1))
        assert not i.test((2, 1))
        assert not i.test((2, 2))

    def test_intersection_prunes_empty_subtrees(self):
        # Both signatures set bit 2 of the root, but their subtrees under it
        # do not overlap, so the recursive intersection clears the root bit.
        a = Signature.from_paths([(2, 1)], fanout=2)
        b = Signature.from_paths([(2, 2)], fanout=2)
        i = a.intersection(b)
        assert not i.test((2,))
        assert i.is_empty()

    def test_intersection_with_empty(self):
        a = Signature.from_paths([(1, 1)], fanout=2)
        empty = Signature(2)
        assert a.intersection(empty).is_empty()
        assert empty.intersection(a).is_empty()

    def test_thesis_figure_4_7(self):
        # (A=a2) covers t2 <1,1,2> and t6 <2,1,2>;
        # (B=b2) covers t2 <1,1,2> and t7 <2,2,1> (Table 4.1).
        a2 = Signature.from_paths([(1, 1, 2), (2, 1, 2)], fanout=2)
        b2 = Signature.from_paths([(1, 1, 2), (2, 2, 1)], fanout=2)
        union = a2.union(b2)
        inter = a2.intersection(b2)
        assert union.test((2, 2, 1)) and union.test((2, 1, 2))
        assert inter.test((1, 1, 2))
        assert not inter.test((2,))


class TestSid:
    def test_thesis_example(self):
        # M = 2, node N3 has path <1, 1> -> SID = 1*(2+1) + 1 = 4.
        assert path_to_sid((1, 1), fanout=2) == 4
        assert sid_to_path(4, fanout=2) == (1, 1)

    def test_root(self):
        assert path_to_sid((), 8) == 0
        assert sid_to_path(0, 8) == ()

    @given(st.lists(st.integers(min_value=1, max_value=7), max_size=6))
    def test_roundtrip(self, path):
        assert sid_to_path(path_to_sid(tuple(path), 7), 7) == tuple(path)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=4),
                min_size=0, max_size=20))
def test_signature_membership_property(paths):
    """A signature answers True exactly for prefixes of inserted paths."""
    paths = [tuple(p) for p in paths]
    sig = Signature.from_paths(paths, fanout=4)
    prefixes = {p[:i] for p in paths for i in range(1, len(p) + 1)}
    for prefix in prefixes:
        assert sig.test(prefix)
    assert sig.test(()) == bool(paths)
    # A path that extends beyond any inserted path is absent.
    for p in paths:
        assert not sig.test(p + (4,)) or (p + (4,)) in prefixes
