"""Tests for the page-based B+-tree."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import IndexError_
from repro.storage.btree import BPlusTree, fanout_for_page_size


@pytest.fixture(scope="module")
def tree_and_values():
    rng = np.random.default_rng(7)
    values = rng.random(500)
    tree = BPlusTree.build("N", values, fanout=8)
    return tree, values


class TestConstruction:
    def test_fanout_from_page_size(self):
        assert fanout_for_page_size(4096) == 204
        assert fanout_for_page_size(10) >= 4

    def test_invalid_fanout(self):
        with pytest.raises(IndexError_):
            BPlusTree("N", fanout=1)

    def test_build_twice_rejected(self, tree_and_values):
        tree, values = tree_and_values
        with pytest.raises(IndexError_):
            tree._bulk_load(values, None)

    def test_empty_tree(self):
        tree = BPlusTree.build("N", [])
        assert tree.search_range(0, 1) == []
        assert tree.height() == 1
        assert list(tree.sorted_scan()) == []
        assert tree.root().is_leaf

    def test_mismatched_tids_rejected(self):
        with pytest.raises(IndexError_):
            BPlusTree.build("N", [1.0, 2.0], tids=[0])

    def test_height_and_node_count(self, tree_and_values):
        tree, values = tree_and_values
        assert tree.height() >= 3
        assert tree.node_count() > len(values) / 8
        assert tree.num_entries == len(values)
        assert tree.max_fanout() == 8
        assert tree.size_in_bytes() > 0


class TestSearch:
    def test_equality_search(self, tree_and_values):
        tree, values = tree_and_values
        target = float(values[42])
        assert 42 in tree.search_eq(target)

    def test_range_search_matches_numpy(self, tree_and_values):
        tree, values = tree_and_values
        low, high = 0.2, 0.4
        expected = set(np.nonzero((values >= low) & (values <= high))[0])
        assert set(tree.search_range(low, high)) == expected

    def test_empty_range(self, tree_and_values):
        tree, _ = tree_and_values
        assert tree.search_range(0.9, 0.1) == []
        assert tree.search_range(5.0, 6.0) == []

    def test_sorted_scan_order(self, tree_and_values):
        tree, values = tree_and_values
        scanned = [v for v, _ in tree.sorted_scan()]
        assert scanned == sorted(values.tolist())
        descending = [v for v, _ in tree.sorted_scan(ascending=False)]
        assert descending == sorted(values.tolist(), reverse=True)

    def test_search_counts_io(self):
        values = np.linspace(0, 1, 200)
        tree = BPlusTree.build("N", values, fanout=8, buffer_capacity=2)
        before = tree.pager.stats.physical_reads
        tree.search_eq(0.5)
        assert tree.pager.stats.physical_reads > before


class TestHierarchicalInterface:
    def test_root_and_children_boxes(self, tree_and_values):
        tree, values = tree_and_values
        root = tree.root()
        assert not root.is_leaf
        assert root.box.interval("N").low == pytest.approx(values.min())
        assert root.box.interval("N").high == pytest.approx(values.max())
        children = tree.children(root)
        assert children
        # Children cover disjoint, increasing key ranges.
        for first, second in zip(children, children[1:]):
            assert first.box.interval("N").high <= second.box.interval("N").high
        assert children[0].path == (1,)

    def test_leaf_entries_and_paths(self, tree_and_values):
        tree, values = tree_and_values
        paths = dict(tree.iter_tuple_paths())
        assert len(paths) == len(values)
        assert all(len(path) == tree.height() for path in paths.values())
        assert tree.count_tuples() == len(values)

    def test_leaf_entries_requires_leaf(self, tree_and_values):
        tree, _ = tree_and_values
        with pytest.raises(IndexError_):
            tree.leaf_entries(tree.root())

    def test_iter_leaf_paths_drop_slot(self, tree_and_values):
        tree, _ = tree_and_values
        leaf_paths = dict(tree.iter_leaf_paths())
        tuple_paths = dict(tree.iter_tuple_paths())
        for tid, path in leaf_paths.items():
            assert tuple_paths[tid][:-1] == path


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=1, allow_nan=False),
                min_size=1, max_size=300),
       st.floats(min_value=0, max_value=1), st.floats(min_value=0, max_value=1))
def test_range_search_property(values, a, b):
    """Range search always agrees with a linear scan."""
    low, high = min(a, b), max(a, b)
    tree = BPlusTree.build("N", values, fanout=5)
    expected = {i for i, v in enumerate(values) if low <= v <= high}
    assert set(tree.search_range(low, high)) == expected
