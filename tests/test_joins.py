"""Tests for SPJR queries: model, optimizer, rank streams, rank join."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import QueryError
from repro.functions import LinearFunction, SquaredDistanceFunction
from repro.joins import (
    BooleanStream,
    JoinCondition,
    RankJoinExecutor,
    RankStream,
    RankingCubeJoinSystem,
    RelationTerm,
    SPJROptimizer,
    SPJRQuery,
)
from repro.query import Predicate
from repro.signature import SignatureRankingCube
from repro.storage.table import Relation, Schema
from repro.workloads import SyntheticSpec, generate_relation


@pytest.fixture(scope="module")
def relations():
    r1 = generate_relation(SyntheticSpec(num_tuples=600, num_selection_dims=2,
                                         num_ranking_dims=2, cardinality=4, seed=91),
                           name="R1")
    r2 = generate_relation(SyntheticSpec(num_tuples=500, num_selection_dims=2,
                                         num_ranking_dims=2, cardinality=4, seed=92),
                           name="R2")
    return r1, r2


@pytest.fixture(scope="module")
def system(relations):
    return RankingCubeJoinSystem(list(relations), rtree_max_entries=16)


def make_query(r1, r2, k=5):
    return SPJRQuery(
        terms=(
            RelationTerm(r1, Predicate.of(A2=1), LinearFunction(["N1", "N2"], [1, 1])),
            RelationTerm(r2, Predicate.of(A2=2), LinearFunction(["N1"], [1.0])),
        ),
        joins=(JoinCondition("R1", "A1", "R2", "A1"),),
        k=k,
    )


class TestQueryModel:
    def test_validation(self, relations):
        r1, r2 = relations
        with pytest.raises(QueryError):
            SPJRQuery(terms=(), joins=(), k=5)
        with pytest.raises(QueryError):
            make_query(r1, r2, k=0)
        with pytest.raises(QueryError):
            SPJRQuery(terms=(RelationTerm(r1, Predicate.of()),
                             RelationTerm(r1, Predicate.of())), joins=(), k=1)
        query = make_query(r1, r2)
        query.validate()
        assert query.term_for("R1").relation is r1
        with pytest.raises(QueryError):
            query.term_for("R9")

    def test_join_condition_validation(self, relations):
        r1, r2 = relations
        bad = SPJRQuery(
            terms=(RelationTerm(r1, Predicate.of()), RelationTerm(r2, Predicate.of())),
            joins=(JoinCondition("R1", "N1", "R2", "A1"),), k=1)
        with pytest.raises(QueryError):
            bad.validate()
        unknown = SPJRQuery(
            terms=(RelationTerm(r1, Predicate.of()), RelationTerm(r2, Predicate.of())),
            joins=(JoinCondition("R9", "A1", "R2", "A1"),), k=1)
        with pytest.raises(QueryError):
            unknown.validate()

    def test_relation_term_score(self, relations):
        r1, _ = relations
        term = RelationTerm(r1, Predicate.of(), LinearFunction(["N1"], [2.0]))
        assert term.score(0) == pytest.approx(2 * r1.ranking_values(0, ["N1"])[0])
        assert RelationTerm(r1, Predicate.of()).score(0) == 0.0


class TestOptimizer:
    def test_order_prefers_selective_relation(self, relations):
        r1, r2 = relations
        query = SPJRQuery(
            terms=(
                RelationTerm(r1, Predicate.of(A1=1, A2=1),
                             LinearFunction(["N1"], [1.0])),
                RelationTerm(r2, Predicate.of(), LinearFunction(["N1"], [1.0])),
            ),
            joins=(JoinCondition("R1", "A1", "R2", "A1"),), k=5)
        plan = SPJROptimizer().plan(query)
        assert plan.order[0] == "R1"
        assert plan.plan_for("R1").estimated_qualifying < \
            plan.plan_for("R2").estimated_qualifying

    def test_access_method_selection(self, relations):
        r1, r2 = relations
        query = SPJRQuery(
            terms=(
                RelationTerm(r1, Predicate.of(A1=0, A2=0),
                             LinearFunction(["N1"], [1.0])),
                RelationTerm(r2, Predicate.of(), LinearFunction(["N1"], [1.0])),
            ),
            joins=(), k=5)
        plan = SPJROptimizer().plan(query)
        assert plan.plan_for("R1").access == "boolean"   # very selective
        assert plan.plan_for("R2").access == "rank"      # unselective
        with pytest.raises(KeyError):
            plan.plan_for("R9")

    def test_no_ranking_contribution_uses_boolean(self, relations):
        r1, r2 = relations
        query = SPJRQuery(
            terms=(RelationTerm(r1, Predicate.of()),
                   RelationTerm(r2, Predicate.of(), LinearFunction(["N1"], [1.0]))),
            joins=(), k=1)
        plan = SPJROptimizer().plan(query)
        assert plan.plan_for("R1").access == "boolean"


class TestRankStream:
    def test_stream_is_sorted_and_filtered(self, relations, system):
        r1, _ = relations
        cube = system.cubes["R1"]
        predicate = Predicate.of(A1=1)
        function = LinearFunction(["N1", "N2"], [1.0, 1.0])
        stream = RankStream(cube, predicate, function)
        entries = list(stream)
        scores = [e.score for e in entries]
        assert scores == sorted(scores)
        expected_tids = set(r1.tids_matching(predicate.as_dict))
        assert {e.tid for e in entries} == expected_tids

    def test_boolean_stream_matches_rank_stream(self, relations, system):
        cube = system.cubes["R2"]
        predicate = Predicate.of(A2=2)
        function = LinearFunction(["N1"], [1.0])
        rank_entries = [(e.tid, round(e.score, 9)) for e in
                        RankStream(cube, predicate, function)]
        bool_entries = [(e.tid, round(e.score, 9)) for e in
                        BooleanStream(cube, predicate, function)]
        assert sorted(rank_entries) == sorted(bool_entries)
        assert [s for _, s in bool_entries] == sorted(s for _, s in bool_entries)

    def test_stream_without_function(self, system):
        cube = system.cubes["R1"]
        stream = RankStream(cube, Predicate.of(A1=0), None)
        entries = list(stream)
        assert all(e.score == 0.0 for e in entries)


class TestRankJoin:
    def test_matches_brute_force(self, relations, system):
        r1, r2 = relations
        query = make_query(r1, r2, k=5)
        result = system.query(query)
        executor = RankJoinExecutor(query, {
            "R1": RankStream(system.cubes["R1"], query.terms[0].predicate,
                             query.terms[0].function),
            "R2": RankStream(system.cubes["R2"], query.terms[1].predicate,
                             query.terms[1].function),
        })
        expected = executor.brute_force_results(5)
        assert list(result.scores) == pytest.approx([s for s, _ in expected])

    def test_detailed_results_satisfy_join_and_predicates(self, relations, system):
        r1, r2 = relations
        query = make_query(r1, r2, k=5)
        detailed = system.query_detailed(query)
        assert len(detailed) == 5
        for res in detailed:
            t1, t2 = res.tids["R1"], res.tids["R2"]
            assert r1.selection_values(t1)["A1"] == r2.selection_values(t2)["A1"]
            assert r1.selection_values(t1)["A2"] == 1
            assert r2.selection_values(t2)["A2"] == 2
            expected_score = (query.terms[0].score(t1) + query.terms[1].score(t2))
            assert res.score == pytest.approx(expected_score)

    def test_scores_are_sorted(self, relations, system):
        query = make_query(*relations, k=10)
        result = system.query(query)
        assert list(result.scores) == sorted(result.scores)

    def test_join_pulls_less_than_full_relations(self, relations, system):
        r1, r2 = relations
        query = make_query(r1, r2, k=3)
        result = system.query(query)
        qualifying = (len(r1.tids_matching({"A2": 1}))
                      + len(r2.tids_matching({"A2": 2})))
        assert result.extra["stream_pulls"] <= qualifying

    def test_missing_stream_rejected(self, relations, system):
        query = make_query(*relations)
        with pytest.raises(QueryError):
            RankJoinExecutor(query, {})

    def test_unregistered_relation_rejected(self, relations):
        r1, r2 = relations
        system = RankingCubeJoinSystem([r1], rtree_max_entries=16)
        with pytest.raises(QueryError):
            system.query(make_query(r1, r2))

    def test_duplicate_relation_names_rejected(self, relations):
        r1, _ = relations
        with pytest.raises(QueryError):
            RankingCubeJoinSystem([r1, r1])


class TestWorkedExample:
    """The spirit of thesis Table 6.1 / Figure 6.2: a tiny two-relation join."""

    def test_two_relation_top2(self):
        schema = Schema(("J",), ("P",))
        r1 = Relation.from_rows(schema, [
            {"J": 1, "P": 0.1}, {"J": 1, "P": 0.4}, {"J": 2, "P": 0.2},
            {"J": 3, "P": 0.9},
        ], name="L")
        r2 = Relation.from_rows(schema, [
            {"J": 1, "P": 0.3}, {"J": 2, "P": 0.1}, {"J": 2, "P": 0.8},
            {"J": 4, "P": 0.05},
        ], name="R")
        system = RankingCubeJoinSystem([r1, r2], rtree_max_entries=4)
        query = SPJRQuery(
            terms=(RelationTerm(r1, Predicate.of(), LinearFunction(["P"], [1.0])),
                   RelationTerm(r2, Predicate.of(), LinearFunction(["P"], [1.0]))),
            joins=(JoinCondition("L", "J", "R", "J"),), k=2)
        detailed = system.query_detailed(query)
        assert len(detailed) == 2
        # Best combination: L tid 2 (J=2, 0.2) with R tid 1 (J=2, 0.1) = 0.3,
        # then L tid 0 (J=1, 0.1) with R tid 0 (J=1, 0.3) = 0.4.
        assert detailed[0].tids == {"L": 2, "R": 1}
        assert detailed[0].score == pytest.approx(0.3)
        assert detailed[1].tids == {"L": 0, "R": 0}
        assert detailed[1].score == pytest.approx(0.4)
