"""Intervals and axis-aligned boxes.

Both the geometry-based partition (Chapter 3), the R-tree (Chapter 4), and
the joint-state space of index merging (Chapter 5) reason about axis-aligned
regions and need lower bounds of ranking functions over them.  This module
provides the two primitives they share:

* :class:`Interval` — a closed 1-D interval with the interval arithmetic
  needed to derive lower bounds of algebraic ranking functions.
* :class:`Box` — a named, multi-dimensional axis-aligned box.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[low, high]`` supporting interval arithmetic."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError(f"interval low {self.low} exceeds high {self.high}")

    # -- set operations -------------------------------------------------
    def contains(self, value: float) -> bool:
        """Return whether ``value`` lies in the interval."""
        return self.low <= value <= self.high

    def contains_interval(self, other: "Interval") -> bool:
        """Return whether ``other`` is fully inside this interval."""
        return self.low <= other.low and other.high <= self.high

    def intersects(self, other: "Interval") -> bool:
        """Return whether the two intervals overlap (closed endpoints)."""
        return self.low <= other.high and other.low <= self.high

    def intersection(self, other: "Interval") -> Optional["Interval"]:
        """Overlap of the two intervals, or None when they are disjoint."""
        low = max(self.low, other.low)
        high = min(self.high, other.high)
        if low > high:
            return None
        return Interval(low, high)

    def union_hull(self, other: "Interval") -> "Interval":
        """Smallest interval covering both inputs."""
        return Interval(min(self.low, other.low), max(self.high, other.high))

    @property
    def width(self) -> float:
        """Length of the interval."""
        return self.high - self.low

    @property
    def midpoint(self) -> float:
        """Centre of the interval."""
        return 0.5 * (self.low + self.high)

    def clamp(self, value: float) -> float:
        """Nearest point of the interval to ``value``."""
        return min(max(value, self.low), self.high)

    # -- interval arithmetic ---------------------------------------------
    def __add__(self, other: "Interval | float") -> "Interval":
        if isinstance(other, Interval):
            return Interval(self.low + other.low, self.high + other.high)
        return Interval(self.low + other, self.high + other)

    def __radd__(self, other: float) -> "Interval":
        return self.__add__(other)

    def __neg__(self) -> "Interval":
        return Interval(-self.high, -self.low)

    def __sub__(self, other: "Interval | float") -> "Interval":
        if isinstance(other, Interval):
            return Interval(self.low - other.high, self.high - other.low)
        return Interval(self.low - other, self.high - other)

    def __rsub__(self, other: float) -> "Interval":
        return (-self).__add__(other)

    def __mul__(self, other: "Interval | float") -> "Interval":
        if isinstance(other, Interval):
            products = (
                self.low * other.low,
                self.low * other.high,
                self.high * other.low,
                self.high * other.high,
            )
            return Interval(min(products), max(products))
        if other >= 0:
            return Interval(self.low * other, self.high * other)
        return Interval(self.high * other, self.low * other)

    def __rmul__(self, other: float) -> "Interval":
        return self.__mul__(other)

    def square(self) -> "Interval":
        """Interval of ``x**2`` for ``x`` in this interval."""
        if self.contains(0.0):
            return Interval(0.0, max(self.low * self.low, self.high * self.high))
        lo2, hi2 = self.low * self.low, self.high * self.high
        return Interval(min(lo2, hi2), max(lo2, hi2))

    def abs(self) -> "Interval":
        """Interval of ``|x|`` for ``x`` in this interval."""
        if self.contains(0.0):
            return Interval(0.0, max(abs(self.low), abs(self.high)))
        lo, hi = abs(self.low), abs(self.high)
        return Interval(min(lo, hi), max(lo, hi))

    def power(self, exponent: int) -> "Interval":
        """Interval of ``x**exponent`` for integer exponents >= 0."""
        if exponent < 0:
            raise ValueError("negative exponents are not supported")
        if exponent == 0:
            return Interval(1.0, 1.0)
        if exponent % 2 == 0:
            return self.abs().apply_monotone(lambda v: v ** exponent)
        return Interval(self.low ** exponent, self.high ** exponent)

    def apply_monotone(self, fn) -> "Interval":
        """Image of the interval under a non-decreasing function ``fn``."""
        return Interval(fn(self.low), fn(self.high))


#: A degenerate interval used for "everything" bounds.
FULL_INTERVAL = Interval(-math.inf, math.inf)


class Box:
    """A named axis-aligned box: one :class:`Interval` per dimension."""

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Mapping[str, Interval]) -> None:
        self._intervals: Dict[str, Interval] = dict(intervals)

    # -- constructors ----------------------------------------------------
    @classmethod
    def from_bounds(cls, dims: Sequence[str], lows: Sequence[float],
                    highs: Sequence[float]) -> "Box":
        """Build a box from parallel dimension/low/high sequences."""
        if not (len(dims) == len(lows) == len(highs)):
            raise ValueError("dims, lows and highs must have the same length")
        return cls({d: Interval(float(lo), float(hi))
                    for d, lo, hi in zip(dims, lows, highs)})

    @classmethod
    def point(cls, values: Mapping[str, float]) -> "Box":
        """A zero-volume box at a single point."""
        return cls({d: Interval(float(v), float(v)) for d, v in values.items()})

    @classmethod
    def unit(cls, dims: Sequence[str]) -> "Box":
        """The unit hyper-cube ``[0, 1]^d`` (the thesis' default domain)."""
        return cls({d: Interval(0.0, 1.0) for d in dims})

    # -- accessors --------------------------------------------------------
    @property
    def dims(self) -> Tuple[str, ...]:
        """Dimension names covered by this box."""
        return tuple(self._intervals.keys())

    def interval(self, dim: str) -> Interval:
        """Interval of one dimension."""
        return self._intervals[dim]

    def has_dim(self, dim: str) -> bool:
        """Return whether the box constrains ``dim``."""
        return dim in self._intervals

    def lows(self, dims: Optional[Sequence[str]] = None) -> Tuple[float, ...]:
        """Lower corners, in ``dims`` order (default: the box's own order)."""
        dims = dims or self.dims
        return tuple(self._intervals[d].low for d in dims)

    def highs(self, dims: Optional[Sequence[str]] = None) -> Tuple[float, ...]:
        """Upper corners, in ``dims`` order (default: the box's own order)."""
        dims = dims or self.dims
        return tuple(self._intervals[d].high for d in dims)

    # -- geometry ---------------------------------------------------------
    def contains_point(self, values: Mapping[str, float]) -> bool:
        """Whether the point (given as ``{dim: value}``) lies in the box."""
        return all(self._intervals[d].contains(values[d]) for d in self._intervals)

    def contains_box(self, other: "Box") -> bool:
        """Whether ``other`` is fully inside this box (on this box's dims)."""
        return all(
            self._intervals[d].contains_interval(other.interval(d))
            for d in self._intervals
            if other.has_dim(d)
        )

    def intersects(self, other: "Box") -> bool:
        """Whether the two boxes overlap on every shared dimension."""
        for dim, interval in self._intervals.items():
            if other.has_dim(dim) and not interval.intersects(other.interval(dim)):
                return False
        return True

    def intersection(self, other: "Box") -> Optional["Box"]:
        """Overlap of the two boxes on shared dims; None when disjoint."""
        merged: Dict[str, Interval] = {}
        for dim, interval in self._intervals.items():
            if other.has_dim(dim):
                overlap = interval.intersection(other.interval(dim))
                if overlap is None:
                    return None
                merged[dim] = overlap
            else:
                merged[dim] = interval
        for dim in other.dims:
            if dim not in merged:
                merged[dim] = other.interval(dim)
        return Box(merged)

    def union_hull(self, other: "Box") -> "Box":
        """Smallest box covering both inputs (on the union of dims)."""
        merged: Dict[str, Interval] = {}
        for dim in set(self.dims) | set(other.dims):
            if self.has_dim(dim) and other.has_dim(dim):
                merged[dim] = self.interval(dim).union_hull(other.interval(dim))
            elif self.has_dim(dim):
                merged[dim] = self.interval(dim)
            else:
                merged[dim] = other.interval(dim)
        return Box(merged)

    def project(self, dims: Sequence[str]) -> "Box":
        """Box restricted to ``dims`` (missing dims become unbounded)."""
        return Box({d: self._intervals.get(d, FULL_INTERVAL) for d in dims})

    def corners(self) -> Iterator[Dict[str, float]]:
        """Iterate over all ``2^d`` corner points as ``{dim: value}`` dicts."""
        dims = self.dims
        count = len(dims)
        for mask in range(1 << count):
            corner: Dict[str, float] = {}
            for j, dim in enumerate(dims):
                interval = self._intervals[dim]
                corner[dim] = interval.high if mask & (1 << j) else interval.low
            yield corner

    def volume(self) -> float:
        """Product of the interval widths."""
        result = 1.0
        for interval in self._intervals.values():
            result *= interval.width
        return result

    def center(self) -> Dict[str, float]:
        """Midpoint of the box as a ``{dim: value}`` dict."""
        return {d: iv.midpoint for d, iv in self._intervals.items()}

    def with_interval(self, dim: str, interval: Interval) -> "Box":
        """A copy of this box with one dimension's interval replaced."""
        merged = dict(self._intervals)
        merged[dim] = interval
        return Box(merged)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Box):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._intervals.items(), key=lambda kv: kv[0])))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{d}=[{iv.low:g},{iv.high:g}]" for d, iv in self._intervals.items()
        )
        return f"Box({parts})"


def bounding_box(dims: Sequence[str], points: Iterable[Sequence[float]]) -> Box:
    """Smallest box (over ``dims``) covering every point in ``points``."""
    lows: Optional[list] = None
    highs: Optional[list] = None
    for point in points:
        if lows is None:
            lows = list(point)
            highs = list(point)
            continue
        for i, value in enumerate(point):
            if value < lows[i]:
                lows[i] = value
            if value > highs[i]:
                highs[i] = value
    if lows is None or highs is None:
        raise ValueError("cannot bound an empty point set")
    return Box.from_bounds(dims, lows, highs)
