"""Page-based B+-tree over a single ranking dimension.

The B+-tree serves three roles in the reproduction:

* equality / range lookups for the boolean-first and rank-mapping baselines
  (Sections 3.5.1 and 4.4.1),
* sorted sequential access for the threshold-algorithm baseline, and
* a :class:`repro.storage.hierindex.HierarchicalIndex` whose nodes cover key
  intervals, which is the single-attribute index merged by Chapter 5.

Nodes live as pages in a :class:`repro.storage.pager.Pager` and are read
through a :class:`repro.storage.buffer.BufferPool`, so lookups cost counted
disk accesses exactly like every other structure in the library.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import IndexError_
from repro.geometry import Box, Interval
from repro.storage.buffer import BufferPool
from repro.storage.hierindex import HierarchicalIndex, LeafEntry, NodeHandle
from repro.storage.pager import DEFAULT_PAGE_SIZE, Pager

#: Approximate bytes per (key, tid) leaf entry / (key, child) internal entry,
#: used to derive the fanout from the page size as the thesis does
#: ("fixing the page size as 4kB, the fanout of B-tree node is 204").
_BYTES_PER_ENTRY = 20


def fanout_for_page_size(page_size: int) -> int:
    """Node fanout implied by a simulated page size."""
    return max(4, page_size // _BYTES_PER_ENTRY)


class BPlusTree(HierarchicalIndex):
    """A bulk-loaded B+-tree mapping one attribute's values to tids."""

    def __init__(self, dim: str, pager: Optional[Pager] = None,
                 fanout: Optional[int] = None,
                 buffer_capacity: int = 256) -> None:
        self.dims: Tuple[str, ...] = (dim,)
        self.dim = dim
        self.pager = pager or Pager()
        self.fanout = fanout or fanout_for_page_size(self.pager.page_size)
        if self.fanout < 2:
            raise IndexError_(f"B+-tree fanout must be at least 2, got {self.fanout}")
        self.buffer = BufferPool(self.pager, capacity=buffer_capacity)
        self._root_page: Optional[int] = None
        self._height = 0
        self._node_count = 0
        self._num_entries = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, dim: str, values: Sequence[float], tids: Optional[Sequence[int]] = None,
              pager: Optional[Pager] = None, fanout: Optional[int] = None,
              buffer_capacity: int = 256) -> "BPlusTree":
        """Bulk-load a tree from a column of values (tids default to 0..n-1)."""
        tree = cls(dim, pager=pager, fanout=fanout, buffer_capacity=buffer_capacity)
        tree._bulk_load(values, tids)
        return tree

    def _bulk_load(self, values: Sequence[float], tids: Optional[Sequence[int]]) -> None:
        if self._root_page is not None:
            raise IndexError_("B+-tree is already built")
        values = np.asarray(values, dtype=np.float64)
        if tids is None:
            tids = np.arange(len(values), dtype=np.int64)
        else:
            tids = np.asarray(tids, dtype=np.int64)
        if len(values) != len(tids):
            raise IndexError_("values and tids must have the same length")
        order = np.argsort(values, kind="stable")
        sorted_values = values[order]
        sorted_tids = tids[order]
        self._num_entries = len(sorted_values)

        if self._num_entries == 0:
            payload = {"leaf": True, "keys": [], "tids": [], "next": None}
            self._root_page = self.pager.allocate(payload)
            self._node_count = 1
            self._height = 1
            return

        # Build the leaf level.
        leaf_pages: List[int] = []
        leaf_ranges: List[Tuple[float, float]] = []
        num_leaves = max(1, math.ceil(self._num_entries / self.fanout))
        per_leaf = math.ceil(self._num_entries / num_leaves)
        for start in range(0, self._num_entries, per_leaf):
            end = min(start + per_leaf, self._num_entries)
            keys = sorted_values[start:end].tolist()
            leaf_tids = sorted_tids[start:end].tolist()
            payload = {"leaf": True, "keys": keys, "tids": leaf_tids, "next": None}
            page_id = self.pager.allocate(payload)
            leaf_pages.append(page_id)
            leaf_ranges.append((keys[0], keys[-1]))
        for i in range(len(leaf_pages) - 1):
            payload = self.pager.read(leaf_pages[i], physical=False)
            payload["next"] = leaf_pages[i + 1]
            self.pager.write(leaf_pages[i], payload)
        self._node_count = len(leaf_pages)

        # Build internal levels bottom-up.
        level_pages = leaf_pages
        level_ranges = leaf_ranges
        height = 1
        while len(level_pages) > 1:
            parent_pages: List[int] = []
            parent_ranges: List[Tuple[float, float]] = []
            num_parents = max(1, math.ceil(len(level_pages) / self.fanout))
            per_parent = math.ceil(len(level_pages) / num_parents)
            for start in range(0, len(level_pages), per_parent):
                end = min(start + per_parent, len(level_pages))
                children = level_pages[start:end]
                ranges = level_ranges[start:end]
                payload = {
                    "leaf": False,
                    "children": list(children),
                    "ranges": [list(r) for r in ranges],
                }
                page_id = self.pager.allocate(payload)
                parent_pages.append(page_id)
                parent_ranges.append((ranges[0][0], ranges[-1][1]))
            self._node_count += len(parent_pages)
            level_pages = parent_pages
            level_ranges = parent_ranges
            height += 1
        self._root_page = level_pages[0]
        self._root_range = level_ranges[0]
        self._height = height

    # ------------------------------------------------------------------
    # point / range lookups
    # ------------------------------------------------------------------
    def search_eq(self, key: float) -> List[int]:
        """Tids whose indexed value equals ``key``."""
        return self.search_range(key, key)

    def search_range(self, low: float, high: float) -> List[int]:
        """Tids whose indexed value lies in the closed range ``[low, high]``."""
        if self._root_page is None:
            raise IndexError_("B+-tree has not been built")
        if low > high:
            return []
        result: List[int] = []
        leaf_id = self._find_leaf(low)
        while leaf_id is not None:
            payload = self.buffer.read(leaf_id)
            keys = payload["keys"]
            tids = payload["tids"]
            if keys and keys[0] > high:
                break
            for key, tid in zip(keys, tids):
                if low <= key <= high:
                    result.append(tid)
                elif key > high:
                    return result
            leaf_id = payload["next"]
        return result

    def _find_leaf(self, key: float) -> int:
        page_id = self._root_page
        payload = self.buffer.read(page_id)
        while not payload["leaf"]:
            children = payload["children"]
            ranges = payload["ranges"]
            chosen = children[-1]
            for child_id, (lo, hi) in zip(children, ranges):
                if key <= hi:
                    chosen = child_id
                    break
            page_id = chosen
            payload = self.buffer.read(page_id)
        return page_id

    def sorted_scan(self, ascending: bool = True) -> Iterator[Tuple[float, int]]:
        """Iterate ``(value, tid)`` pairs in sorted order (TA sorted access)."""
        if self._root_page is None:
            raise IndexError_("B+-tree has not been built")
        leaves: List[int] = []
        payload = self.buffer.read(self._root_page)
        page_id = self._root_page
        while not payload["leaf"]:
            page_id = payload["children"][0]
            payload = self.buffer.read(page_id)
        while page_id is not None:
            leaves.append(page_id)
            payload = self.buffer.read(page_id)
            page_id = payload["next"]
        ordered = leaves if ascending else list(reversed(leaves))
        for leaf_id in ordered:
            payload = self.buffer.read(leaf_id)
            pairs = list(zip(payload["keys"], payload["tids"]))
            if not ascending:
                pairs.reverse()
            for key, tid in pairs:
                yield key, tid

    # ------------------------------------------------------------------
    # HierarchicalIndex interface
    # ------------------------------------------------------------------
    def root(self) -> NodeHandle:
        if self._root_page is None:
            raise IndexError_("B+-tree has not been built")
        payload = self.pager.read(self._root_page, physical=False)
        if payload["leaf"]:
            keys = payload["keys"]
            low = keys[0] if keys else 0.0
            high = keys[-1] if keys else 0.0
        else:
            low, high = self._root_range
        box = Box({self.dim: Interval(float(low), float(high))})
        return NodeHandle(page_id=self._root_page, box=box,
                          is_leaf=payload["leaf"], level=self._height, path=())

    def children(self, node: NodeHandle) -> List[NodeHandle]:
        if node.is_leaf:
            return []
        payload = self.buffer.read(node.page_id)
        handles: List[NodeHandle] = []
        for position, (child_id, (lo, hi)) in enumerate(
                zip(payload["children"], payload["ranges"]), start=1):
            child_payload = self.pager.read(child_id, physical=False)
            box = Box({self.dim: Interval(float(lo), float(hi))})
            handles.append(NodeHandle(
                page_id=child_id, box=box, is_leaf=child_payload["leaf"],
                level=node.level - 1, path=node.path + (position,)))
        return handles

    def leaf_entries(self, node: NodeHandle) -> List[LeafEntry]:
        payload = self.buffer.read(node.page_id)
        if not payload["leaf"]:
            raise IndexError_(f"page {node.page_id} is not a leaf")
        return [
            LeafEntry(tid=int(tid), values=(float(key),), position=i)
            for i, (key, tid) in enumerate(zip(payload["keys"], payload["tids"]), start=1)
        ]

    def height(self) -> int:
        return self._height

    def node_count(self) -> int:
        return self._node_count

    def max_fanout(self) -> int:
        return self.fanout

    @property
    def num_entries(self) -> int:
        """Number of indexed (value, tid) pairs."""
        return self._num_entries

    def size_in_bytes(self) -> int:
        """Estimated materialized size of the tree."""
        return self.pager.total_bytes()
