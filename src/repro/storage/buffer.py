"""LRU buffer pool over a :class:`repro.storage.pager.Pager`.

The paper's query-processing cost model distinguishes block accesses that
hit the buffer from those that require disk I/O (Section 3.3.2 buffers
retrieved pseudo blocks; Section 5.1.3 treats previously retrieved index
nodes as *redundant*).  The buffer pool makes this explicit: a read that
hits the pool is a logical read only, a miss is a physical read.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Optional

from repro.storage.pager import Pager


class BufferPool:
    """A fixed-capacity LRU page cache.

    Parameters
    ----------
    pager:
        Backing simulated disk.
    capacity:
        Maximum number of pages held in the pool.  ``capacity <= 0`` means
        "unbounded" (everything read stays cached), which models the
        in-memory index assumption of some baselines.
    """

    def __init__(self, pager: Pager, capacity: int = 256) -> None:
        self.pager = pager
        self.capacity = capacity
        self._cache: "OrderedDict[int, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def read(self, page_id: int) -> Any:
        """Read a page through the cache, counting a hit or a miss."""
        if page_id in self._cache:
            self.hits += 1
            self._cache.move_to_end(page_id)
            return self.pager.read(page_id, physical=False)
        self.misses += 1
        payload = self.pager.read(page_id, physical=True)
        self._insert(page_id, payload)
        return payload

    def write(self, page_id: int, payload: Any) -> None:
        """Write through to the pager and refresh the cached copy."""
        self.pager.write(page_id, payload)
        if page_id in self._cache or self.capacity <= 0 or len(self._cache) < self.capacity:
            self._insert(page_id, payload)

    def allocate(self, payload: Any = None) -> int:
        """Allocate a new page through the pager and cache it."""
        page_id = self.pager.allocate(payload)
        self._insert(page_id, payload)
        return page_id

    def invalidate(self, page_id: Optional[int] = None) -> None:
        """Drop one page (or all pages when ``page_id`` is None) from the pool."""
        if page_id is None:
            self._cache.clear()
        else:
            self._cache.pop(page_id, None)

    def contains(self, page_id: int) -> bool:
        """Return whether ``page_id`` is currently cached."""
        return page_id in self._cache

    def _insert(self, page_id: int, payload: Any) -> None:
        self._cache[page_id] = payload
        self._cache.move_to_end(page_id)
        if self.capacity > 0:
            while len(self._cache) > self.capacity:
                self._cache.popitem(last=False)

    @property
    def hit_rate(self) -> float:
        """Fraction of reads served from the pool (0.0 when nothing was read)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_counters(self) -> None:
        """Zero the hit/miss counters without dropping cached pages."""
        self.hits = 0
        self.misses = 0
