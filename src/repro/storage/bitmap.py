"""Inverted (value -> tid list) indexes on selection dimensions.

The baseline approaches in the evaluation build a non-clustered index on
each selection dimension (Section 3.5.1) and the boolean-first approach of
Section 4.4.1 filters through them before ranking.  This module provides
that structure: for every selection dimension, a per-value sorted tid list,
chunked into pages so lookups cost counted disk accesses.  It also provides
the bitmap representation discussed as a compression option in Section 3.6.3.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import IndexError_, QueryError
from repro.storage.buffer import BufferPool
from repro.storage.pager import Pager
from repro.storage.table import Relation

#: Approximate bytes per tid entry, used to size tid-list pages.
_BYTES_PER_TID = 8


class SelectionIndex:
    """Per-dimension inverted indexes over the selection dimensions."""

    def __init__(self, relation: Relation, dims: Optional[Sequence[str]] = None,
                 pager: Optional[Pager] = None, buffer_capacity: int = 256) -> None:
        self.relation = relation
        self.dims: Tuple[str, ...] = tuple(dims) if dims else relation.selection_dims
        self.pager = pager or Pager()
        self.buffer = BufferPool(self.pager, capacity=buffer_capacity)
        self._page_capacity = max(8, self.pager.page_size // _BYTES_PER_TID)
        # (dim, value) -> list of page ids holding the sorted tid list.
        self._postings: Dict[Tuple[str, int], List[int]] = {}
        self._build()

    def _build(self) -> None:
        for dim in self.dims:
            if not self.relation.schema.is_selection(dim):
                raise IndexError_(f"{dim!r} is not a selection dimension")
            column = self.relation.selection_column(dim)
            for value in np.unique(column):
                tids = np.nonzero(column == value)[0]
                pages: List[int] = []
                for start in range(0, len(tids), self._page_capacity):
                    chunk = tids[start:start + self._page_capacity].tolist()
                    pages.append(self.pager.allocate(chunk))
                self._postings[(dim, int(value))] = pages

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def tids_for(self, dim: str, value: int) -> np.ndarray:
        """Sorted tids with ``dim == value`` (empty when the value is absent)."""
        if dim not in self.dims:
            raise QueryError(f"dimension {dim!r} is not indexed")
        pages = self._postings.get((dim, int(value)), [])
        parts = [self.buffer.read(page_id) for page_id in pages]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([np.asarray(p, dtype=np.int64) for p in parts])

    def tids_for_conditions(self, conditions: Mapping[str, int]) -> np.ndarray:
        """Sorted tids matching every equality condition (set intersection)."""
        if not conditions:
            return np.arange(self.relation.num_tuples, dtype=np.int64)
        lists = [self.tids_for(dim, value) for dim, value in conditions.items()]
        lists.sort(key=len)
        result = lists[0]
        for other in lists[1:]:
            result = np.intersect1d(result, other, assume_unique=True)
            if result.size == 0:
                break
        return result

    def bitmap_for(self, dim: str, value: int) -> np.ndarray:
        """Boolean bitmap over all tuples for ``dim == value`` (Section 3.6.3)."""
        mask = np.zeros(self.relation.num_tuples, dtype=bool)
        mask[self.tids_for(dim, value)] = True
        return mask

    def selectivity(self, dim: str, value: int) -> float:
        """Fraction of tuples with ``dim == value`` (no I/O charged)."""
        pages = self._postings.get((dim, int(value)), [])
        count = 0
        for page_id in pages:
            count += len(self.pager.read(page_id, physical=False))
        return count / max(1, self.relation.num_tuples)

    # ------------------------------------------------------------------
    # sizing
    # ------------------------------------------------------------------
    def size_in_bytes(self) -> int:
        """Estimated materialized size of all posting lists."""
        return self.pager.total_bytes()

    def num_pages(self) -> int:
        """Number of posting-list pages."""
        return sum(len(pages) for pages in self._postings.values())


def intersect_sorted(lists: Sequence[np.ndarray]) -> np.ndarray:
    """Intersect several sorted tid arrays (the fragments' merge operation)."""
    if not lists:
        return np.empty(0, dtype=np.int64)
    result = np.asarray(lists[0], dtype=np.int64)
    for other in lists[1:]:
        result = np.intersect1d(result, np.asarray(other, dtype=np.int64),
                                assume_unique=True)
        if result.size == 0:
            break
    return result
