"""Page-based R-tree over the ranking dimensions.

The R-tree is the hierarchical partition template of the signature-based
ranking cube (Chapter 4): the cube's signatures mirror its node structure,
queries walk it best-first, and incremental maintenance tracks how inserts
move tuples between its nodes.  It is also one of the index types merged by
Chapter 5 and the access structure of the skyline engine (Chapter 7).

Construction is Sort-Tile-Recursive (STR) bulk loading; incremental inserts
use Guttman's least-enlargement descent with quadratic node splits.  Because
signature maintenance (Section 4.2.5) needs the *old* and *new* paths of
every tuple whose position changes, :meth:`RTree.insert` reports exactly
that in its :class:`InsertOutcome`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import IndexError_
from repro.geometry import Box, Interval
from repro.storage.buffer import BufferPool
from repro.storage.hierindex import HierarchicalIndex, LeafEntry, NodeHandle
from repro.storage.pager import Pager

#: Approximate bytes per R-tree entry per dimension, used to derive the node
#: capacity from the page size (the thesis quotes M=204 for 2-d, 94 for 5-d
#: nodes at 4 KB pages).
_BYTES_PER_DIM = 10


def capacity_for_page_size(page_size: int, num_dims: int) -> int:
    """Node capacity (max entries) implied by a page size and dimensionality."""
    return max(4, page_size // (_BYTES_PER_DIM * (num_dims + 1)))


@dataclass
class InsertOutcome:
    """What an insert did to the tree, for signature maintenance.

    ``old_paths`` / ``new_paths`` cover every pre-existing tuple whose path
    changed (node splits re-distribute entries); ``new_paths`` additionally
    contains the freshly inserted tid.  Paths use 1-based entry positions
    and include the slot inside the leaf, matching Section 4.2.1.
    """

    tid: int
    split_occurred: bool
    old_paths: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    new_paths: Dict[int, Tuple[int, ...]] = field(default_factory=dict)

    @property
    def changed_tids(self) -> List[int]:
        """Tids (excluding the new one) whose paths actually changed."""
        return [
            tid for tid, old in self.old_paths.items()
            if self.new_paths.get(tid) != old
        ]


def _mbr_of_points(points: Sequence[Sequence[float]]) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
    array = np.asarray(points, dtype=np.float64)
    return tuple(array.min(axis=0).tolist()), tuple(array.max(axis=0).tolist())


def _mbr_union(lows_a, highs_a, lows_b, highs_b):
    lows = tuple(min(a, b) for a, b in zip(lows_a, lows_b))
    highs = tuple(max(a, b) for a, b in zip(highs_a, highs_b))
    return lows, highs


def _mbr_area(lows, highs) -> float:
    area = 1.0
    for lo, hi in zip(lows, highs):
        area *= max(0.0, hi - lo)
    return area


def _enlargement(lows, highs, point) -> float:
    new_lows = tuple(min(lo, p) for lo, p in zip(lows, point))
    new_highs = tuple(max(hi, p) for hi, p in zip(highs, point))
    return _mbr_area(new_lows, new_highs) - _mbr_area(lows, highs)


class RTree(HierarchicalIndex):
    """An R-tree storing points on the ranking dimensions."""

    def __init__(self, dims: Sequence[str], pager: Optional[Pager] = None,
                 max_entries: Optional[int] = None, min_entries: Optional[int] = None,
                 buffer_capacity: int = 256) -> None:
        if not dims:
            raise IndexError_("an R-tree needs at least one dimension")
        self.dims: Tuple[str, ...] = tuple(dims)
        self.pager = pager or Pager()
        self.max_entries = max_entries or capacity_for_page_size(
            self.pager.page_size, len(self.dims))
        if self.max_entries < 2:
            raise IndexError_("R-tree max_entries must be at least 2")
        self.min_entries = min_entries or max(1, self.max_entries // 3)
        self.buffer = BufferPool(self.pager, capacity=buffer_capacity)
        self._root_page: Optional[int] = None
        self._height = 0
        self._node_count = 0
        self._num_entries = 0

    # ------------------------------------------------------------------
    # bulk loading (STR)
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, dims: Sequence[str], points: np.ndarray,
              tids: Optional[Sequence[int]] = None, pager: Optional[Pager] = None,
              max_entries: Optional[int] = None, min_entries: Optional[int] = None,
              buffer_capacity: int = 256) -> "RTree":
        """Bulk-load an R-tree with Sort-Tile-Recursive packing."""
        tree = cls(dims, pager=pager, max_entries=max_entries,
                   min_entries=min_entries, buffer_capacity=buffer_capacity)
        tree._bulk_load(points, tids)
        return tree

    def _bulk_load(self, points: np.ndarray, tids: Optional[Sequence[int]]) -> None:
        if self._root_page is not None:
            raise IndexError_("R-tree is already built")
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != len(self.dims):
            raise IndexError_(
                f"points must be a (n, {len(self.dims)}) array, got {points.shape}")
        if tids is None:
            tids = np.arange(points.shape[0], dtype=np.int64)
        else:
            tids = np.asarray(tids, dtype=np.int64)
        self._num_entries = points.shape[0]

        if self._num_entries == 0:
            payload = {"leaf": True, "entries": []}
            self._root_page = self.pager.allocate(payload)
            self._node_count = 1
            self._height = 1
            return

        groups = self._str_pack(np.arange(self._num_entries), points, 0)
        leaf_pages: List[int] = []
        leaf_mbrs: List[Tuple[Tuple[float, ...], Tuple[float, ...]]] = []
        for group in groups:
            entries = [
                {"tid": int(tids[i]), "point": tuple(points[i].tolist())}
                for i in group
            ]
            payload = {"leaf": True, "entries": entries}
            leaf_pages.append(self.pager.allocate(payload))
            leaf_mbrs.append(_mbr_of_points([e["point"] for e in entries]))
        self._node_count = len(leaf_pages)

        level_pages, level_mbrs = leaf_pages, leaf_mbrs
        height = 1
        while len(level_pages) > 1:
            parent_pages: List[int] = []
            parent_mbrs: List[Tuple[Tuple[float, ...], Tuple[float, ...]]] = []
            for start in range(0, len(level_pages), self.max_entries):
                end = min(start + self.max_entries, len(level_pages))
                entries = []
                lows, highs = level_mbrs[start]
                for child_id, (child_lows, child_highs) in zip(
                        level_pages[start:end], level_mbrs[start:end]):
                    entries.append({"child": child_id, "low": tuple(child_lows),
                                    "high": tuple(child_highs)})
                    lows, highs = _mbr_union(lows, highs, child_lows, child_highs)
                payload = {"leaf": False, "entries": entries}
                parent_pages.append(self.pager.allocate(payload))
                parent_mbrs.append((lows, highs))
            self._node_count += len(parent_pages)
            level_pages, level_mbrs = parent_pages, parent_mbrs
            height += 1
        self._root_page = level_pages[0]
        self._height = height

    def _str_pack(self, indices: np.ndarray, points: np.ndarray, dim: int) -> List[np.ndarray]:
        """Recursively sort-tile indices into leaf groups of at most ``max_entries``."""
        count = len(indices)
        num_leaves = math.ceil(count / self.max_entries)
        if num_leaves <= 1:
            return [indices]
        remaining_dims = len(self.dims) - dim
        if remaining_dims <= 1:
            order = np.argsort(points[indices, dim], kind="stable")
            ordered = indices[order]
            return [
                ordered[start:start + self.max_entries]
                for start in range(0, count, self.max_entries)
            ]
        slices = math.ceil(num_leaves ** (1.0 / remaining_dims))
        per_slice = math.ceil(count / slices)
        order = np.argsort(points[indices, dim], kind="stable")
        ordered = indices[order]
        groups: List[np.ndarray] = []
        for start in range(0, count, per_slice):
            chunk = ordered[start:start + per_slice]
            groups.extend(self._str_pack(chunk, points, dim + 1))
        return groups

    # ------------------------------------------------------------------
    # incremental insertion (Guttman descent + quadratic split)
    # ------------------------------------------------------------------
    def insert(self, point: Sequence[float], tid: int) -> InsertOutcome:
        """Insert a point, reporting every tuple whose path changed."""
        if self._root_page is None:
            raise IndexError_("R-tree has not been built (bulk-load first)")
        point = tuple(float(v) for v in point)
        if len(point) != len(self.dims):
            raise IndexError_("point dimensionality does not match the tree")

        descent = self._choose_path(point)
        split_chain = self._predict_splits(descent)
        root_will_split = split_chain == len(descent)

        old_paths: Dict[int, Tuple[int, ...]] = {}
        if split_chain > 0:
            # Topmost node that will split: the (split_chain)-th node from the
            # leaf upwards.  Capture every tuple path under it before any
            # structural change (paths elsewhere are unaffected; if the root
            # splits, every path gets a longer prefix, so capture everything).
            if root_will_split:
                old_paths = dict(self.iter_tuple_paths())
            else:
                top_index = len(descent) - split_chain
                top_page = descent[top_index][0]
                top_path = tuple(pos for _, pos in descent[1:top_index + 1])
                old_paths = dict(self._paths_under(top_page, top_path))

        self._num_entries += 1
        split_occurred = self._insert_at_leaf(descent, point, tid)

        new_paths: Dict[int, Tuple[int, ...]] = {}
        if split_occurred:
            if root_will_split or self._root_split_happened:
                new_paths = dict(self.iter_tuple_paths())
                old_restricted = old_paths
            else:
                top_index = len(descent) - split_chain
                parent_index = max(0, top_index - 1)
                parent_page = descent[parent_index][0]
                parent_path = tuple(pos for _, pos in descent[1:parent_index + 1])
                new_paths = dict(self._paths_under(parent_page, parent_path))
                old_restricted = old_paths
            changed_old = {
                t: p for t, p in old_restricted.items()
                if new_paths.get(t) is not None and new_paths[t] != p
            }
            changed_new = {t: new_paths[t] for t in changed_old}
            changed_new[tid] = self.path_of_tid(tid)
            return InsertOutcome(tid=tid, split_occurred=True,
                                 old_paths=changed_old, new_paths=changed_new)

        leaf_payload = self.pager.read(descent[-1][0], physical=False)
        leaf_path = tuple(pos for _, pos in descent[1:])
        new_path = leaf_path + (len(leaf_payload["entries"]),)
        return InsertOutcome(
            tid=tid, split_occurred=False, old_paths={}, new_paths={tid: new_path})

    def _choose_path(self, point: Tuple[float, ...]) -> List[Tuple[int, int]]:
        """Least-enlargement descent.  Returns [(page_id, entry_pos_in_parent)]
        from the root (position 0, unused) down to the target leaf."""
        path: List[Tuple[int, int]] = [(self._root_page, 0)]
        page_id = self._root_page
        payload = self.buffer.read(page_id)
        while not payload["leaf"]:
            best_pos, best_child, best_cost, best_area = 0, None, float("inf"), float("inf")
            for pos, entry in enumerate(payload["entries"], start=1):
                cost = _enlargement(entry["low"], entry["high"], point)
                area = _mbr_area(entry["low"], entry["high"])
                if cost < best_cost or (cost == best_cost and area < best_area):
                    best_pos, best_child, best_cost, best_area = pos, entry["child"], cost, area
            path.append((best_child, best_pos))
            page_id = best_child
            payload = self.buffer.read(page_id)
        return path

    def _predict_splits(self, descent: List[Tuple[int, int]]) -> int:
        """Length of the contiguous chain of nodes (from the leaf upward)
        that will split when one entry is added at the leaf."""
        chain = 0
        for page_id, _ in reversed(descent):
            payload = self.pager.read(page_id, physical=False)
            if len(payload["entries"]) >= self.max_entries:
                chain += 1
            else:
                break
        return chain

    def _insert_at_leaf(self, descent: List[Tuple[int, int]],
                        point: Tuple[float, ...], tid: int) -> bool:
        self._root_split_happened = False
        leaf_id = descent[-1][0]
        payload = self.buffer.read(leaf_id)
        payload["entries"].append({"tid": tid, "point": point})
        self.buffer.write(leaf_id, payload)
        self._adjust_mbrs(descent, point)

        split_occurred = False
        level = len(descent) - 1
        while level >= 0:
            page_id = descent[level][0]
            payload = self.pager.read(page_id, physical=False)
            if len(payload["entries"]) <= self.max_entries:
                break
            split_occurred = True
            new_page_id = self._split_node(page_id)
            if level == 0:
                self._grow_root(page_id, new_page_id)
                self._root_split_happened = True
                break
            parent_id = descent[level - 1][0]
            parent = self.pager.read(parent_id, physical=False)
            lows, highs = self._node_mbr(new_page_id)
            parent["entries"].append({"child": new_page_id, "low": lows, "high": highs})
            old_lows, old_highs = self._node_mbr(page_id)
            for entry in parent["entries"]:
                if entry["child"] == page_id:
                    entry["low"], entry["high"] = old_lows, old_highs
                    break
            self.buffer.write(parent_id, parent)
            level -= 1
        return split_occurred

    def _adjust_mbrs(self, descent: List[Tuple[int, int]], point: Tuple[float, ...]) -> None:
        for level in range(len(descent) - 1):
            parent_id = descent[level][0]
            child_id = descent[level + 1][0]
            parent = self.pager.read(parent_id, physical=False)
            for entry in parent["entries"]:
                if entry["child"] == child_id:
                    entry["low"] = tuple(min(lo, p) for lo, p in zip(entry["low"], point))
                    entry["high"] = tuple(max(hi, p) for hi, p in zip(entry["high"], point))
                    break
            self.buffer.write(parent_id, parent)

    def _split_node(self, page_id: int) -> int:
        """Quadratic split: distribute the node's entries into two nodes,
        keeping the original page for group 1 and allocating a new page for
        group 2.  Returns the new page id."""
        payload = self.pager.read(page_id, physical=False)
        entries = payload["entries"]
        mbrs = [self._entry_mbr(e) for e in entries]

        # Pick seed pair with the largest dead area.
        worst, seeds = -1.0, (0, 1)
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                lows, highs = _mbr_union(*mbrs[i], *mbrs[j])
                waste = _mbr_area(lows, highs) - _mbr_area(*mbrs[i]) - _mbr_area(*mbrs[j])
                if waste > worst:
                    worst, seeds = waste, (i, j)

        group1, group2 = [seeds[0]], [seeds[1]]
        mbr1, mbr2 = mbrs[seeds[0]], mbrs[seeds[1]]
        remaining = [i for i in range(len(entries)) if i not in seeds]
        for i in remaining:
            need1 = self.min_entries - len(group1)
            need2 = self.min_entries - len(group2)
            left = len(remaining) - (len(group1) + len(group2) - 2)
            if need1 >= left:
                target = 1
            elif need2 >= left:
                target = 2
            else:
                enlarge1 = _mbr_area(*_mbr_union(*mbr1, *mbrs[i])) - _mbr_area(*mbr1)
                enlarge2 = _mbr_area(*_mbr_union(*mbr2, *mbrs[i])) - _mbr_area(*mbr2)
                target = 1 if enlarge1 <= enlarge2 else 2
            if target == 1:
                group1.append(i)
                mbr1 = _mbr_union(*mbr1, *mbrs[i])
            else:
                group2.append(i)
                mbr2 = _mbr_union(*mbr2, *mbrs[i])

        payload["entries"] = [entries[i] for i in group1]
        self.buffer.write(page_id, payload)
        new_payload = {"leaf": payload["leaf"], "entries": [entries[i] for i in group2]}
        new_page_id = self.pager.allocate(new_payload)
        self._node_count += 1
        return new_page_id

    def _grow_root(self, old_root: int, sibling: int) -> None:
        lows1, highs1 = self._node_mbr(old_root)
        lows2, highs2 = self._node_mbr(sibling)
        payload = {
            "leaf": False,
            "entries": [
                {"child": old_root, "low": lows1, "high": highs1},
                {"child": sibling, "low": lows2, "high": highs2},
            ],
        }
        self._root_page = self.pager.allocate(payload)
        self._node_count += 1
        self._height += 1

    def _entry_mbr(self, entry: dict) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
        if "point" in entry:
            return tuple(entry["point"]), tuple(entry["point"])
        return tuple(entry["low"]), tuple(entry["high"])

    def _node_mbr(self, page_id: int) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
        payload = self.pager.read(page_id, physical=False)
        entries = payload["entries"]
        if not entries:
            zero = tuple(0.0 for _ in self.dims)
            return zero, zero
        lows, highs = self._entry_mbr(entries[0])
        for entry in entries[1:]:
            lows, highs = _mbr_union(lows, highs, *self._entry_mbr(entry))
        return lows, highs

    # ------------------------------------------------------------------
    # path utilities
    # ------------------------------------------------------------------
    def _paths_under(self, page_id: int, prefix: Tuple[int, ...]
                     ) -> List[Tuple[int, Tuple[int, ...]]]:
        result: List[Tuple[int, Tuple[int, ...]]] = []
        payload = self.pager.read(page_id, physical=False)
        if payload["leaf"]:
            for pos, entry in enumerate(payload["entries"], start=1):
                result.append((entry["tid"], prefix + (pos,)))
            return result
        for pos, entry in enumerate(payload["entries"], start=1):
            result.extend(self._paths_under(entry["child"], prefix + (pos,)))
        return result

    def path_of_tid(self, tid: int) -> Tuple[int, ...]:
        """Path of one tuple (linear scan; used only after single inserts)."""
        for found_tid, path in self.iter_tuple_paths():
            if found_tid == tid:
                return path
        raise IndexError_(f"tid {tid} is not stored in this R-tree")

    # ------------------------------------------------------------------
    # HierarchicalIndex interface
    # ------------------------------------------------------------------
    def root(self) -> NodeHandle:
        if self._root_page is None:
            raise IndexError_("R-tree has not been built")
        lows, highs = self._node_mbr(self._root_page)
        payload = self.pager.read(self._root_page, physical=False)
        box = Box.from_bounds(self.dims, lows, highs)
        return NodeHandle(page_id=self._root_page, box=box,
                          is_leaf=payload["leaf"], level=self._height, path=())

    def children(self, node: NodeHandle) -> List[NodeHandle]:
        if node.is_leaf:
            return []
        payload = self.buffer.read(node.page_id)
        handles: List[NodeHandle] = []
        for position, entry in enumerate(payload["entries"], start=1):
            child_payload = self.pager.read(entry["child"], physical=False)
            box = Box.from_bounds(self.dims, entry["low"], entry["high"])
            handles.append(NodeHandle(
                page_id=entry["child"], box=box, is_leaf=child_payload["leaf"],
                level=node.level - 1, path=node.path + (position,)))
        return handles

    def leaf_entries(self, node: NodeHandle) -> List[LeafEntry]:
        payload = self.buffer.read(node.page_id)
        if not payload["leaf"]:
            raise IndexError_(f"page {node.page_id} is not a leaf")
        return [
            LeafEntry(tid=int(entry["tid"]), values=tuple(entry["point"]), position=i)
            for i, entry in enumerate(payload["entries"], start=1)
        ]

    def height(self) -> int:
        return self._height

    def node_count(self) -> int:
        return self._node_count

    def max_fanout(self) -> int:
        return self.max_entries

    @property
    def num_entries(self) -> int:
        """Number of indexed points."""
        return self._num_entries

    def size_in_bytes(self) -> int:
        """Estimated materialized size of the tree."""
        return self.pager.total_bytes()
