"""Storage substrate: simulated paged disk, buffer pool, relation, indexes.

Every structure that would live on disk in the paper's SQL-Server-based
prototype (cuboids, base-block tables, B+-trees, R-trees, signatures) is
stored as pages through a :class:`Pager`, so that the "disk access" metric
reported by the benchmarks is counted consistently across all competing
methods.
"""

from repro.storage.buffer import BufferPool
from repro.storage.pager import DEFAULT_PAGE_SIZE, IOStats, Pager, PagerGroup
from repro.storage.table import Relation, RelationStats, Schema

__all__ = [
    "BufferPool",
    "DEFAULT_PAGE_SIZE",
    "IOStats",
    "Pager",
    "PagerGroup",
    "Relation",
    "RelationStats",
    "Schema",
]
