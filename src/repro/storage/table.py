"""Relation, schema, and columnar tuple storage.

The ranking-cube data model (thesis Section 1.2.1) is a relation ``R`` with

* categorical *selection* (boolean) dimensions ``A1..AS`` — low-cardinality
  attributes used in equality predicates, and
* real-valued *ranking* dimensions ``N1..NR`` — attributes used inside the
  ad-hoc ranking function.

A :class:`Relation` stores both groups columnar (NumPy arrays) so that
selection masks and ranking-value lookups are vectorized, while the query
engines address individual tuples by their ``tid`` (0-based row position,
matching the thesis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SchemaError


@dataclass(frozen=True)
class Schema:
    """Names of the selection and ranking dimensions of a relation."""

    selection_dims: Tuple[str, ...]
    ranking_dims: Tuple[str, ...]

    def __post_init__(self) -> None:
        overlap = set(self.selection_dims) & set(self.ranking_dims)
        if overlap:
            raise SchemaError(
                f"dimensions {sorted(overlap)} appear as both selection and ranking"
            )
        if len(set(self.selection_dims)) != len(self.selection_dims):
            raise SchemaError("duplicate selection dimension names")
        if len(set(self.ranking_dims)) != len(self.ranking_dims):
            raise SchemaError("duplicate ranking dimension names")

    @property
    def all_dims(self) -> Tuple[str, ...]:
        """Selection dimensions followed by ranking dimensions."""
        return self.selection_dims + self.ranking_dims

    def selection_index(self, name: str) -> int:
        """Column position of a selection dimension."""
        try:
            return self.selection_dims.index(name)
        except ValueError as exc:
            raise SchemaError(f"unknown selection dimension {name!r}") from exc

    def ranking_index(self, name: str) -> int:
        """Column position of a ranking dimension."""
        try:
            return self.ranking_dims.index(name)
        except ValueError as exc:
            raise SchemaError(f"unknown ranking dimension {name!r}") from exc

    def is_selection(self, name: str) -> bool:
        """Return whether ``name`` is a selection dimension."""
        return name in self.selection_dims

    def is_ranking(self, name: str) -> bool:
        """Return whether ``name`` is a ranking dimension."""
        return name in self.ranking_dims


class Relation:
    """A columnar relation with categorical selection and real ranking dims.

    Parameters
    ----------
    schema:
        Names of the two dimension groups.
    selection_data:
        Integer array of shape ``(T, S)`` with the coded categorical values.
    ranking_data:
        Float array of shape ``(T, R)`` with the ranking attribute values.
    name:
        Optional relation name, used by the multi-relation (SPJR) engine.
    """

    def __init__(
        self,
        schema: Schema,
        selection_data: np.ndarray,
        ranking_data: np.ndarray,
        name: str = "R",
    ) -> None:
        selection_data = np.asarray(selection_data, dtype=np.int64)
        ranking_data = np.asarray(ranking_data, dtype=np.float64)
        if selection_data.ndim != 2 or ranking_data.ndim != 2:
            raise SchemaError("selection_data and ranking_data must be 2-D arrays")
        if selection_data.shape[1] != len(schema.selection_dims):
            raise SchemaError(
                f"selection_data has {selection_data.shape[1]} columns, "
                f"schema declares {len(schema.selection_dims)}"
            )
        if ranking_data.shape[1] != len(schema.ranking_dims):
            raise SchemaError(
                f"ranking_data has {ranking_data.shape[1]} columns, "
                f"schema declares {len(schema.ranking_dims)}"
            )
        if selection_data.shape[0] != ranking_data.shape[0]:
            raise SchemaError("selection_data and ranking_data row counts differ")
        self.schema = schema
        self.name = name
        self._selection = selection_data
        self._ranking = ranking_data
        self._version = 0

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        schema: Schema,
        rows: Iterable[Mapping[str, object]],
        name: str = "R",
    ) -> "Relation":
        """Build a relation from an iterable of ``{dim: value}`` mappings."""
        rows = list(rows)
        selection = np.zeros((len(rows), len(schema.selection_dims)), dtype=np.int64)
        ranking = np.zeros((len(rows), len(schema.ranking_dims)), dtype=np.float64)
        for i, row in enumerate(rows):
            for j, dim in enumerate(schema.selection_dims):
                selection[i, j] = int(row[dim])  # type: ignore[arg-type]
            for j, dim in enumerate(schema.ranking_dims):
                ranking[i, j] = float(row[dim])  # type: ignore[arg-type]
        return cls(schema, selection, ranking, name=name)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_tuples(self) -> int:
        """Number of tuples (``T`` in the thesis)."""
        return self._selection.shape[0]

    @property
    def version(self) -> int:
        """Mutation counter: bumped by :meth:`append`.

        Caches layered over the relation (the engine's result cache)
        compare versions to detect that their entries went stale.
        """
        return self._version

    def __len__(self) -> int:
        return self.num_tuples

    @property
    def selection_dims(self) -> Tuple[str, ...]:
        """Names of the selection dimensions."""
        return self.schema.selection_dims

    @property
    def ranking_dims(self) -> Tuple[str, ...]:
        """Names of the ranking dimensions."""
        return self.schema.ranking_dims

    def selection_column(self, name: str) -> np.ndarray:
        """Return the full coded column of a selection dimension."""
        return self._selection[:, self.schema.selection_index(name)]

    def ranking_column(self, name: str) -> np.ndarray:
        """Return the full column of a ranking dimension."""
        return self._ranking[:, self.schema.ranking_index(name)]

    def selection_matrix(self) -> np.ndarray:
        """Return the ``(T, S)`` selection value matrix (read-only view)."""
        return self._selection

    def ranking_matrix(self) -> np.ndarray:
        """Return the ``(T, R)`` ranking value matrix (read-only view)."""
        return self._ranking

    def cardinality(self, name: str) -> int:
        """Number of distinct values of a selection dimension."""
        return int(np.unique(self.selection_column(name)).size)

    def selection_values(self, tid: int) -> Dict[str, int]:
        """Selection values of one tuple as a ``{dim: value}`` dict."""
        row = self._selection[tid]
        return {dim: int(row[j]) for j, dim in enumerate(self.schema.selection_dims)}

    def ranking_values(self, tid: int, dims: Optional[Sequence[str]] = None) -> np.ndarray:
        """Ranking values of one tuple, optionally restricted to ``dims``."""
        row = self._ranking[tid]
        if dims is None:
            return row
        idx = [self.schema.ranking_index(d) for d in dims]
        return row[idx]

    def ranking_values_bulk(self, tids: Sequence[int],
                            dims: Optional[Sequence[str]] = None) -> np.ndarray:
        """Ranking values for many tuples at once (``len(tids) × len(dims)``)."""
        tid_array = np.asarray(list(tids), dtype=np.int64)
        block = self._ranking[tid_array]
        if dims is None:
            return block
        idx = [self.schema.ranking_index(d) for d in dims]
        return block[:, idx]

    def tuple_dict(self, tid: int) -> Dict[str, object]:
        """Full tuple as a ``{dim: value}`` dict (selection + ranking)."""
        out: Dict[str, object] = dict(self.selection_values(tid))
        row = self._ranking[tid]
        for j, dim in enumerate(self.schema.ranking_dims):
            out[dim] = float(row[j])
        return out

    def iter_tids(self) -> Iterator[int]:
        """Iterate over all tuple ids."""
        return iter(range(self.num_tuples))

    # ------------------------------------------------------------------
    # predicate evaluation helpers
    # ------------------------------------------------------------------
    def mask_equal(self, conditions: Mapping[str, int]) -> np.ndarray:
        """Boolean mask of tuples matching every ``dim == value`` condition."""
        mask = np.ones(self.num_tuples, dtype=bool)
        for dim, value in conditions.items():
            mask &= self.selection_column(dim) == int(value)
        return mask

    def tids_matching(self, conditions: Mapping[str, int]) -> np.ndarray:
        """Tuple ids matching every equality condition, in tid order."""
        return np.nonzero(self.mask_equal(conditions))[0]

    # ------------------------------------------------------------------
    # mutation (used by incremental-maintenance experiments)
    # ------------------------------------------------------------------
    def append(self, row: Mapping[str, object]) -> int:
        """Append one tuple, returning its new tid."""
        selection = np.array(
            [[int(row[d]) for d in self.schema.selection_dims]], dtype=np.int64
        )
        ranking = np.array(
            [[float(row[d]) for d in self.schema.ranking_dims]], dtype=np.float64
        )
        self._selection = np.vstack([self._selection, selection])
        self._ranking = np.vstack([self._ranking, ranking])
        self._version += 1
        return self.num_tuples - 1

    def project(self, selection_dims: Sequence[str],
                ranking_dims: Sequence[str], name: Optional[str] = None) -> "Relation":
        """Return a new relation containing only the requested dimensions."""
        sel_idx = [self.schema.selection_index(d) for d in selection_dims]
        rank_idx = [self.schema.ranking_index(d) for d in ranking_dims]
        schema = Schema(tuple(selection_dims), tuple(ranking_dims))
        return Relation(
            schema,
            self._selection[:, sel_idx].copy(),
            self._ranking[:, rank_idx].copy(),
            name=name or self.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Relation(name={self.name!r}, tuples={self.num_tuples}, "
            f"selection={list(self.selection_dims)}, ranking={list(self.ranking_dims)})"
        )


@dataclass
class RelationStats:
    """Summary statistics used by the SPJR query optimizer (Chapter 6)."""

    num_tuples: int
    cardinalities: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def of(cls, relation: Relation) -> "RelationStats":
        """Compute statistics for ``relation``."""
        cards = {dim: relation.cardinality(dim) for dim in relation.selection_dims}
        return cls(num_tuples=relation.num_tuples, cardinalities=cards)

    def selectivity(self, conditions: Mapping[str, int]) -> float:
        """Estimated fraction of tuples surviving the equality conditions."""
        estimate = 1.0
        for dim in conditions:
            card = max(1, self.cardinalities.get(dim, 1))
            estimate /= card
        return estimate
