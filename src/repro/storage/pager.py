"""Simulated page-level storage with I/O accounting.

Every persistent structure in this library (B+-trees, R-trees, ranking-cube
cuboids, signatures, base-block tables) stores its nodes as *pages* through a
shared :class:`Pager`.  The pager is an in-memory simulation of a block
device: it never touches the filesystem, but it

* hands out page ids,
* tracks an estimated on-"disk" size per page, and
* counts logical reads and writes.

The paper's evaluation reports *number of disk accesses* as a first-class
metric (Figures 3.x, 4.13, 5.10, 5.17, 7.4); routing all structures through
one pager makes that metric consistent across competing methods.  A
:class:`repro.storage.buffer.BufferPool` layered on top decides which logical
reads count as physical (cache-miss) accesses.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional

from repro.errors import PageNotFoundError

#: Default simulated page size in bytes (the paper uses 4 KB pages).
DEFAULT_PAGE_SIZE = 4096


@dataclass
class IOStats:
    """Counters for logical and physical page traffic.

    ``logical_reads`` counts every read request; ``physical_reads`` counts
    only reads that missed the buffer pool (or all reads when no buffer pool
    is used).  ``physical_reads`` is the number reported as "disk accesses"
    in the benchmarks.
    """

    logical_reads: int = 0
    physical_reads: int = 0
    writes: int = 0
    pages_allocated: int = 0
    pages_freed: int = 0
    bytes_written: int = 0

    def reset(self) -> None:
        """Zero every counter in place."""
        self.logical_reads = 0
        self.physical_reads = 0
        self.writes = 0
        self.pages_allocated = 0
        self.pages_freed = 0
        self.bytes_written = 0

    def snapshot(self) -> "IOStats":
        """Return an independent copy of the current counters."""
        return IOStats(
            logical_reads=self.logical_reads,
            physical_reads=self.physical_reads,
            writes=self.writes,
            pages_allocated=self.pages_allocated,
            pages_freed=self.pages_freed,
            bytes_written=self.bytes_written,
        )

    def diff(self, earlier: "IOStats") -> "IOStats":
        """Return the counter deltas accumulated since ``earlier``."""
        return IOStats(
            logical_reads=self.logical_reads - earlier.logical_reads,
            physical_reads=self.physical_reads - earlier.physical_reads,
            writes=self.writes - earlier.writes,
            pages_allocated=self.pages_allocated - earlier.pages_allocated,
            pages_freed=self.pages_freed - earlier.pages_freed,
            bytes_written=self.bytes_written - earlier.bytes_written,
        )


def estimate_size(obj: Any) -> int:
    """Best-effort estimate of the serialized size of ``obj`` in bytes.

    The estimate is intentionally cheap: it recurses one level into
    containers and uses ``sys.getsizeof`` for leaves.  It is used only for
    the space-usage experiments (Figures 3.11, 4.9, 5.22), where relative
    sizes matter, not exact byte counts.
    """
    if obj is None:
        return 0
    if isinstance(obj, (int, float, bool)):
        return 8
    if isinstance(obj, str):
        return len(obj)
    if isinstance(obj, bytes):
        return len(obj)
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 8 + sum(estimate_size(item) for item in obj)
    if isinstance(obj, dict):
        return 8 + sum(
            estimate_size(key) + estimate_size(value) for key, value in obj.items()
        )
    size = getattr(obj, "size_in_bytes", None)
    if callable(size):
        return int(size())
    try:
        return sys.getsizeof(obj)
    except TypeError:
        return 64


class Pager:
    """An in-memory simulated block device.

    Parameters
    ----------
    page_size:
        Simulated page size in bytes.  Structures use it to size their
        fanout (how many entries fit per node).
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        self.page_size = page_size
        self.stats = IOStats()
        self._pages: Dict[int, Any] = {}
        self._page_sizes: Dict[int, int] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def allocate(self, payload: Any = None) -> int:
        """Allocate a fresh page, optionally writing ``payload`` into it."""
        page_id = self._next_id
        self._next_id += 1
        self._pages[page_id] = payload
        size = estimate_size(payload)
        self._page_sizes[page_id] = size
        self.stats.pages_allocated += 1
        if payload is not None:
            self.stats.writes += 1
            self.stats.bytes_written += size
        return page_id

    def free(self, page_id: int) -> None:
        """Release a page.  Reading it afterwards raises ``PageNotFoundError``."""
        if page_id not in self._pages:
            raise PageNotFoundError(page_id)
        del self._pages[page_id]
        del self._page_sizes[page_id]
        self.stats.pages_freed += 1

    # ------------------------------------------------------------------
    # reads / writes
    # ------------------------------------------------------------------
    def read(self, page_id: int, *, physical: bool = True) -> Any:
        """Read the payload stored on ``page_id``.

        ``physical=False`` records a logical read only; the buffer pool uses
        it for cache hits.
        """
        if page_id not in self._pages:
            raise PageNotFoundError(page_id)
        self.stats.logical_reads += 1
        if physical:
            self.stats.physical_reads += 1
        return self._pages[page_id]

    def write(self, page_id: int, payload: Any) -> None:
        """Overwrite the payload of an existing page."""
        if page_id not in self._pages:
            raise PageNotFoundError(page_id)
        self._pages[page_id] = payload
        size = estimate_size(payload)
        self._page_sizes[page_id] = size
        self.stats.writes += 1
        self.stats.bytes_written += size

    def contains(self, page_id: int) -> bool:
        """Return whether ``page_id`` is currently allocated."""
        return page_id in self._pages

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def num_pages(self) -> int:
        """Number of currently allocated pages."""
        return len(self._pages)

    def total_bytes(self) -> int:
        """Sum of the estimated sizes of all allocated pages."""
        return sum(self._page_sizes.values())

    def total_pages_by_size(self) -> int:
        """Number of simulated physical pages, rounding each payload up.

        A payload larger than one page occupies ``ceil(size / page_size)``
        pages; smaller payloads still occupy one.
        """
        total = 0
        for size in self._page_sizes.values():
            total += max(1, -(-size // self.page_size))
        return total

    def page_ids(self) -> Iterator[int]:
        """Iterate over currently allocated page ids."""
        return iter(self._pages.keys())

    def reset_stats(self) -> IOStats:
        """Reset counters, returning the statistics accumulated so far."""
        snapshot = self.stats.snapshot()
        self.stats.reset()
        return snapshot


@dataclass
class PagerGroup:
    """A named collection of pagers whose statistics can be read together.

    The benchmarks build several structures (R-tree, ranking cube, indexes)
    that each get their own pager so that per-structure sizes can be
    reported, while query-time disk accesses are summed across the group.
    """

    pagers: Dict[str, Pager] = field(default_factory=dict)

    def add(self, name: str, pager: Optional[Pager] = None,
            page_size: int = DEFAULT_PAGE_SIZE) -> Pager:
        """Register (or create) a pager under ``name`` and return it."""
        if pager is None:
            pager = Pager(page_size=page_size)
        self.pagers[name] = pager
        return pager

    def get(self, name: str) -> Pager:
        """Return the pager registered under ``name``."""
        return self.pagers[name]

    def total_physical_reads(self) -> int:
        """Total physical (cache-miss) reads across all member pagers."""
        return sum(p.stats.physical_reads for p in self.pagers.values())

    def total_bytes(self) -> int:
        """Total estimated materialized bytes across all member pagers."""
        return sum(p.total_bytes() for p in self.pagers.values())

    def reset_stats(self) -> None:
        """Reset statistics on every member pager."""
        for pager in self.pagers.values():
            pager.reset_stats()
