"""Common interface for hierarchical (tree-structured) indexes.

Chapter 5 merges *indices* — B+-trees and R-trees alike — by working purely
on their hierarchical structure: every node occupies an axis-aligned region
that contains the regions of its children, and leaves hold ``(tid, values)``
entries.  Both index implementations in this package expose that structure
through :class:`HierarchicalIndex`, so the joint-state machinery, the
signature cube (Chapter 4), and the skyline engine (Chapter 7) are all
index-agnostic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.geometry import Box


@dataclass(frozen=True)
class NodeHandle:
    """A reference to one index node.

    ``path`` is the 1-based sequence of entry positions from the root down
    to this node (the thesis' *path*, Section 4.2.1); the root has the empty
    path.  Handles are cheap value objects — reading the node's children or
    entries goes back through the owning index (and is what costs I/O).
    """

    page_id: int
    box: Box
    is_leaf: bool
    level: int
    path: Tuple[int, ...] = ()

    @property
    def depth(self) -> int:
        """Number of edges from the root (root has depth 0)."""
        return len(self.path)


@dataclass(frozen=True)
class LeafEntry:
    """One data entry inside a leaf node: a tid plus its indexed values."""

    tid: int
    values: Tuple[float, ...]
    position: int

    def as_mapping(self, dims: Sequence[str]) -> Dict[str, float]:
        """The entry's values keyed by dimension name."""
        return dict(zip(dims, self.values))


class HierarchicalIndex(ABC):
    """A tree-structured index over one or more ranking dimensions."""

    #: Ranking dimensions covered by this index, in value order.
    dims: Tuple[str, ...]

    @abstractmethod
    def root(self) -> NodeHandle:
        """Handle of the root node (does not count as a disk access)."""

    @abstractmethod
    def children(self, node: NodeHandle) -> List[NodeHandle]:
        """Child handles of an internal node, in stored (1-based path) order.

        Reading the children requires fetching the node's page and therefore
        counts one (possibly buffered) disk access.
        """

    @abstractmethod
    def leaf_entries(self, node: NodeHandle) -> List[LeafEntry]:
        """Data entries of a leaf node (fetches the leaf's page)."""

    @abstractmethod
    def height(self) -> int:
        """Number of levels, counting the root level as 1."""

    @abstractmethod
    def node_count(self) -> int:
        """Total number of nodes (pages) in the index."""

    # ------------------------------------------------------------------
    # derived helpers shared by all implementations
    # ------------------------------------------------------------------
    def max_fanout(self) -> int:
        """Upper bound on the number of entries per node."""
        raise NotImplementedError

    def iter_nodes(self) -> Iterator[NodeHandle]:
        """Depth-first iteration over every node, starting at the root."""
        stack = [self.root()]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(reversed(self.children(node)))

    def iter_tuple_paths(self) -> Iterator[Tuple[int, Tuple[int, ...]]]:
        """Yield ``(tid, path)`` for every indexed tuple.

        The path of a tuple is the path of its leaf followed by its 1-based
        position inside the leaf — the representation the signature cubing
        algorithm sorts on (Section 4.2.1).
        """
        for node in self.iter_nodes():
            if node.is_leaf:
                for entry in self.leaf_entries(node):
                    yield entry.tid, node.path + (entry.position,)

    def iter_leaf_paths(self) -> Iterator[Tuple[int, Tuple[int, ...]]]:
        """Yield ``(tid, leaf_path)`` — the tuple path *without* the leaf slot.

        Join-signatures (Section 5.3.2) only need to know which leaf node
        contains a tuple, so the position inside the leaf is dropped.
        """
        for node in self.iter_nodes():
            if node.is_leaf:
                for entry in self.leaf_entries(node):
                    yield entry.tid, node.path

    def count_tuples(self) -> int:
        """Number of data entries stored in the index."""
        total = 0
        for node in self.iter_nodes():
            if node.is_leaf:
                total += len(self.leaf_entries(node))
        return total
