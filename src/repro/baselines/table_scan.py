"""Table-scan baseline (``TS`` in Section 5.4.1).

Sequentially reads the whole relation, applies the boolean predicate, and
keeps the best k tuples in a bounded heap.  Disk cost is the number of heap
pages of the base table — the cost every index-based method is trying to
beat.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.query import Predicate, QueryResult, TopKQuery
from repro.storage.pager import DEFAULT_PAGE_SIZE
from repro.storage.table import Relation

#: Assumed bytes per stored tuple when estimating the table's page count.
_BYTES_PER_TUPLE_FIELD = 8


def table_pages(relation: Relation, page_size: int = DEFAULT_PAGE_SIZE) -> int:
    """Number of heap pages occupied by ``relation``."""
    fields = len(relation.selection_dims) + len(relation.ranking_dims) + 1
    bytes_per_tuple = fields * _BYTES_PER_TUPLE_FIELD
    tuples_per_page = max(1, page_size // bytes_per_tuple)
    return max(1, -(-relation.num_tuples // tuples_per_page))


class TableScanTopK:
    """Full-scan evaluation of top-k queries with boolean predicates."""

    def __init__(self, relation: Relation, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        self.relation = relation
        self.page_size = page_size

    def query(self, query: TopKQuery) -> QueryResult:
        """Scan every tuple, filter, rank, and return the top k."""
        query.validate(self.relation)
        start = time.perf_counter()
        mask = self.relation.mask_equal(query.predicate.as_dict)
        tids = np.nonzero(mask)[0]
        if tids.size:
            values = self.relation.ranking_values_bulk(tids, query.function.dims)
            scores = np.array([query.function.evaluate(row) for row in values])
            order = np.argsort(scores, kind="stable")[: query.k]
            top_tids = tuple(int(tids[i]) for i in order)
            top_scores = tuple(float(scores[i]) for i in order)
        else:
            top_tids, top_scores = (), ()
        elapsed = time.perf_counter() - start
        return QueryResult(
            tids=top_tids,
            scores=top_scores,
            disk_accesses=table_pages(self.relation, self.page_size),
            tuples_evaluated=int(tids.size),
            elapsed_seconds=elapsed,
        )

    def top_k(self, predicate: Predicate, function, k: int) -> QueryResult:
        """Convenience wrapper mirroring :meth:`RankingCube.top_k`."""
        return self.query(TopKQuery(predicate=predicate, function=function, k=k))
