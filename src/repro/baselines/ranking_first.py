"""Ranking-first baseline (``Ranking`` in Section 4.4.1).

Progressively retrieves R-tree nodes in best-first order (branch and bound
on the ranking function only) and verifies the boolean predicate by a random
access on each tuple that would otherwise enter the top-k heap — exactly the
configuration the thesis describes: boolean verification is issued only for
tuples that have already been determined to be candidate results.
"""

from __future__ import annotations

import heapq
import time
from typing import List, Optional, Tuple

from repro.cube.query import TopKAccumulator
from repro.query import Predicate, QueryResult, TopKQuery
from repro.storage.rtree import RTree
from repro.storage.table import Relation


class RankingFirstTopK:
    """Best-first R-tree search with post-hoc boolean verification."""

    def __init__(self, relation: Relation, rtree: RTree) -> None:
        self.relation = relation
        self.rtree = rtree

    def query(self, query: TopKQuery) -> QueryResult:
        """Answer the query ranking-first."""
        query.validate(self.relation)
        start = time.perf_counter()
        io_before = self.rtree.pager.stats.physical_reads

        function = query.function
        dims = self.rtree.dims
        dim_positions = [dims.index(d) for d in function.dims]
        topk = TopKAccumulator(query.k)
        verifications = 0
        states = 0
        peak_heap = 0

        root = self.rtree.root()
        counter = 0
        heap: List[Tuple[float, int, object]] = [
            (function.lower_bound(root.box), counter, root)]
        while heap:
            peak_heap = max(peak_heap, len(heap))
            bound, _, node = heapq.heappop(heap)
            # Strict halt/skip (here and below): anything tying the k-th
            # score may still beat the incumbent on the canonical
            # (score, tid) tie-break, so only strictly worse work is pruned.
            if topk.is_full() and topk.kth_score < bound:
                break
            states += 1
            if node.is_leaf:
                for entry in self.rtree.leaf_entries(node):
                    score = function.evaluate([entry.values[i] for i in dim_positions])
                    if topk.is_full() and score > topk.kth_score:
                        continue
                    verifications += 1
                    if query.predicate.matches(self.relation, entry.tid):
                        topk.offer(entry.tid, score)
            else:
                for child in self.rtree.children(node):
                    child_bound = function.lower_bound(child.box)
                    if topk.is_full() and child_bound > topk.kth_score:
                        continue
                    counter += 1
                    heapq.heappush(heap, (child_bound, counter, child))

        rtree_io = self.rtree.pager.stats.physical_reads - io_before
        elapsed = time.perf_counter() - start
        ranked = topk.ranked()
        return QueryResult(
            tids=tuple(tid for tid, _ in ranked),
            scores=tuple(score for _, score in ranked),
            disk_accesses=rtree_io + verifications,
            states_generated=states,
            peak_heap_size=peak_heap,
            tuples_evaluated=verifications,
            elapsed_seconds=elapsed,
            extra={"rtree_accesses": float(rtree_io),
                   "boolean_verifications": float(verifications)},
        )

    def top_k(self, predicate: Predicate, function, k: int) -> QueryResult:
        """Convenience wrapper."""
        return self.query(TopKQuery(predicate=predicate, function=function, k=k))
