"""Boolean-first baseline (``Boolean`` in Section 4.4.1).

Evaluates the boolean predicates first through per-dimension selection
indexes, then ranks the qualifying tuples while keeping only a size-k heap.
This is also how the thesis models the commercial-DBMS baseline of Section
3.5.1: per-dimension non-clustered indexes followed by random accesses to
the qualifying tuples.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.baselines.table_scan import table_pages
from repro.query import Predicate, QueryResult, TopKQuery
from repro.storage.bitmap import SelectionIndex
from repro.storage.table import Relation


class BooleanFirstTopK:
    """Filter by selection indexes, then rank the survivors."""

    def __init__(self, relation: Relation, index: Optional[SelectionIndex] = None) -> None:
        self.relation = relation
        self.index = index or SelectionIndex(relation)

    def query(self, query: TopKQuery) -> QueryResult:
        """Answer the query boolean-first.

        Disk cost: the posting-list pages read from the selection indexes
        plus one random access per qualifying tuple (the thesis' point that
        this is expensive when the output is small but the predicate is not
        very selective), capped by a full table scan — the optimizer would
        switch to a scan rather than do more random I/O than that.
        """
        query.validate(self.relation)
        start = time.perf_counter()
        before = self.index.pager.stats.physical_reads
        tids = self.index.tids_for_conditions(query.predicate.as_dict)
        index_io = self.index.pager.stats.physical_reads - before

        if tids.size:
            values = self.relation.ranking_values_bulk(tids, query.function.dims)
            scores = np.array([query.function.evaluate(row) for row in values])
            order = np.argsort(scores, kind="stable")[: query.k]
            top_tids = tuple(int(tids[i]) for i in order)
            top_scores = tuple(float(scores[i]) for i in order)
        else:
            top_tids, top_scores = (), ()

        random_io = int(tids.size)
        scan_io = table_pages(self.relation)
        disk = min(index_io + random_io, index_io + scan_io)
        elapsed = time.perf_counter() - start
        return QueryResult(
            tids=top_tids,
            scores=top_scores,
            disk_accesses=disk,
            tuples_evaluated=int(tids.size),
            elapsed_seconds=elapsed,
        )

    def top_k(self, predicate: Predicate, function, k: int) -> QueryResult:
        """Convenience wrapper."""
        return self.query(TopKQuery(predicate=predicate, function=function, k=k))
