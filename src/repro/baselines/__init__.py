"""Baseline query-processing methods used throughout the evaluation."""

from repro.baselines.boolean_first import BooleanFirstTopK
from repro.baselines.rank_mapping import RankMappingTopK, optimal_range_bounds
from repro.baselines.ranking_first import RankingFirstTopK
from repro.baselines.table_scan import TableScanTopK, table_pages
from repro.baselines.threshold_algorithm import (
    ThresholdAlgorithmTopK,
    build_dimension_trees,
)

__all__ = [
    "BooleanFirstTopK",
    "RankMappingTopK",
    "optimal_range_bounds",
    "RankingFirstTopK",
    "TableScanTopK",
    "table_pages",
    "ThresholdAlgorithmTopK",
    "build_dimension_trees",
]
