"""Fagin-style threshold algorithm (TA) over per-dimension B+-trees.

TA is the sort-merge reference point that Chapter 5 contrasts index-merge
against: it performs sorted access on one pre-sorted list per ranking
dimension and random accesses to resolve full scores, and it requires the
ranking function to be monotone.  It is included both as a baseline and as a
correctness oracle for monotone linear queries.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import QueryError
from repro.functions.base import FunctionShape, RankingFunction
from repro.query import Predicate, QueryResult, TopKQuery
from repro.storage.btree import BPlusTree
from repro.storage.table import Relation


class ThresholdAlgorithmTopK:
    """Classic TA with round-robin sorted access and eager random access."""

    def __init__(self, relation: Relation, trees: Dict[str, BPlusTree]) -> None:
        self.relation = relation
        self.trees = dict(trees)

    def query(self, query: TopKQuery) -> QueryResult:
        """Run TA; only monotone ranking functions are supported."""
        query.validate(self.relation)
        function = query.function
        if function.shape is not FunctionShape.MONOTONE:
            raise QueryError("the threshold algorithm requires a monotone ranking function")
        missing = [d for d in function.dims if d not in self.trees]
        if missing:
            raise QueryError(f"no sorted list (B+-tree) available for dimensions {missing}")

        start = time.perf_counter()
        io_before = {dim: self.trees[dim].pager.stats.physical_reads
                     for dim in function.dims}
        scans = {dim: self.trees[dim].sorted_scan(ascending=True) for dim in function.dims}
        last_seen: Dict[str, float] = {}
        seen_scores: Dict[int, float] = {}
        random_accesses = 0
        sorted_accesses = 0

        best_k: List[Tuple[int, float]] = []

        def kth_score() -> float:
            if len(best_k) < query.k:
                return float("inf")
            return best_k[query.k - 1][1]

        exhausted = False
        while not exhausted:
            exhausted = True
            for dim in function.dims:
                try:
                    value, tid = next(scans[dim])
                except StopIteration:
                    continue
                exhausted = False
                sorted_accesses += 1
                last_seen[dim] = value
                if tid not in seen_scores:
                    random_accesses += 1
                    if query.predicate.matches(self.relation, tid):
                        score = function.evaluate_tuple(self.relation, tid)
                        seen_scores[tid] = score
                        best_k.append((tid, score))
                        best_k.sort(key=lambda p: (p[1], p[0]))
                        del best_k[query.k:]
                    else:
                        seen_scores[tid] = float("inf")
            if len(last_seen) == len(function.dims):
                threshold = function.evaluate([last_seen[d] for d in function.dims])
                # Strict halt: an unseen tuple tying the k-th score may
                # still win the canonical (score, tid) tie-break.
                if kth_score() < threshold:
                    break

        tree_io = sum(
            self.trees[dim].pager.stats.physical_reads - io_before[dim]
            for dim in function.dims
        )
        elapsed = time.perf_counter() - start
        return QueryResult(
            tids=tuple(tid for tid, _ in best_k),
            scores=tuple(score for _, score in best_k),
            disk_accesses=tree_io + random_accesses,
            tuples_evaluated=len(seen_scores),
            elapsed_seconds=elapsed,
            extra={"sorted_accesses": float(sorted_accesses),
                   "random_accesses": float(random_accesses)},
        )

    def top_k(self, predicate: Predicate, function, k: int) -> QueryResult:
        """Convenience wrapper."""
        return self.query(TopKQuery(predicate=predicate, function=function, k=k))


def build_dimension_trees(relation: Relation, dims: Optional[Sequence[str]] = None,
                          fanout: Optional[int] = None) -> Dict[str, BPlusTree]:
    """One B+-tree per ranking dimension (TA's pre-sorted lists)."""
    dims = tuple(dims) if dims else relation.ranking_dims
    return {
        dim: BPlusTree.build(dim, relation.ranking_column(dim), fanout=fanout)
        for dim in dims
    }
