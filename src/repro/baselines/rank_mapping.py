"""Rank-mapping baseline (Section 3.5.1, after Bruno et al. [14]).

The rank-mapping technique converts a top-k query into a multi-dimensional
range query: bounds ``n_i`` on each ranking dimension are chosen so that
every tuple scoring at most the (unknown) k-th best score lies inside the
range.  The thesis gives the comparison the strongest possible version of
this baseline by feeding it the *optimal* bound values — derived from the
true k-th score — and we do the same: an oracle pass (not charged to the
method) computes the exact k-th score, and the bounds follow from the
ranking function.

Costs charged: the selection-index lookups plus one page access per block of
tuples that satisfy both the boolean conditions and the derived range — the
tuples a multi-dimensional index on (selection dims, ranking dims) would
fetch.
"""

from __future__ import annotations

import math
import time
from typing import Dict, Optional, Tuple

import numpy as np

from repro.baselines.table_scan import table_pages
from repro.errors import QueryError
from repro.functions.base import RankingFunction
from repro.functions.distance import SquaredDistanceFunction
from repro.functions.linear import LinearFunction
from repro.query import Predicate, QueryResult, TopKQuery
from repro.storage.bitmap import SelectionIndex
from repro.storage.pager import DEFAULT_PAGE_SIZE
from repro.storage.table import Relation

#: Tuples fetched per page when scanning a clustered multi-dimensional index.
_TUPLES_PER_PAGE = 128


def optimal_range_bounds(function: RankingFunction, kth_score: float
                         ) -> Dict[str, Tuple[float, float]]:
    """Per-dimension bounds implied by ``f(t) <= kth_score``.

    Linear functions with non-negative weights give ``N_i <= s*/w_i``;
    squared-distance functions give ``|N_i - t_i| <= sqrt(s*/w_i)``.  Other
    functions fall back to an unbounded range (the mapping provides no
    pruning), which is also how the original technique degrades.
    """
    bounds: Dict[str, Tuple[float, float]] = {}
    if isinstance(function, LinearFunction) and all(w >= 0 for w in function.weights):
        for dim, weight in zip(function.dims, function.weights):
            if weight > 0:
                bounds[dim] = (-math.inf, (kth_score - function.constant) / weight)
            else:
                bounds[dim] = (-math.inf, math.inf)
        return bounds
    if isinstance(function, SquaredDistanceFunction):
        for dim, target, weight in zip(function.dims, function.targets, function.weights):
            if weight > 0:
                radius = math.sqrt(max(0.0, kth_score) / weight)
                bounds[dim] = (target - radius, target + radius)
            else:
                bounds[dim] = (-math.inf, math.inf)
        return bounds
    for dim in function.dims:
        bounds[dim] = (-math.inf, math.inf)
    return bounds


class RankMappingTopK:
    """Answer top-k queries by mapping them to optimally-bounded range queries."""

    def __init__(self, relation: Relation, index: Optional[SelectionIndex] = None,
                 page_size: int = DEFAULT_PAGE_SIZE) -> None:
        self.relation = relation
        self.index = index or SelectionIndex(relation)
        self.page_size = page_size

    def _oracle_kth_score(self, query: TopKQuery) -> float:
        mask = self.relation.mask_equal(query.predicate.as_dict)
        tids = np.nonzero(mask)[0]
        if tids.size == 0:
            return math.inf
        values = self.relation.ranking_values_bulk(tids, query.function.dims)
        scores = np.sort(np.array([query.function.evaluate(row) for row in values]))
        return float(scores[min(query.k, len(scores)) - 1])

    def query(self, query: TopKQuery) -> QueryResult:
        """Execute the range-mapped query with oracle-optimal bounds."""
        query.validate(self.relation)
        start = time.perf_counter()
        kth_score = self._oracle_kth_score(query)
        bounds = optimal_range_bounds(query.function, kth_score)

        before = self.index.pager.stats.physical_reads
        tids = self.index.tids_for_conditions(query.predicate.as_dict)
        index_io = self.index.pager.stats.physical_reads - before

        if tids.size:
            in_range = np.ones(tids.size, dtype=bool)
            for dim, (low, high) in bounds.items():
                column = self.relation.ranking_column(dim)[tids]
                in_range &= (column >= low) & (column <= high)
            range_tids = tids[in_range]
        else:
            range_tids = tids

        if range_tids.size:
            values = self.relation.ranking_values_bulk(range_tids, query.function.dims)
            scores = np.array([query.function.evaluate(row) for row in values])
            order = np.argsort(scores, kind="stable")[: query.k]
            top_tids = tuple(int(range_tids[i]) for i in order)
            top_scores = tuple(float(scores[i]) for i in order)
        else:
            top_tids, top_scores = (), ()

        fetch_io = max(1, -(-int(range_tids.size) // _TUPLES_PER_PAGE))
        disk = min(index_io + fetch_io, table_pages(self.relation, self.page_size))
        elapsed = time.perf_counter() - start
        return QueryResult(
            tids=top_tids,
            scores=top_scores,
            disk_accesses=disk,
            tuples_evaluated=int(range_tids.size),
            elapsed_seconds=elapsed,
            extra={"range_tuples": float(range_tids.size), "kth_bound": kth_score},
        )

    def top_k(self, predicate: Predicate, function, k: int) -> QueryResult:
        """Convenience wrapper."""
        return self.query(TopKQuery(predicate=predicate, function=function, k=k))
