"""Exception hierarchy for the ranking-cube library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class.  Errors carry enough context to be actionable —
the offending dimension name, page id, or query fragment.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A relation schema is inconsistent or a referenced column is unknown."""


class QueryError(ReproError):
    """A query references unknown dimensions or is otherwise malformed."""


class StorageError(ReproError):
    """Low-level storage failure (unknown page, corrupted node, ...)."""


class PageNotFoundError(StorageError):
    """A page id was requested that was never allocated or was freed."""

    def __init__(self, page_id: int) -> None:
        super().__init__(f"page {page_id} does not exist")
        self.page_id = page_id


class IndexError_(ReproError):
    """An index structure was used inconsistently (duplicate build, etc.)."""


class CubeError(ReproError):
    """Ranking-cube construction or lookup failure."""


class SignatureError(ReproError):
    """Signature encoding/decoding or assembly failure."""


class EncodingError(SignatureError):
    """A signature node could not be encoded or decoded."""


class MaintenanceError(ReproError):
    """Incremental maintenance was asked to do something impossible."""


class OptimizerError(ReproError):
    """The SPJR query optimizer could not produce a plan."""


class PlanningError(QueryError):
    """The engine planner found no registered backend able to serve a query."""


class ShardWorkerError(ReproError):
    """A shard's worker process failed (died, was killed, or misbehaved).

    Raised by the process-scatter layer instead of hanging on a dead
    pipe; the message names the shard and the worker's exit code so the
    failure is actionable.  The dead worker is discarded — the next
    scatter leg to that shard respawns a fresh one.
    """
