"""Exception hierarchy for the ranking-cube library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class.  Errors carry enough context to be actionable —
the offending dimension name, page id, or query fragment.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A relation schema is inconsistent or a referenced column is unknown."""


class QueryError(ReproError):
    """A query references unknown dimensions or is otherwise malformed."""


class StorageError(ReproError):
    """Low-level storage failure (unknown page, corrupted node, ...)."""


class PageNotFoundError(StorageError):
    """A page id was requested that was never allocated or was freed."""

    def __init__(self, page_id: int) -> None:
        super().__init__(f"page {page_id} does not exist")
        self.page_id = page_id


class IndexError_(ReproError):
    """An index structure was used inconsistently (duplicate build, etc.)."""


class CubeError(ReproError):
    """Ranking-cube construction or lookup failure."""


class SignatureError(ReproError):
    """Signature encoding/decoding or assembly failure."""


class EncodingError(SignatureError):
    """A signature node could not be encoded or decoded."""


class MaintenanceError(ReproError):
    """Incremental maintenance was asked to do something impossible."""


class OptimizerError(ReproError):
    """The SPJR query optimizer could not produce a plan."""


class PlanningError(QueryError):
    """The engine planner found no registered backend able to serve a query."""


class ShardWorkerError(ReproError):
    """A shard's scatter leg failed (worker died, hung, or misbehaved).

    Raised by the scatter layer instead of hanging on a dead or wedged
    pipe; the message names the shard (and exit code, for a death) so
    the failure is actionable.  The dead worker is discarded — the next
    scatter leg to that shard respawns a fresh one.

    ``shard_index`` names the failing shard (``None`` when unknown) and
    ``timed_out`` distinguishes a *hung* worker killed by the bounded
    pipe ``recv`` from a worker that died on its own — callers deciding
    whether to retry can treat a wedge differently from a crash.
    """

    def __init__(self, message: str, *, shard_index=None,
                 timed_out: bool = False) -> None:
        super().__init__(message)
        self.shard_index = shard_index
        self.timed_out = timed_out


class DeadlineExceededError(ReproError):
    """A per-request deadline elapsed while the query was executing.

    Raised by the scatter layer when the deadline riding a request
    expires between (or inside) scatter legs; the serving layer maps it
    to its own :class:`~repro.serve.errors.RequestTimeoutError`.
    """


class PartialBatchError(ReproError):
    """Some queries of an ``execute_many`` batch failed; the rest completed.

    Fused-batch failure containment: a scatter leg failing for one fused
    group fails only that group's queries, never the whole batch.
    ``results`` is aligned with the submitted batch (``None`` at failed
    positions) and ``errors`` maps each failed position to the exception
    that sank it, so callers — the serving layer's dispatcher above all —
    can resolve every query individually instead of stranding or failing
    the survivors.
    """

    def __init__(self, results, errors) -> None:
        failed = ", ".join(str(i) for i in sorted(errors))
        super().__init__(
            f"{len(errors)} of {len(results)} batch queries failed "
            f"(positions {failed}); the remaining results are attached")
        self.results = results
        self.errors = errors
