"""Chapter 5: merging hierarchical indexes for high ranking dimensions."""

from repro.indexmerge.bloom import BloomFilter
from repro.indexmerge.engine import (
    MODE_BASELINE,
    MODE_PROGRESSIVE,
    MODE_SELECTIVE,
    MODES,
    IndexMergeTopK,
)
from repro.indexmerge.expansion import (
    FullExpander,
    NeighborhoodExpander,
    StateExpander,
    ThresholdExpander,
    choose_expander,
)
from repro.indexmerge.join_signature import (
    JoinSignature,
    JoinSignatureSet,
    JoinSignatureStats,
)
from repro.indexmerge.state import JointState, MergeContext

__all__ = [
    "BloomFilter",
    "MODE_BASELINE",
    "MODE_PROGRESSIVE",
    "MODE_SELECTIVE",
    "MODES",
    "IndexMergeTopK",
    "FullExpander",
    "NeighborhoodExpander",
    "StateExpander",
    "ThresholdExpander",
    "choose_expander",
    "JoinSignature",
    "JoinSignatureSet",
    "JoinSignatureStats",
    "JointState",
    "MergeContext",
]
