"""Joint states over multiple hierarchical indexes (Section 5.1.1).

A *joint state* combines one node from each merged index.  The root state
joins the index roots; the children of a state are the Cartesian product of
the children of its non-leaf member nodes (leaf members stay put).  A leaf
state joins only leaf nodes and is where tuples are actually merged: a tuple
is *contained* by a leaf state when it appears in every member leaf.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import QueryError
from repro.functions.base import RankingFunction
from repro.geometry import Box
from repro.storage.hierindex import HierarchicalIndex, NodeHandle


@dataclass(frozen=True)
class JointState:
    """One joint state: a node handle per merged index."""

    nodes: Tuple[NodeHandle, ...]

    @property
    def is_leaf(self) -> bool:
        """True when every member node is a leaf (tuples can be merged here)."""
        return all(node.is_leaf for node in self.nodes)

    @property
    def key(self) -> Tuple[Tuple[int, ...], ...]:
        """Hashable identity: the member node paths (Section 5.3.1's key(S))."""
        return tuple(node.path for node in self.nodes)

    def box(self) -> Box:
        """Combined axis-aligned box over the union of the member dimensions."""
        combined = self.nodes[0].box
        for node in self.nodes[1:]:
            combined = combined.union_hull(node.box) if False else Box(
                {**{d: combined.interval(d) for d in combined.dims},
                 **{d: node.box.interval(d) for d in node.box.dims}})
        return combined

    def lower_bound(self, function: RankingFunction) -> float:
        """Lower bound of the ranking function over this state's region."""
        return function.lower_bound(self.box())

    def child_coordinates(self, child: "JointState") -> Tuple[int, ...]:
        """Per-index child positions of ``child`` relative to this state.

        A member node that did not branch (it was already a leaf) contributes
        the sentinel 0 — the same convention the join-signature uses.
        """
        coords: List[int] = []
        for parent_node, child_node in zip(self.nodes, child.nodes):
            if len(child_node.path) > len(parent_node.path):
                coords.append(child_node.path[-1])
            else:
                coords.append(0)
        return tuple(coords)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ",".join(str(node.path) for node in self.nodes)
        return f"JointState({parts})"


class MergeContext:
    """Shared plumbing for the index-merge algorithms.

    Holds the merged indexes, answers child-listing and leaf-merging
    requests (charging I/O through each index's buffer pool), and tracks the
    mapping from ranking-function dimensions to indexes.
    """

    def __init__(self, indexes: Sequence[HierarchicalIndex],
                 function: RankingFunction) -> None:
        if not indexes:
            raise QueryError("index merge requires at least one index")
        self.indexes: Tuple[HierarchicalIndex, ...] = tuple(indexes)
        self.function = function
        covered = set()
        for index in self.indexes:
            covered.update(index.dims)
        missing = [d for d in function.dims if d not in covered]
        if missing:
            raise QueryError(
                f"ranking dimensions {missing} are not covered by the merged indexes")
        self.states_generated = 0

    def root_state(self) -> JointState:
        """The joint root state."""
        return JointState(tuple(index.root() for index in self.indexes))

    def member_children(self, state: JointState, position: int) -> List[NodeHandle]:
        """Children of one member node (a leaf member yields itself)."""
        node = state.nodes[position]
        if node.is_leaf:
            return [node]
        return self.indexes[position].children(node)

    def all_member_children(self, state: JointState) -> List[List[NodeHandle]]:
        """Children of every member node, in index order."""
        return [self.member_children(state, i) for i in range(len(self.indexes))]

    def count_states(self, how_many: int = 1) -> None:
        """Record that ``how_many`` candidate states were generated."""
        self.states_generated += how_many

    def merge_leaf_state(self, state: JointState) -> Dict[int, Dict[str, float]]:
        """Tuples contained by a leaf state: ``{tid: {dim: value}}``.

        A tuple qualifies only if it appears in every member leaf; its merged
        values combine the per-index leaf entries.
        """
        if not state.is_leaf:
            raise QueryError("only leaf states can be merged")
        merged: Optional[Dict[int, Dict[str, float]]] = None
        for index, node in zip(self.indexes, state.nodes):
            entries = index.leaf_entries(node)
            local = {
                entry.tid: dict(zip(index.dims, entry.values)) for entry in entries
            }
            if merged is None:
                merged = local
            else:
                merged = {
                    tid: {**merged[tid], **values}
                    for tid, values in local.items()
                    if tid in merged
                }
            if not merged:
                return {}
        return merged or {}

    def score(self, values: Dict[str, float]) -> float:
        """Evaluate the ranking function on merged tuple values."""
        return self.function.evaluate([values[d] for d in self.function.dims])

    def total_physical_reads(self) -> int:
        """Physical page reads accumulated by every merged index."""
        total = 0
        for index in self.indexes:
            pager = getattr(index, "pager", None)
            if pager is not None:
                total += pager.stats.physical_reads
        return total
