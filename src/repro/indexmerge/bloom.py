"""A small Bloom filter for compressed state-signatures (Section 5.3.1).

When a joint state has more child combinations than fit in a page, its
state-signature is stored as a Bloom filter over the non-empty child
coordinates: membership tests may return false positives (a pruned-state
opportunity missed) but never false negatives (a non-empty child is never
pruned), which is exactly the guarantee the selective-merge algorithm needs.
"""

from __future__ import annotations

import hashlib
import math
from typing import Hashable, Iterable, List


class BloomFilter:
    """Fixed-size Bloom filter with ``k`` double-hashing probes."""

    def __init__(self, num_bits: int, num_hashes: int) -> None:
        if num_bits <= 0:
            raise ValueError("num_bits must be positive")
        if num_hashes <= 0:
            raise ValueError("num_hashes must be positive")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._bits = bytearray(-(-num_bits // 8))
        self.count = 0

    @classmethod
    def sized_for(cls, expected_items: int, max_bits: int,
                  max_hashes: int = 8) -> "BloomFilter":
        """Filter sized by the thesis' rule ``b = min(P, k_max * n_e / ln 2)``."""
        expected_items = max(1, expected_items)
        ideal_bits = int(max_hashes * expected_items / math.log(2)) + 1
        num_bits = max(8, min(max_bits, ideal_bits))
        num_hashes = max(1, min(max_hashes, int(round(num_bits / expected_items * math.log(2)))))
        return cls(num_bits, num_hashes)

    def _probes(self, item: Hashable) -> List[int]:
        digest = hashlib.blake2b(repr(item).encode("utf-8"), digest_size=16).digest()
        h1 = int.from_bytes(digest[:8], "little")
        h2 = int.from_bytes(digest[8:], "little") | 1
        return [(h1 + i * h2) % self.num_bits for i in range(self.num_hashes)]

    def add(self, item: Hashable) -> None:
        """Insert one item."""
        for probe in self._probes(item):
            self._bits[probe // 8] |= 1 << (probe % 8)
        self.count += 1

    def update(self, items: Iterable[Hashable]) -> None:
        """Insert many items."""
        for item in items:
            self.add(item)

    def __contains__(self, item: Hashable) -> bool:
        return all(
            self._bits[probe // 8] & (1 << (probe % 8)) for probe in self._probes(item)
        )

    def size_in_bits(self) -> int:
        """Size of the bit array."""
        return self.num_bits

    def false_positive_rate(self) -> float:
        """Expected false-positive probability at the current fill level."""
        if self.count == 0:
            return 0.0
        exponent = -self.num_hashes * self.count / self.num_bits
        return (1.0 - math.exp(exponent)) ** self.num_hashes
