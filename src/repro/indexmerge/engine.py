"""Index-merge query processing (Algorithms 4 and 5).

Three configurations, matching the evaluation of Section 5.4:

* ``BL`` — the basic index-merge of Algorithm 4: a single global heap, full
  expansion of each examined state.
* ``PE`` — progressive expansion with the double-heap Algorithm 5: each
  examined state hands out its children one at a time through a local
  expander (threshold or neighborhood expansion).
* ``PE+SIG`` — progressive expansion plus join-signature pruning of empty
  states (selective merge, Section 5.3).
"""

from __future__ import annotations

import heapq
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cube.query import TopKAccumulator
from repro.functions.base import RankingFunction
from repro.indexmerge.expansion import StateExpander, choose_expander
from repro.indexmerge.join_signature import JoinSignatureSet
from repro.indexmerge.state import JointState, MergeContext
from repro.query import QueryResult
from repro.storage.hierindex import HierarchicalIndex

#: Valid execution modes.
MODE_BASELINE = "BL"
MODE_PROGRESSIVE = "PE"
MODE_SELECTIVE = "PE+SIG"
MODES = (MODE_BASELINE, MODE_PROGRESSIVE, MODE_SELECTIVE)


class IndexMergeTopK:
    """Top-k over the joint state space of several hierarchical indexes."""

    def __init__(self, indexes: Sequence[HierarchicalIndex],
                 mode: str = MODE_SELECTIVE,
                 join_signatures: Optional[JoinSignatureSet] = None) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        if mode == MODE_SELECTIVE and join_signatures is None:
            raise ValueError("PE+SIG mode requires join signatures")
        self.indexes = tuple(indexes)
        self.mode = mode
        self.join_signatures = join_signatures

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------
    def query(self, function: RankingFunction, k: int) -> QueryResult:
        """Find the k tuples minimizing ``function`` across the merged indexes."""
        start = time.perf_counter()
        context = MergeContext(self.indexes, function)
        io_before = context.total_physical_reads()
        sig_io_before = (self.join_signatures.total_physical_reads()
                         if self.join_signatures else 0)

        pruner = None
        if self.mode == MODE_SELECTIVE and self.join_signatures is not None:
            signatures = self.join_signatures

            def pruner(parent: JointState, child: JointState) -> bool:
                coordinate = parent.child_coordinates(child)
                return signatures.child_is_nonempty(parent.key, coordinate)

        progressive = self.mode != MODE_BASELINE
        topk = TopKAccumulator(k)
        retrieved_leaves: set = set()
        counter = 0
        peak_heap = 0
        examined = 0

        root = context.root_state()
        context.count_states()
        # Global heap entries: (bound, counter, state, expander or None).
        g_heap: List[Tuple[float, int, JointState, Optional[StateExpander]]] = [
            (root.lower_bound(function), counter, root, None)]

        while g_heap:
            local_pending = sum(
                entry[3].pending for entry in g_heap if entry[3] is not None)
            peak_heap = max(peak_heap, len(g_heap) + local_pending)
            bound, _, state, expander = heapq.heappop(g_heap)
            # Strict halt: a state whose bound ties the k-th score may still
            # yield a tied tuple with a smaller tid, which the canonical
            # (score, tid) order must admit.
            if topk.is_full() and topk.kth_score < bound:
                break

            if state.is_leaf:
                if state.key in retrieved_leaves:
                    continue
                retrieved_leaves.add(state.key)
                examined += 1
                for tid, values in context.merge_leaf_state(state).items():
                    topk.offer(tid, context.score(values))
                continue

            if expander is None:
                if (self.mode == MODE_SELECTIVE and self.join_signatures is not None
                        and not self.join_signatures.state_is_known(state.key)):
                    # The state slipped through a Bloom-filter false positive:
                    # it is actually empty, so drop it without expanding.
                    continue
                examined += 1
                expander = choose_expander(context, state, pruner=pruner,
                                           progressive=progressive)

            child = expander.get_next()
            if child is not None:
                counter += 1
                heapq.heappush(
                    g_heap, (child.lower_bound(function), counter, child, None))
            next_bound = expander.peek_bound()
            if next_bound is not None:
                counter += 1
                heapq.heappush(g_heap, (next_bound, counter, state, expander))

        elapsed = time.perf_counter() - start
        disk = context.total_physical_reads() - io_before
        sig_io = ((self.join_signatures.total_physical_reads() - sig_io_before)
                  if self.join_signatures else 0)
        ranked = topk.ranked()
        return QueryResult(
            tids=tuple(tid for tid, _ in ranked),
            scores=tuple(score for _, score in ranked),
            disk_accesses=disk + sig_io,
            states_generated=context.states_generated,
            peak_heap_size=peak_heap,
            tuples_evaluated=examined,
            elapsed_seconds=elapsed,
            extra={"index_accesses": float(disk), "signature_accesses": float(sig_io),
                   "states_examined": float(examined)},
        )

    def top_k(self, function: RankingFunction, k: int) -> QueryResult:
        """Alias of :meth:`query`."""
        return self.query(function, k)
