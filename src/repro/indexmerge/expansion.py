"""Progressive child-state generation: ``S.get_next`` (Section 5.2).

Fully expanding a joint state materializes up to ``prod(fanout_i)`` child
states, most of which are never examined.  The expanders below generate
child states one at a time, best-first:

* :class:`ThresholdExpander` — the general strategy (Section 5.2.3): the
  child entries of every member node are sorted by their individual best
  contribution ``f'``, and a sort-merge style frontier generates Cartesian
  products lazily until the next best child is provably found.
* :class:`NeighborhoodExpander` — for monotone / semi-monotone functions
  over totally ordered (B+-tree) indexes (Section 5.2.2): children start at
  the per-index entries closest to the function's minimizer and expand to
  +1 neighbors, with a visited set to suppress duplicates.

Both honour an optional empty-state pruner (the join-signature) so that
pruned children are never emitted.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Sequence, Set, Tuple

from repro.functions.base import FunctionShape
from repro.indexmerge.state import JointState, MergeContext
from repro.storage.btree import BPlusTree
from repro.storage.hierindex import NodeHandle

#: Callable deciding whether a child (parent key, coordinate) may be non-empty.
EmptyStatePruner = Callable[[JointState, JointState], bool]


class StateExpander:
    """Base class: iterate a state's children in non-decreasing bound order."""

    def __init__(self, context: MergeContext, parent: JointState,
                 pruner: Optional[EmptyStatePruner] = None) -> None:
        self.context = context
        self.parent = parent
        self.pruner = pruner
        self._local_heap: List[Tuple[float, int, JointState]] = []
        self._counter = 0

    # -- subclass hooks -----------------------------------------------
    def _refill(self, required_bound: Optional[float]) -> None:
        """Generate more candidates into the local heap (subclass specific)."""
        raise NotImplementedError

    # -- shared plumbing -------------------------------------------------
    def _push(self, state: JointState) -> None:
        if self.pruner is not None and not self.pruner(self.parent, state):
            return
        self._counter += 1
        self.context.count_states()
        heapq.heappush(self._local_heap,
                       (state.lower_bound(self.context.function), self._counter, state))

    def peek_bound(self) -> Optional[float]:
        """Bound of the next child that :meth:`get_next` would return."""
        self._refill(None)
        if not self._local_heap:
            return None
        return self._local_heap[0][0]

    def get_next(self) -> Optional[JointState]:
        """The next best unreturned child state, or None when exhausted."""
        self._refill(None)
        if not self._local_heap:
            return None
        _, _, state = heapq.heappop(self._local_heap)
        return state

    @property
    def pending(self) -> int:
        """Number of generated-but-unreturned child states."""
        return len(self._local_heap)


class FullExpander(StateExpander):
    """Eagerly generates every child state (the baseline of Algorithm 4)."""

    def __init__(self, context: MergeContext, parent: JointState,
                 pruner: Optional[EmptyStatePruner] = None) -> None:
        super().__init__(context, parent, pruner)
        self._done = False

    def _refill(self, required_bound: Optional[float]) -> None:
        if self._done:
            return
        self._done = True
        children_lists = self.context.all_member_children(self.parent)
        for combo in itertools.product(*children_lists):
            self._push(JointState(tuple(combo)))


class ThresholdExpander(StateExpander):
    """Sort-merge (threshold) progressive expansion (Section 5.2.3)."""

    def __init__(self, context: MergeContext, parent: JointState,
                 pruner: Optional[EmptyStatePruner] = None) -> None:
        super().__init__(context, parent, pruner)
        self._children: Optional[List[List[NodeHandle]]] = None
        self._sorted_bounds: List[List[float]] = []
        self._positions: List[int] = []
        self._exhausted = False

    def _load_children(self) -> None:
        if self._children is not None:
            return
        raw = self.context.all_member_children(self.parent)
        self._children = []
        for member_index, entries in enumerate(raw):
            scored = []
            for entry in entries:
                bound = self._member_bound(member_index, entry)
                scored.append((bound, entry))
            scored.sort(key=lambda pair: pair[0])
            self._children.append([entry for _, entry in scored])
            self._sorted_bounds.append([bound for bound, _ in scored])
        # Seed with the state joining every member's best entry.
        seed = JointState(tuple(entries[0] for entries in self._children))
        self._push(seed)
        self._positions = [1 if len(entries) > 1 else len(entries)
                           for entries in self._children]

    def _member_bound(self, member_index: int, entry: NodeHandle) -> float:
        """``f'(e)``: the bound with one member node replaced by ``entry``."""
        nodes = list(self.parent.nodes)
        nodes[member_index] = entry
        return JointState(tuple(nodes)).lower_bound(self.context.function)

    def _threshold(self) -> float:
        best = float("inf")
        for bounds, position in zip(self._sorted_bounds, self._positions):
            if position < len(bounds):
                best = min(best, bounds[position])
        return best

    def _refill(self, required_bound: Optional[float]) -> None:
        self._load_children()
        while not self._exhausted:
            top = self._local_heap[0][0] if self._local_heap else float("inf")
            threshold = self._threshold()
            if top <= threshold:
                return
            # Advance the member whose next entry has the smallest f'.
            advance = -1
            best = float("inf")
            for i, (bounds, position) in enumerate(zip(self._sorted_bounds, self._positions)):
                if position < len(bounds) and bounds[position] < best:
                    best = bounds[position]
                    advance = i
            if advance < 0:
                self._exhausted = True
                return
            position = self._positions[advance]
            prefix_lists = [
                entries[: self._positions[i]] if i != advance else [entries[position]]
                for i, entries in enumerate(self._children)
            ]
            for combo in itertools.product(*prefix_lists):
                self._push(JointState(tuple(combo)))
            self._positions[advance] += 1


class NeighborhoodExpander(StateExpander):
    """Neighborhood expansion for (semi-)monotone functions over B+-trees."""

    def __init__(self, context: MergeContext, parent: JointState,
                 pruner: Optional[EmptyStatePruner] = None) -> None:
        super().__init__(context, parent, pruner)
        self._children: Optional[List[List[NodeHandle]]] = None
        self._visited: Set[Tuple[int, ...]] = set()
        self._frontier: List[Tuple[float, Tuple[int, ...]]] = []

    def _load_children(self) -> None:
        if self._children is not None:
            return
        raw = self.context.all_member_children(self.parent)
        self._children = []
        for member_index, entries in enumerate(raw):
            scored = []
            for entry in entries:
                nodes = list(self.parent.nodes)
                nodes[member_index] = entry
                scored.append(
                    (JointState(tuple(nodes)).lower_bound(self.context.function), entry))
            scored.sort(key=lambda pair: pair[0])
            self._children.append([entry for _, entry in scored])
        start = tuple(0 for _ in self._children)
        self._enqueue(start)

    def _state_at(self, coords: Tuple[int, ...]) -> JointState:
        return JointState(tuple(
            entries[coord] for entries, coord in zip(self._children, coords)))

    def _enqueue(self, coords: Tuple[int, ...]) -> None:
        if coords in self._visited:
            return
        self._visited.add(coords)
        state = self._state_at(coords)
        self._push(state)
        heapq.heappush(
            self._frontier,
            (state.lower_bound(self.context.function), coords))

    def _refill(self, required_bound: Optional[float]) -> None:
        self._load_children()
        # Expand coordinate neighbors until the local heap's best is at least
        # as good as the best unexpanded frontier coordinate.
        while self._frontier:
            frontier_bound, coords = self._frontier[0]
            heap_bound = self._local_heap[0][0] if self._local_heap else float("inf")
            if self._local_heap and heap_bound <= frontier_bound and required_bound is None:
                return
            heapq.heappop(self._frontier)
            for axis in range(len(coords)):
                if coords[axis] + 1 < len(self._children[axis]):
                    neighbor = list(coords)
                    neighbor[axis] += 1
                    self._enqueue(tuple(neighbor))


def choose_expander(context: MergeContext, parent: JointState,
                    pruner: Optional[EmptyStatePruner] = None,
                    progressive: bool = True) -> StateExpander:
    """Pick the expansion strategy for one state.

    The baseline (``progressive=False``) always fully expands.  Progressive
    mode uses neighborhood expansion for (semi-)monotone functions merged
    over B+-trees (where child entries are totally ordered) and threshold
    expansion everywhere else.
    """
    if not progressive:
        return FullExpander(context, parent, pruner)
    shape = context.function.shape
    all_btrees = all(isinstance(index, BPlusTree) for index in context.indexes)
    if all_btrees and shape in (FunctionShape.MONOTONE, FunctionShape.SEMI_MONOTONE):
        return NeighborhoodExpander(context, parent, pruner)
    return ThresholdExpander(context, parent, pruner)
