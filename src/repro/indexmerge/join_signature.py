"""Join-signatures: pruning empty joint states (Section 5.3).

For every non-leaf, non-empty joint state the join-signature records which
child coordinate combinations are non-empty.  State-signatures are stored as
pages (explicit coordinate sets for small states, Bloom filters for large
ones) and loaded on demand during query processing, each load counting one
disk access.  For merges of more than two indexes, a set of low-dimensional
(pairwise) join-signatures can substitute for the full one: a child state is
empty as soon as any pairwise signature says its projection is empty.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import SignatureError
from repro.indexmerge.bloom import BloomFilter
from repro.storage.buffer import BufferPool
from repro.storage.hierindex import HierarchicalIndex
from repro.storage.pager import Pager

StateKey = Tuple[Tuple[int, ...], ...]
Coordinate = Tuple[int, ...]

#: Explicit coordinate sets larger than this are stored as Bloom filters.
_BLOOM_THRESHOLD = 2048


@dataclass
class JoinSignatureStats:
    """Construction statistics (Figures 5.21–5.22)."""

    build_seconds: float = 0.0
    num_states: int = 0
    size_bytes: int = 0


class JoinSignature:
    """The join-signature of one specific combination of indexes."""

    def __init__(self, indexes: Sequence[HierarchicalIndex],
                 pager: Optional[Pager] = None, buffer_capacity: int = 512,
                 use_bloom: bool = True) -> None:
        if len(indexes) < 2:
            raise SignatureError("a join-signature needs at least two indexes")
        self.indexes: Tuple[HierarchicalIndex, ...] = tuple(indexes)
        self.pager = pager or Pager()
        self.buffer = BufferPool(self.pager, capacity=buffer_capacity)
        self.use_bloom = use_bloom
        self.stats = JoinSignatureStats()
        self._pages: Dict[StateKey, int] = {}
        self._build()

    # ------------------------------------------------------------------
    # construction (Section 5.3.2): tuple-oriented recursive grouping
    # ------------------------------------------------------------------
    def _build(self) -> None:
        start = time.perf_counter()
        per_index_paths: List[Dict[int, Tuple[int, ...]]] = [
            dict(index.iter_leaf_paths()) for index in self.indexes
        ]
        common_tids = set(per_index_paths[0])
        for paths in per_index_paths[1:]:
            common_tids &= set(paths)

        signatures: Dict[StateKey, Set[Coordinate]] = {}
        max_depth = max(
            (len(paths[tid]) for paths in per_index_paths for tid in paths), default=0)
        for tid in common_tids:
            paths = [per_index_paths[i][tid] for i in range(len(self.indexes))]
            for level in range(max_depth):
                if all(level >= len(path) for path in paths):
                    break
                parent_key = tuple(path[:min(level, len(path))] for path in paths)
                coordinate = tuple(
                    path[level] if level < len(path) else 0 for path in paths)
                signatures.setdefault(parent_key, set()).add(coordinate)

        total_bytes = 0
        for key, coords in signatures.items():
            if self.use_bloom and len(coords) > _BLOOM_THRESHOLD:
                bloom = BloomFilter.sized_for(len(coords),
                                              max_bits=self.pager.page_size * 8)
                bloom.update(coords)
                payload = {"kind": "bloom", "filter": bloom}
                total_bytes += bloom.size_in_bits() // 8
            else:
                payload = {"kind": "set", "coords": frozenset(coords)}
                total_bytes += len(coords) * 2 * len(self.indexes)
            self._pages[key] = self.pager.allocate(payload)

        self.stats.build_seconds = time.perf_counter() - start
        self.stats.num_states = len(signatures)
        self.stats.size_bytes = total_bytes

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def has_state(self, key: StateKey) -> bool:
        """Whether a non-leaf state is known to be non-empty (no I/O)."""
        return key in self._pages

    def child_is_nonempty(self, parent_key: StateKey, coordinate: Coordinate) -> bool:
        """Whether the child at ``coordinate`` of ``parent_key`` may be non-empty.

        Loads the parent's state-signature page (one counted access, served
        by the buffer pool afterwards).  An unknown parent means the parent
        itself is empty, so every child is.
        """
        page_id = self._pages.get(parent_key)
        if page_id is None:
            return False
        payload = self.buffer.read(page_id)
        if payload["kind"] == "set":
            return coordinate in payload["coords"]
        return coordinate in payload["filter"]

    def size_in_bytes(self) -> int:
        """Materialized size of the join-signature."""
        return self.stats.size_bytes

    def num_states(self) -> int:
        """Number of stored state-signatures."""
        return self.stats.num_states


class JoinSignatureSet:
    """Prunes child states using one full or several low-dimensional signatures.

    ``signatures`` maps a tuple of index positions (e.g. ``(0, 1)``) to the
    :class:`JoinSignature` built over exactly those indexes.  The full
    m-way signature uses positions ``(0, 1, ..., m-1)``.
    """

    def __init__(self, signatures: Dict[Tuple[int, ...], JoinSignature]) -> None:
        if not signatures:
            raise SignatureError("at least one join-signature is required")
        self.signatures = dict(signatures)

    @classmethod
    def full(cls, indexes: Sequence[HierarchicalIndex], **kwargs) -> "JoinSignatureSet":
        """One m-way join-signature over every index."""
        positions = tuple(range(len(indexes)))
        return cls({positions: JoinSignature(indexes, **kwargs)})

    @classmethod
    def pairwise(cls, indexes: Sequence[HierarchicalIndex], **kwargs) -> "JoinSignatureSet":
        """All 2-way join-signatures (the low-dimensional substitute)."""
        signatures = {}
        for a, b in itertools.combinations(range(len(indexes)), 2):
            signatures[(a, b)] = JoinSignature([indexes[a], indexes[b]], **kwargs)
        return cls(signatures)

    def child_is_nonempty(self, parent_key: StateKey, coordinate: Coordinate) -> bool:
        """A child survives only if every member signature says it might."""
        for positions, signature in self.signatures.items():
            projected_key = tuple(parent_key[i] for i in positions)
            projected_coord = tuple(coordinate[i] for i in positions)
            if not signature.child_is_nonempty(projected_key, projected_coord):
                return False
        return True

    def state_is_known(self, key: StateKey) -> bool:
        """Whether a non-leaf state appears in every member signature."""
        for positions, signature in self.signatures.items():
            if not signature.has_state(tuple(key[i] for i in positions)):
                return False
        return True

    def total_physical_reads(self) -> int:
        """Page reads charged to signature loading."""
        return sum(s.pager.stats.physical_reads for s in self.signatures.values())

    def size_in_bytes(self) -> int:
        """Combined materialized size."""
        return sum(s.size_in_bytes() for s in self.signatures.values())

    def build_seconds(self) -> float:
        """Combined construction time."""
        return sum(s.stats.build_seconds for s in self.signatures.values())
