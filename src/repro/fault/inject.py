"""Deterministic fault injection: seeded chaos with named points.

Failure-handling code that is only exercised by real outages is
unverified code.  :class:`FaultInjector` makes worker crashes, hung
pipes, slow legs, and corrupted replies *reproducible*: a seeded RNG
decides, per named injection point, whether the fault fires, so a chaos
test (or ``--chaos SEED`` on the CLI) replays the exact same failure
sequence every run — and the parity suite can assert that answers stay
bit-identical to the oracle *through* the injected faults.

Injection points (see :data:`INJECTION_POINTS`):

``worker.crash.pre``
    The worker dies before the leg runs (process mode: the parent kills
    the worker process; thread mode: the leg raises
    :class:`InjectedFaultError` before executing).
``worker.crash.post``
    The worker dies after computing the leg but before the parent
    consumes the reply — the reply is lost, the retried leg recomputes.
``pipe.hang``
    The worker wedges (process mode: it sleeps ``hang_seconds`` instead
    of serving the request) so only the bounded pipe ``recv`` can
    surface it.
``reply.corrupt``
    The reply arrives mangled; the parent must detect, discard, and
    tear the worker down (its stream can no longer be trusted).
``leg.delay``
    The leg is slowed by ``delay_seconds`` — latency, not failure.

``max_faults`` caps the *total* faults injected, so a chaos run with
retries enabled provably converges: once the cap is spent every leg
succeeds.  Decisions and counts are lock-protected — parallel legs
consult one injector — which also pins the decision *sequence* (and
with it determinism) to the order legs interrogate the injector.
"""

from __future__ import annotations

import random
import threading
from typing import Dict, Mapping, Optional

from repro.errors import ShardWorkerError

#: Every named injection point, in documentation order.
INJECTION_POINTS = (
    "worker.crash.pre",
    "worker.crash.post",
    "pipe.hang",
    "reply.corrupt",
    "leg.delay",
)


class InjectedFaultError(ShardWorkerError):
    """A fault the injector planted in a thread-mode scatter leg.

    A subclass of :class:`~repro.errors.ShardWorkerError` so the retry
    and breaker machinery treats an injected crash exactly like a real
    worker death — chaos tests exercise the production recovery path,
    not a parallel one.
    """

    def __init__(self, point: str, shard_index=None) -> None:
        super().__init__(
            f"injected fault {point!r}"
            + (f" on shard {shard_index}" if shard_index is not None else ""),
            shard_index=shard_index)
        self.point = point


class FaultInjector:
    """Seeded, rate-driven decisions for the named injection points.

    Parameters
    ----------
    seed:
        Seed of the decision RNG — same seed, same fault sequence.
    rates:
        Per-point firing probability in ``[0, 1]``; unnamed points never
        fire.  Unknown point names are rejected loudly (a typo would
        otherwise silently disable the chaos).
    max_faults:
        Total faults this injector may plant (``None``: unlimited).
        Chaos-with-retries tests set it so recovery provably converges.
    delay_seconds:
        Sleep length of a fired ``leg.delay``.
    hang_seconds:
        How long a fired ``pipe.hang`` wedges the worker — choose it
        well above the recv timeout under test so detection, not the
        nap ending, is what unwedges the scatter.
    """

    def __init__(self, seed: int, rates: Mapping[str, float],
                 max_faults: Optional[int] = None,
                 delay_seconds: float = 0.001,
                 hang_seconds: float = 30.0) -> None:
        unknown = set(rates) - set(INJECTION_POINTS)
        if unknown:
            raise ValueError(
                f"unknown injection point(s) {sorted(unknown)}; "
                f"valid points: {list(INJECTION_POINTS)}")
        for point, rate in rates.items():
            if not 0.0 <= float(rate) <= 1.0:
                raise ValueError(
                    f"rate for {point!r} must be in [0, 1], got {rate}")
        if max_faults is not None and max_faults < 0:
            raise ValueError(f"max_faults must be >= 0, got {max_faults}")
        self.seed = int(seed)
        self.rates: Dict[str, float] = {point: float(rate)
                                        for point, rate in rates.items()}
        self.max_faults = max_faults
        self.delay_seconds = float(delay_seconds)
        self.hang_seconds = float(hang_seconds)
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()
        #: Faults actually planted, per point — chaos tests assert the
        #: injections really happened (a vacuous pass proves nothing).
        self.fired: Dict[str, int] = {point: 0 for point in INJECTION_POINTS}

    def fires(self, point: str) -> bool:
        """Whether ``point`` fires now.  One RNG draw per rated consult."""
        if point not in INJECTION_POINTS:
            raise ValueError(f"unknown injection point {point!r}")
        rate = self.rates.get(point, 0.0)
        with self._lock:
            if rate <= 0.0:
                return False
            if (self.max_faults is not None
                    and self.total_fired >= self.max_faults):
                return False
            if self._rng.random() >= rate:
                return False
            self.fired[point] += 1
            return True

    @property
    def total_fired(self) -> int:
        """Faults planted so far, across every point."""
        return sum(self.fired.values())
