"""Leg retries: exponential backoff with full jitter under a budget.

A failed scatter leg (worker death, injected fault, hung pipe) is
usually transient — the scatter layer respawns the worker and the same
deterministic leg recomputes the same answer.  :class:`RetryPolicy`
bounds how hard that recovery tries:

* **attempts** — at most ``max_attempts`` runs of one leg;
* **backoff** — the ``n``-th retry sleeps a uniformly random slice of
  ``min(cap_delay, base_delay * 2**(n-1))`` ("full jitter": retries from
  concurrent legs decorrelate instead of stampeding the respawned
  worker together);
* **budget** — at most ``budget`` seconds of total backoff sleep per
  front-door call, so a scatter over many flapping shards cannot
  multiply per-leg patience into an unbounded stall.

The policy is a frozen value object; the scatter layer owns the mutable
pieces (a seeded ``random.Random`` for jitter, a per-call
:class:`RetryBudget`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RetryPolicy:
    """How (and how much) to retry a failed scatter leg.

    Parameters
    ----------
    max_attempts:
        Total runs of one leg, the first included (``1`` disables
        retries while keeping the breaker/degradation machinery).
    base_delay:
        First retry's maximum backoff, in seconds.
    cap_delay:
        Ceiling of the exponential backoff curve.
    budget:
        Total backoff sleep allowed per front-door call across all its
        legs, in seconds; ``None`` means unbudgeted.
    jitter_seed:
        Seed of the jitter RNG the executor builds for this policy
        (``None``: seeded from the OS — production; tests pin it).
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    cap_delay: float = 2.0
    budget: Optional[float] = 10.0
    jitter_seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.cap_delay < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.cap_delay < self.base_delay:
            raise ValueError(
                f"cap_delay {self.cap_delay} below base_delay "
                f"{self.base_delay}")
        if self.budget is not None and self.budget < 0:
            raise ValueError(f"budget must be >= 0 or None, got {self.budget}")

    def backoff_ceiling(self, attempt: int) -> float:
        """The deterministic ceiling the ``attempt``-th retry jitters under.

        ``attempt`` counts completed runs: after the first failure
        (``attempt=1``) the ceiling is ``base_delay``, doubling per
        retry up to ``cap_delay``.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        # Cap the exponent before shifting so huge attempt counts cannot
        # overflow into an enormous intermediate float.
        exponent = min(attempt - 1, 62)
        return min(self.cap_delay, self.base_delay * (2.0 ** exponent))

    def backoff(self, attempt: int, rng) -> float:
        """One full-jitter backoff: uniform in ``[0, ceiling(attempt)]``."""
        return rng.uniform(0.0, self.backoff_ceiling(attempt))

    def new_budget(self) -> "RetryBudget":
        """A fresh per-call budget under this policy."""
        return RetryBudget(self.budget)


class RetryBudget:
    """Thread-safe spend tracker for one front-door call's backoff sleeps.

    Parallel legs of one scatter share the budget, so acquisition must
    be atomic: :meth:`consume` either reserves the whole requested sleep
    or refuses (a partial sleep would still burn wall clock without
    buying the full backoff).
    """

    __slots__ = ("_remaining", "_spent", "_lock")

    def __init__(self, budget: Optional[float]) -> None:
        self._remaining = None if budget is None else float(budget)
        self._spent = 0.0
        self._lock = threading.Lock()

    def consume(self, seconds: float) -> bool:
        """Reserve ``seconds`` of backoff; ``False`` when the budget is dry."""
        with self._lock:
            if self._remaining is not None:
                if seconds > self._remaining:
                    return False
                self._remaining -= seconds
            self._spent += seconds
            return True

    @property
    def spent(self) -> float:
        """Total seconds of backoff reserved so far."""
        return self._spent

    @property
    def remaining(self) -> Optional[float]:
        """Seconds of backoff left (``None``: unbudgeted)."""
        return self._remaining
