"""Fault tolerance: deadlines, retries, circuit breakers, chaos injection.

The scatter/serve stack assumes shards answer; this package is what
happens when one does not.  Four orthogonal pieces, composed by the
scatter layer (:class:`~repro.shard.scatter.ScatterGatherExecutor` and
its process subclass) and the serving front door:

* :class:`~repro.fault.deadline.Deadline` — a per-request absolute
  deadline that rides into every scatter leg; thread legs check it
  between shards, process legs convert it into a bounded pipe ``recv``
  so a *hung* worker is killed and respawned instead of blocking;
* :class:`~repro.fault.retry.RetryPolicy` — exponential backoff with
  full jitter and a per-call :class:`~repro.fault.retry.RetryBudget`,
  re-running legs that failed with
  :class:`~repro.errors.ShardWorkerError` against the respawned worker;
* :class:`~repro.fault.breaker.CircuitBreaker` (per shard, configured
  by :class:`~repro.fault.breaker.BreakerPolicy`) — N consecutive leg
  failures open the breaker: fail-fast
  :class:`~repro.fault.breaker.BreakerOpenError` (or degrade-away under
  ``allow_partial``) until a half-open probe closes it again;
* :class:`~repro.fault.inject.FaultInjector` — seeded, named-point
  chaos (worker crash pre/post leg, hung pipe, reply corruption, leg
  delay) so every recovery path above is deterministically testable.

See ``docs/fault_tolerance.md`` for the failure model and the degraded
result contract (``extra["degraded"]`` / ``extra["shards_failed"]`` /
``extra["completeness"]``).
"""

from repro.errors import DeadlineExceededError, PartialBatchError
from repro.fault.breaker import (
    BreakerOpenError,
    BreakerPolicy,
    CircuitBreaker,
)
from repro.fault.deadline import Deadline
from repro.fault.inject import INJECTION_POINTS, FaultInjector, InjectedFaultError
from repro.fault.retry import RetryBudget, RetryPolicy

__all__ = [
    "BreakerOpenError",
    "BreakerPolicy",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceededError",
    "FaultInjector",
    "INJECTION_POINTS",
    "InjectedFaultError",
    "PartialBatchError",
    "RetryBudget",
    "RetryPolicy",
]
