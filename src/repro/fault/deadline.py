"""Per-request deadlines that ride into every scatter leg.

A :class:`Deadline` is an absolute point on an injectable monotonic
clock.  The serving layer mints one per admitted request (from the
request timeout), the scatter layer checks it between sequential legs,
and the process-scatter layer converts :meth:`remaining` into a bounded
pipe ``recv`` timeout — so a *hung* worker is detected and killed within
the deadline instead of blocking a scatter thread forever.

Deadlines are values, not ambient state: they are passed explicitly
(``engine.execute(query, deadline=...)``) because scatter legs hop
threads and processes where context variables do not follow.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.errors import DeadlineExceededError


class Deadline:
    """An absolute monotonic deadline with an injectable clock.

    Parameters
    ----------
    at:
        Absolute expiry on ``clock``'s timebase.
    clock:
        Monotonic time source (injected by tests; the serving layer
        passes its own so queue-wait accounting and deadline checks
        share one timebase).
    """

    __slots__ = ("at", "clock")

    def __init__(self, at: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.at = float(at)
        self.clock = clock

    @classmethod
    def after(cls, seconds: float,
              clock: Callable[[], float] = time.monotonic) -> "Deadline":
        """A deadline ``seconds`` from now on ``clock``."""
        if seconds < 0:
            raise ValueError(f"deadline seconds must be >= 0, got {seconds}")
        return cls(clock() + float(seconds), clock)

    def remaining(self) -> float:
        """Seconds left before expiry, clamped at 0."""
        return max(0.0, self.at - self.clock())

    def expired(self) -> bool:
        """Whether the deadline has passed."""
        return self.clock() >= self.at

    def raise_if_expired(self, context: str = "request") -> None:
        """Raise :class:`~repro.errors.DeadlineExceededError` if expired."""
        if self.expired():
            raise DeadlineExceededError(
                f"deadline exceeded before {context}")

    def bound(self, timeout: Optional[float]) -> float:
        """``timeout`` capped by the remaining budget (``None`` = no cap).

        The process-scatter layer turns a deadline into a pipe ``recv``
        bound with this: the effective wait is whichever of the
        configured recv timeout and the deadline's remainder is tighter.
        """
        remaining = self.remaining()
        if timeout is None:
            return remaining
        return min(float(timeout), remaining)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(at={self.at:.6f}, remaining={self.remaining():.6f})"
