"""Per-shard circuit breakers: stop paying for a flapping shard.

Retries make a *transient* failure invisible; they make a *persistent*
failure expensive — every leg to a dead shard burns its full attempt
count and backoff budget before giving up.  A :class:`CircuitBreaker`
in front of each shard cuts that loss off:

* **closed** (normal): legs run; ``failure_threshold`` *consecutive*
  failures trip the breaker;
* **open**: legs to the shard fail fast with :class:`BreakerOpenError`
  (or are degraded away under ``allow_partial``) for ``cooldown``
  seconds — no attempts, no backoff, no budget spent;
* **half-open**: after the cooldown exactly one probe leg is admitted;
  its success closes the breaker, its failure re-opens it for another
  cooldown.

The breaker is clock-injected and thread-safe (parallel legs of one
scatter may race on it); transitions are reported through an optional
``on_event`` callback so the scatter layer can count ``breaker.*``
metrics without the breaker knowing about registries.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ShardWorkerError

#: Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class BreakerOpenError(ShardWorkerError):
    """A shard's circuit breaker is open: the leg was refused fail-fast.

    A subclass of :class:`~repro.errors.ShardWorkerError` so one filter
    covers every shard-unavailability flavour (death, hang, open
    breaker) at the retry and serving layers; ``retry_after`` says how
    long until the breaker will admit a half-open probe.
    """

    def __init__(self, shard_index: int, retry_after: float) -> None:
        super().__init__(
            f"shard {shard_index} circuit breaker is open "
            f"(half-open probe in {max(0.0, retry_after):.3g}s)",
            shard_index=shard_index)
        self.retry_after = max(0.0, retry_after)


@dataclass(frozen=True)
class BreakerPolicy:
    """Trip threshold and cooldown of the per-shard breakers.

    Parameters
    ----------
    failure_threshold:
        Consecutive leg failures that open a shard's breaker.
    cooldown:
        Seconds an open breaker fails fast before admitting one
        half-open probe.
    """

    failure_threshold: int = 5
    cooldown: float = 30.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got "
                f"{self.failure_threshold}")
        if self.cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {self.cooldown}")


class CircuitBreaker:
    """One shard's closed/open/half-open failure gate.  Thread-safe."""

    def __init__(self, shard_index: int, policy: BreakerPolicy,
                 clock: Callable[[], float] = time.monotonic,
                 on_event: Optional[Callable[[str, int], None]] = None,
                 ) -> None:
        self.shard_index = int(shard_index)
        self.policy = policy
        self._clock = clock
        self._on_event = on_event
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        #: Whether the single half-open probe slot is taken.
        self._probe_in_flight = False

    def _emit(self, event: str) -> None:
        if self._on_event is not None:
            self._on_event(event, self.shard_index)

    @property
    def state(self) -> str:
        """Current state, cooldown expiry folded in (open → half-openable)."""
        with self._lock:
            if (self._state == OPEN
                    and self._clock() - self._opened_at >= self.policy.cooldown):
                return HALF_OPEN
            return self._state

    def retry_after(self) -> float:
        """Seconds until an open breaker admits its half-open probe."""
        with self._lock:
            if self._state != OPEN:
                return 0.0
            return max(0.0, self.policy.cooldown
                       - (self._clock() - self._opened_at))

    def allow(self) -> bool:
        """Whether a leg may run now (claims the half-open probe slot).

        A ``True`` from a half-open breaker *is* the probe: the caller
        must report the leg's outcome via :meth:`record_success` /
        :meth:`record_failure`, which releases the slot.  Concurrent
        callers during the probe are refused.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at < self.policy.cooldown:
                    return False
                self._state = HALF_OPEN
                self._probe_in_flight = True
                self._emit("half_open_probe")
                return True
            # HALF_OPEN: one probe at a time.
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
            self._emit("half_open_probe")
            return True

    def record_success(self) -> None:
        """A leg completed: close the breaker, forget the failure streak."""
        with self._lock:
            was_recovering = self._state != CLOSED
            self._state = CLOSED
            self._consecutive_failures = 0
            self._probe_in_flight = False
        if was_recovering:
            self._emit("closed")

    def record_failure(self) -> None:
        """A leg failed: extend the streak; trip or re-open when due."""
        with self._lock:
            if self._state == HALF_OPEN:
                # The probe failed: straight back to open, fresh cooldown.
                self._state = OPEN
                self._opened_at = self._clock()
                self._probe_in_flight = False
                opened = True
            else:
                self._consecutive_failures += 1
                opened = (self._state == CLOSED
                          and self._consecutive_failures
                          >= self.policy.failure_threshold)
                if opened:
                    self._state = OPEN
                    self._opened_at = self._clock()
        if opened:
            self._emit("opened")
