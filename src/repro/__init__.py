"""repro — a full reproduction of the Ranking-Cube methodology (ICDE 2007).

The package integrates OLAP-style multi-dimensional selections with ad-hoc
top-k ranking through semi off-line materialization and semi on-line
computation, following Dong Xin's thesis "Integrating OLAP and Ranking: The
Ranking-Cube Methodology".

Sub-packages
------------
``repro.storage``
    Simulated paged storage, buffer pool, relations, B+-tree, R-tree and
    selection (inverted) indexes.
``repro.functions``
    Ranking functions with box lower bounds (linear, distance, expression).
``repro.partition``
    Equi-depth / equi-width grid partitioning with pseudo blocks.
``repro.cube``
    Chapter 3: the grid ranking cube and ranking fragments.
``repro.signature``
    Chapter 4: signature measures, compression, the signature ranking cube,
    incremental maintenance and branch-and-bound query processing.
``repro.indexmerge``
    Chapter 5: progressive and selective merging of hierarchical indexes.
``repro.joins``
    Chapter 6: SPJR (select-project-join-rank) queries over multiple relations.
``repro.skyline``
    Chapter 7: skyline and dynamic-skyline queries with boolean predicates.
``repro.engine``
    The unified query-engine layer: a registry of named backends over all
    of the above, an explainable planner, and the ``Executor`` front door
    with batch execution and a shared lower-bound cache.
``repro.baselines``
    The comparison methods of the evaluation (table scan, boolean-first,
    ranking-first, rank mapping, threshold algorithm).
``repro.workloads``
    Synthetic data / query generators and the CoverType-like surrogate.
``repro.bench``
    The experiment harness regenerating every figure and table.
"""

from repro.query import Predicate, QueryResult, SkylineQuery, TopKQuery
from repro.storage.table import Relation, Schema

__version__ = "1.0.0"

__all__ = [
    "Predicate",
    "QueryResult",
    "SkylineQuery",
    "TopKQuery",
    "Relation",
    "Schema",
    "__version__",
]
