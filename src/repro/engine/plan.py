"""Explainable query plans produced by the engine planner.

A :class:`QueryPlan` records which backend was chosen for a query, why, and
the plan-relevant properties the planner inspected (predicate dimensions,
ranking-function shape, covering cuboids, ...).  Plans are plain data: the
:class:`repro.engine.Executor` attaches their description to the result's
``extra`` so every answer can explain how it was computed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

#: Query kinds the engine routes.
KIND_TOPK = "topk"
KIND_SKYLINE = "skyline"
KIND_JOIN = "join"

#: Backend-selection modes the planner records on its plans.
MODE_COST = "cost"
MODE_STATIC = "static"


@dataclass
class QueryPlan:
    """One routing decision: backend, rationale, and inspected properties."""

    backend: str
    query_kind: str
    reason: str
    details: Dict[str, object] = field(default_factory=dict)
    candidates: Tuple[str, ...] = ()
    #: How the winner was selected: :data:`MODE_COST` when estimated costs
    #: decided (details carry ``cost_estimates`` / ``cost_inputs``),
    #: :data:`MODE_STATIC` when the (priority, name) order did.
    mode: str = MODE_STATIC
    #: Per-candidate ``(backend name, estimated cost)`` pairs in candidate
    #: order when the plan was costed, ``()`` otherwise.  The structured
    #: twin of ``details["cost_estimates"]`` — tracing and
    #: ``explain_analyze`` read this instead of re-parsing the string.
    estimates: Tuple[Tuple[str, float], ...] = ()

    def describe(self) -> str:
        """Single-line human-readable plan, e.g. for ``extra['plan']``."""
        parts = [f"backend={self.backend}", f"kind={self.query_kind}",
                 f"mode={self.mode}"]
        for key in sorted(self.details):
            parts.append(f"{key}={self.details[key]}")
        if self.candidates:
            parts.append(f"candidates={'|'.join(self.candidates)}")
        return f"{self.reason} [{' '.join(parts)}]"

    def as_dict(self) -> Dict[str, object]:
        """Plan as a plain dict (for reports and structured logging)."""
        return {
            "backend": self.backend,
            "query_kind": self.query_kind,
            "reason": self.reason,
            "details": dict(self.details),
            "candidates": list(self.candidates),
            "mode": self.mode,
            "estimates": [list(pair) for pair in self.estimates],
        }

    def __str__(self) -> str:
        return self.describe()
