"""The query planner: inspect a query, pick a backend, explain the choice.

The planner is deliberately simple and fully explainable: it classifies the
query (top-k / skyline / multi-relation join), asks the registry for the
backends serving that kind, filters to the ones that actually support the
concrete query (predicate dimensions covered, ranking dimensions indexed),
and picks the highest-preference survivor.  Every decision is recorded on
the returned :class:`repro.engine.plan.QueryPlan`.
"""

from __future__ import annotations

from typing import List

from repro.errors import PlanningError
from repro.query import SkylineQuery, TopKQuery

from repro.engine.plan import KIND_JOIN, KIND_SKYLINE, KIND_TOPK, QueryPlan
from repro.engine.registry import Backend, EngineRegistry, kind_of


class Planner:
    """Routes queries to registered backends, producing explainable plans."""

    def __init__(self, registry: EngineRegistry) -> None:
        self.registry = registry

    def plan(self, query) -> QueryPlan:
        """Choose a backend for ``query`` and explain the choice."""
        kind = kind_of(query)
        serving = self.registry.backends_for(kind)
        if not serving:
            raise PlanningError(f"no backend registered for {kind!r} queries")
        # Deterministic selection: (priority, name) is a total order over
        # backends, so the winner never depends on registration order even
        # when two candidates share a priority.
        candidates = sorted((b for b in serving if b.supports(query)),
                            key=lambda b: (b.priority, b.name))
        if not candidates:
            raise PlanningError(
                f"none of the registered {kind!r} backends "
                f"({', '.join(b.name for b in serving)}) supports this query; "
                f"check that every predicate dimension is a selection dimension "
                f"and every ranking/preference dimension is a ranking dimension "
                f"of the target relation")
        chosen = candidates[0]
        details = dict(self._query_details(kind, query))
        if len(candidates) > 1:
            details["losing_candidates"] = ",".join(
                f"{b.name}:{b.priority}" for b in candidates[1:])
        details.update(chosen.plan_details(query))
        return QueryPlan(
            backend=chosen.name,
            query_kind=kind,
            reason=self._reason(kind, query, chosen),
            details=details,
            candidates=tuple(b.name for b in candidates),
        )

    def explain(self, query) -> str:
        """One-line explanation of how ``query`` would be routed."""
        return self.plan(query).describe()

    # ------------------------------------------------------------------
    # rationale rendering
    # ------------------------------------------------------------------
    def _query_details(self, kind: str, query):
        if kind == KIND_TOPK:
            yield "k", query.k
            yield "predicate_dims", ",".join(query.predicate.dims) or "-"
            yield "function_shape", query.function.shape.value
        elif kind == KIND_SKYLINE:
            yield "predicate_dims", ",".join(query.predicate.dims) or "-"
            yield "preference_dims", ",".join(query.preference_dims)
        else:
            yield "relations", ",".join(t.relation.name for t in query.terms)
            yield "k", query.k

    def _reason(self, kind: str, query, chosen: Backend) -> str:
        if kind == KIND_TOPK:
            what = (f"top-{query.k} with a {query.function.shape.value} function "
                    f"over predicate dims "
                    f"[{', '.join(query.predicate.dims) or 'none'}]")
        elif kind == KIND_SKYLINE:
            what = (f"{'dynamic ' if query.is_dynamic else ''}skyline over "
                    f"[{', '.join(query.preference_dims)}]")
        else:
            names = ", ".join(t.relation.name for t in query.terms)
            what = f"ranked join of [{names}]"
        return f"{what} routed to {chosen.name}"
