"""The query planner: inspect a query, pick a backend, explain the choice.

The planner classifies the query (top-k / skyline / multi-relation join),
asks the registry for the backends serving that kind, and filters to the
ones that actually support the concrete query (predicate dimensions
covered, ranking dimensions indexed).  Among the survivors it selects in
one of two modes:

* **cost** (the default) — every candidate is priced by the
  :class:`~repro.engine.cost.CostModel` over the relation's cached
  :class:`~repro.engine.cost.RelationStatistics`; the cheapest estimate
  wins, with the static ``(priority, name)`` order breaking exact ties.
  Each candidate's estimated cost and the estimate's inputs (selectivity,
  expected matches, k, function shape, covering cuboids, ...) are recorded
  in ``QueryPlan.details`` so ``explain`` shows *why* a backend won.
* **static** — the original lowest ``(priority, name)`` rule, used as the
  explicit fallback whenever any candidate cannot be costed (custom
  adapters, multi-relation joins, no statistics available) and available
  as a mode of its own for comparisons.

Both modes see the same candidate *set*; only the winner may differ.
Every decision is recorded on the returned
:class:`repro.engine.plan.QueryPlan`.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import PlanningError

from repro.engine.cost import CostEstimate, CostModel, StatisticsCatalog
from repro.engine.plan import (
    KIND_SKYLINE,
    KIND_TOPK,
    MODE_COST,
    MODE_STATIC,
    QueryPlan,
)
from repro.engine.registry import Backend, EngineRegistry, kind_of


class Planner:
    """Routes queries to registered backends, producing explainable plans.

    Parameters
    ----------
    registry:
        The named backends to route over.
    cost_model:
        Estimates per-candidate cost in cost mode (default:
        :class:`~repro.engine.cost.CostModel`).
    statistics:
        ``relation -> RelationStatistics`` provider.  The executor injects
        its own :class:`~repro.engine.cost.StatisticsCatalog` so profiles
        invalidate together with its result cache; a standalone planner
        builds a private catalog.
    mode:
        ``MODE_COST`` (default) or ``MODE_STATIC``.
    """

    def __init__(self, registry: EngineRegistry,
                 cost_model: Optional[CostModel] = None,
                 statistics: Optional[Callable] = None,
                 mode: str = MODE_COST) -> None:
        if mode not in (MODE_COST, MODE_STATIC):
            raise PlanningError(f"unknown planner mode {mode!r}")
        self.registry = registry
        self.cost_model = cost_model or CostModel()
        self.statistics = statistics or StatisticsCatalog().of
        self.mode = mode

    def plan(self, query) -> QueryPlan:
        """Choose a backend for ``query`` and explain the choice."""
        kind = kind_of(query)
        serving = self.registry.backends_for(kind)
        if not serving:
            raise PlanningError(f"no backend registered for {kind!r} queries")
        # Deterministic candidate order: (priority, name) is a total order
        # over backends, so the list never depends on registration order
        # even when two candidates share a priority.  Cost mode re-ranks
        # but keeps this order as its tie-break.
        candidates = sorted((b for b in serving if b.supports(query)),
                            key=lambda b: (b.priority, b.name))
        if not candidates:
            raise PlanningError(
                f"none of the registered {kind!r} backends "
                f"({', '.join(b.name for b in serving)}) supports this query; "
                f"check that every predicate dimension is a selection dimension "
                f"and every ranking/preference dimension is a ranking dimension "
                f"of the target relation")
        details = dict(self._query_details(kind, query))
        chosen, mode, estimates = self._select(query, candidates, details)
        if len(candidates) > 1:
            details["losing_candidates"] = ",".join(
                f"{b.name}:{b.priority}" for b in candidates if b is not chosen)
        details.update(chosen.plan_details(query))
        return QueryPlan(
            backend=chosen.name,
            query_kind=kind,
            reason=self._reason(kind, query, chosen),
            details=details,
            candidates=tuple(b.name for b in candidates),
            mode=mode,
            estimates=estimates,
        )

    def explain(self, query) -> str:
        """One-line explanation of how ``query`` would be routed."""
        return self.plan(query).describe()

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def _select(self, query, candidates: List[Backend], details):
        """Pick the winner, recording cost evidence (or the fallback reason).

        Returns ``(chosen backend, mode, per-candidate estimate pairs)``;
        the pairs are empty whenever the static order decided.
        """
        if self.mode != MODE_COST:
            return candidates[0], MODE_STATIC, ()
        estimates = self._estimates(query, candidates)
        if estimates is None:
            details["cost_fallback"] = (
                "unestimable candidate; static (priority, name) order kept")
            return candidates[0], MODE_STATIC, ()
        # Cheapest estimate wins; exact cost ties fall back to the static
        # (priority, name) order, keeping selection fully deterministic.
        ranked = sorted(range(len(candidates)),
                        key=lambda i: (estimates[i].cost, i))
        winner = ranked[0]
        details["cost_estimates"] = "|".join(
            f"{estimates[i].backend}:{estimates[i].cost:.1f}"
            for i in range(len(candidates)))
        details["estimated_cost"] = round(estimates[winner].cost, 3)
        details["cost_inputs"] = estimates[winner].describe_inputs()
        pairs = tuple((estimate.backend, float(estimate.cost))
                      for estimate in estimates)
        return candidates[winner], MODE_COST, pairs

    def _estimates(self, query,
                   candidates: List[Backend]) -> Optional[List[CostEstimate]]:
        """Cost every candidate, or ``None`` when any cannot be costed."""
        estimates: List[CostEstimate] = []
        for backend in candidates:
            relation = backend.relation
            if relation is None:
                return None
            estimate = self.cost_model.estimate(backend, query,
                                                self.statistics(relation))
            if estimate is None:
                return None
            estimates.append(estimate)
        return estimates

    # ------------------------------------------------------------------
    # rationale rendering
    # ------------------------------------------------------------------
    def _query_details(self, kind: str, query):
        if kind == KIND_TOPK:
            yield "k", query.k
            yield "predicate_dims", ",".join(query.predicate.dims) or "-"
            yield "function_shape", query.function.shape.value
        elif kind == KIND_SKYLINE:
            yield "predicate_dims", ",".join(query.predicate.dims) or "-"
            yield "preference_dims", ",".join(query.preference_dims)
        else:
            yield "relations", ",".join(t.relation.name for t in query.terms)
            yield "k", query.k

    def _reason(self, kind: str, query, chosen: Backend) -> str:
        if kind == KIND_TOPK:
            what = (f"top-{query.k} with a {query.function.shape.value} function "
                    f"over predicate dims "
                    f"[{', '.join(query.predicate.dims) or 'none'}]")
        elif kind == KIND_SKYLINE:
            what = (f"{'dynamic ' if query.is_dynamic else ''}skyline over "
                    f"[{', '.join(query.preference_dims)}]")
        else:
            names = ", ".join(t.relation.name for t in query.terms)
            what = f"ranked join of [{names}]"
        return f"{what} routed to {chosen.name}"
