"""Engine caches: per-(function, block) lower bounds and whole query results.

The grid query algorithm spends a large share of its work computing
``function.lower_bound(block_box)`` for every frontier block.  The bound
depends only on the function and the block's geometry — not on the query's
predicate or ``k`` — so a workload that reuses ranking functions (the
batch API, benchmark sweeps, repeated user queries) can share bounds across
queries.  :class:`LowerBoundCache` memoizes them with an LRU policy.

The lower-bound cache keys on object identity of the grid and the function.
Each entry holds a strong reference to the objects it keys on, so an
``id()`` recycled by the allocator can never alias a live entry — and
eviction releases the references along with the bound.

:class:`ResultCache` sits one level up: it memoizes entire query results
under a canonical *query key* (:func:`query_cache_key`) so a repeated query
skips planning and execution altogether.  Because cached answers go stale
when the data changes, anything that mutates the underlying relation (the
shard manager's ``insert``/``reshard``, for example) must call
:meth:`ResultCache.invalidate`.
"""

from __future__ import annotations

import dataclasses
import itertools
import threading

from collections import OrderedDict
from typing import Mapping, Optional, Tuple

_scope_counter = itertools.count()


def new_cache_scope() -> int:
    """Process-unique salt isolating one executor's entries in a shared cache.

    Query keys carry no relation identity, so executors over *different*
    relations sharing one :class:`ResultCache` would otherwise serve each
    other's answers.  Each executor prefixes its keys with its own scope
    (a monotonic counter — unlike ``id()``, never recycled), making a
    shared cache safe by construction.
    """
    return next(_scope_counter)


class LowerBoundCache:
    """LRU cache of block lower bounds, shared across queries.

    Parameters
    ----------
    max_entries:
        Maximum number of cached bounds; ``<= 0`` means unbounded.
    """

    def __init__(self, max_entries: int = 262144) -> None:
        self.max_entries = max_entries
        # key -> (bound, grid, function): the pinned objects live and die
        # with their entry.
        self._bounds: "OrderedDict[Tuple[int, int, int], Tuple[float, object, object]]" \
            = OrderedDict()
        # Concurrent engine calls (the async serving layer dispatches
        # batches on worker threads) share this cache; the LRU OrderedDict
        # is not safe to mutate concurrently, so every access takes the
        # lock.  Bound derivation itself runs outside it — two threads may
        # rarely derive the same bound twice, which costs time, never
        # correctness.
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def lower_bound(self, grid, function, bid: int) -> float:
        """Lower bound of ``function`` over block ``bid`` of ``grid``."""
        key = (id(grid), id(function), int(bid))
        with self._lock:
            cached = self._bounds.get(key)
            if cached is not None:
                self.hits += 1
                self._bounds.move_to_end(key)
                return cached[0]
            self.misses += 1
        bound = float(function.lower_bound(grid.block_box(bid)))
        with self._lock:
            self._bounds[key] = (bound, grid, function)
            if self.max_entries > 0:
                while len(self._bounds) > self.max_entries:
                    self._bounds.popitem(last=False)
        return bound

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop every cached bound and release the pinned objects."""
        with self._lock:
            self._bounds.clear()

    def reset_counters(self) -> None:
        """Zero the hit/miss counters without dropping cached bounds."""
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        # Metrics snapshots size the cache from other threads; take the
        # lock so the read never races an eviction sweep mid-resize.
        with self._lock:
            return len(self._bounds)


def _function_key(function) -> Optional[Tuple[object, ...]]:
    """Canonical, value-based key of a ranking function, or ``None``.

    Two function objects with the same type, dimensions, and parameters map
    to the same key, so logically identical queries share one cache entry
    even when their function objects differ.  Only an allowlist of types
    whose ``weights`` / ``targets`` / ``constant`` attributes are known to
    capture the *entire* function state is keyable — an exact-type check,
    so a subclass carrying extra parameters never inherits cacheability.
    Everything else (expression trees, custom subclasses) returns ``None``
    and stays uncacheable, because an incomplete or lossy key could collide
    two distinct functions and serve a wrong cached answer.
    """
    from repro.functions.distance import (
        ManhattanDistanceFunction,
        SquaredDistanceFunction,
    )
    from repro.functions.linear import LinearFunction, WeightedAverageFunction

    if type(function) not in (LinearFunction, WeightedAverageFunction,
                              SquaredDistanceFunction,
                              ManhattanDistanceFunction):
        return None
    parts: list = [type(function).__qualname__, tuple(function.dims)]
    for attr in ("weights", "targets", "constant"):
        value = getattr(function, attr, None)
        if value is None:
            continue
        if isinstance(value, (tuple, list)):
            parts.append((attr, tuple(float(v) for v in value)))
        else:
            parts.append((attr, float(value)))
    return tuple(parts)


def function_fuse_key(function) -> Tuple[object, ...]:
    """Key under which two queries may share one fused execution sweep.

    Value-based when the function is canonically keyable (see
    :func:`_function_key`), object identity otherwise — so two queries fuse
    exactly when their ranking functions provably compute the same scores.
    Identity keys make *uncacheable* functions (expression trees, custom
    subclasses) still fusable whenever a batch reuses the same object.
    """
    key = _function_key(function)
    if key is not None:
        return key
    return ("object", id(function))


def query_cache_key(query) -> Optional[Tuple[object, ...]]:
    """Canonical cache key of a query, or ``None`` when uncacheable.

    The key canonicalizes the predicate (its conditions are already sorted
    by dimension name), the ranking function (by value, see
    :func:`_function_key`), and ``k`` — respectively the preference
    dimensions and targets for skylines.  Join queries reference live
    relation objects, and top-k queries whose function cannot be keyed
    exactly, are not cached.
    """
    # Local imports keep this module free of heavyweight dependencies at
    # import time (cache.py is imported by every engine entry point).
    from repro.query import SkylineQuery, TopKQuery

    if isinstance(query, TopKQuery):
        function_key = _function_key(query.function)
        if function_key is None:
            return None
        return ("topk", query.predicate.conditions, function_key, int(query.k))
    if isinstance(query, SkylineQuery):
        return ("skyline", query.predicate.conditions,
                tuple(query.preference_dims),
                tuple(query.targets) if query.targets is not None else None)
    return None


def partition_batch(queries, scope: int, cache: "ResultCache"):
    """Split a batch into served cache hits, deduplicated units, and repeats.

    Shared by the engine and scatter/gather ``execute_many`` front doors.
    Returns ``(results, units, unit_index, followers)``:

    * ``results`` — one slot per query, pre-filled with the cache hits
      (``None`` where execution is still needed);
    * ``units`` — ``(submission index, query, scoped key)`` triples to
      execute exactly once each (``key`` is ``None`` for uncacheable
      queries, which are never deduplicated);
    * ``unit_index`` — scoped key → position in ``units``;
    * ``followers`` — batch repeats of an already-listed unit, to resolve
      against the cache after the units ran (re-executing only under a
      cache that refuses to retain results).
    """
    results = [None] * len(queries)
    units = []
    unit_index = {}
    followers = []
    for i, query in enumerate(queries):
        key = query_cache_key(query)
        if key is not None:
            key = (scope,) + key
            hit = cache.lookup(key)
            if hit is not None:
                results[i] = hit
                continue
            if key in unit_index:
                followers.append((i, query, key))
                continue
            unit_index[key] = len(units)
        units.append((i, query, key))
    return results, units, unit_index, followers


class ResultCache:
    """LRU cache of whole query results, keyed by :func:`query_cache_key`.

    Parameters
    ----------
    max_entries:
        Maximum number of cached results; ``<= 0`` means unbounded.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        self.max_entries = max_entries
        self._results: "OrderedDict[Tuple[object, ...], object]" = OrderedDict()
        # Shared by concurrent serving-layer batches and the (serialized)
        # write path's invalidation hooks; the lock keeps the LRU dict and
        # its counters coherent across threads.
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def get(self, key: Tuple[object, ...]):
        """Return the cached result for ``key`` or ``None``, counting the lookup."""
        with self._lock:
            cached = self._results.get(key)
            if cached is None:
                self.misses += 1
                return None
            self.hits += 1
            self._results.move_to_end(key)
            return cached

    def put(self, key: Tuple[object, ...], result) -> None:
        """Store ``result`` under ``key``, evicting the LRU entry when full."""
        with self._lock:
            self._results[key] = result
            self._results.move_to_end(key)
            if self.max_entries > 0:
                while len(self._results) > self.max_entries:
                    self._results.popitem(last=False)

    def lookup(self, key: Tuple[object, ...]):
        """Cache-aware read: a marked copy of the hit, or ``None`` on miss.

        Hits come back as copies (``extra`` rebuilt, tagged
        ``result_cache="hit"``) so callers mutating the returned result can
        never poison the cached original.
        """
        cached = self.get(key)
        if cached is None:
            return None
        hit = dataclasses.replace(cached, extra=dict(cached.extra))
        hit.extra["result_cache"] = "hit"
        return hit

    def store(self, key: Tuple[object, ...], result) -> None:
        """Cache a fresh ``result`` (as a copy) and tag it as a miss."""
        self.put(key, dataclasses.replace(result, extra=dict(result.extra)))
        result.extra["result_cache"] = "miss"

    def invalidate(self, row: Optional[Mapping[str, object]] = None) -> None:
        """Drop the cached results the mutation may have changed.

        ``row=None`` (a reshard, an unknown mutation) drops everything.
        Given the inserted ``row``, only entries the row can *affect* are
        dropped: an entry survives exactly when its canonical predicate
        names a selection value the row provably does not carry — such an
        answer cannot include the new row.  Predicate-free entries (the
        empty predicate matches every row) and keys whose predicate cannot
        be recovered are dropped conservatively, so partial invalidation
        can narrow the blast radius but never serve a stale answer.
        """
        with self._lock:
            self.invalidations += 1
            if row is None:
                self._results.clear()
                return
            survivors = OrderedDict(
                (key, result) for key, result in self._results.items()
                if self._row_excluded(key, row))
            self._results = survivors

    @staticmethod
    def _row_excluded(key: Tuple[object, ...],
                      row: Mapping[str, object]) -> bool:
        """Whether ``key``'s predicate provably excludes the inserted row."""
        for position, part in enumerate(key):
            if part in ("topk", "skyline") and position + 1 < len(key):
                conditions = key[position + 1]
                break
        else:
            return False  # unrecognized key shape: drop conservatively
        try:
            for dim, value in conditions:
                if dim in row and int(row[dim]) != int(value):
                    return True
        except (TypeError, ValueError):
            return False  # malformed conditions: drop conservatively
        return False

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> "OrderedDict[str, float]":
        """The ``result_*`` statistics block shared by every front door."""
        with self._lock:
            return OrderedDict([
                ("result_entries", float(len(self._results))),
                ("result_hits", float(self.hits)),
                ("result_misses", float(self.misses)),
                ("result_hit_rate", self.hit_rate),
                ("result_invalidations", float(self.invalidations)),
            ])

    def __len__(self) -> int:
        # Locked for the same reason as the stats() block: snapshot
        # threads size the cache while batches mutate it.
        with self._lock:
            return len(self._results)
