"""Shared per-(function, block) lower-bound cache.

The grid query algorithm spends a large share of its work computing
``function.lower_bound(block_box)`` for every frontier block.  The bound
depends only on the function and the block's geometry — not on the query's
predicate or ``k`` — so a workload that reuses ranking functions (the
batch API, benchmark sweeps, repeated user queries) can share bounds across
queries.  :class:`LowerBoundCache` memoizes them with an LRU policy.

The cache keys on object identity of the grid and the function.  Each
entry holds a strong reference to the objects it keys on, so an ``id()``
recycled by the allocator can never alias a live entry — and eviction
releases the references along with the bound.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Tuple


class LowerBoundCache:
    """LRU cache of block lower bounds, shared across queries.

    Parameters
    ----------
    max_entries:
        Maximum number of cached bounds; ``<= 0`` means unbounded.
    """

    def __init__(self, max_entries: int = 262144) -> None:
        self.max_entries = max_entries
        # key -> (bound, grid, function): the pinned objects live and die
        # with their entry.
        self._bounds: "OrderedDict[Tuple[int, int, int], Tuple[float, object, object]]" \
            = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lower_bound(self, grid, function, bid: int) -> float:
        """Lower bound of ``function`` over block ``bid`` of ``grid``."""
        key = (id(grid), id(function), int(bid))
        cached = self._bounds.get(key)
        if cached is not None:
            self.hits += 1
            self._bounds.move_to_end(key)
            return cached[0]
        self.misses += 1
        bound = float(function.lower_bound(grid.block_box(bid)))
        self._bounds[key] = (bound, grid, function)
        if self.max_entries > 0:
            while len(self._bounds) > self.max_entries:
                self._bounds.popitem(last=False)
        return bound

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop every cached bound and release the pinned objects."""
        self._bounds.clear()

    def reset_counters(self) -> None:
        """Zero the hit/miss counters without dropping cached bounds."""
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._bounds)
