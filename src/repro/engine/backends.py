"""Backend adapters wrapping every execution engine in the library.

Each adapter implements the small :class:`repro.engine.registry.Backend`
interface over an already-built engine object: the grid ranking cube (or its
ranking-fragments variant), the signature ranking cube, the skyline engines,
the SPJR index-merge join system, and the table-scan fallback.  ``supports``
checks are conservative and never raise — a backend that cannot answer a
query simply drops out of the candidate list.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.query import Predicate, SkylineQuery, TopKQuery
from repro.storage.table import Relation

from repro.engine.plan import KIND_JOIN, KIND_SKYLINE, KIND_TOPK
from repro.engine.registry import Backend


def _predicate_valid(predicate: Predicate, relation: Relation) -> bool:
    return all(relation.schema.is_selection(dim) for dim in predicate.dims)


def _function_valid(function, relation: Relation) -> bool:
    return all(relation.schema.is_ranking(dim) for dim in function.dims)


class RankingCubeBackend(Backend):
    """Grid ranking cube (Chapter 3) — also serves the fragments variant."""

    kind = KIND_TOPK
    supports_fusion = True

    def __init__(self, cube, name: str = "ranking-cube", priority: int = 10) -> None:
        self.cube = cube
        self.name = name
        self.priority = priority

    @property
    def relation(self):
        return self.cube.relation

    def supports(self, query) -> bool:
        if not isinstance(query, TopKQuery):
            return False
        if not _predicate_valid(query.predicate, self.cube.relation):
            return False
        if not all(dim in self.cube.grid.dims for dim in query.function.dims):
            return False
        if query.predicate.is_empty():
            return True
        try:
            return bool(self.cube.covering_cuboids(query.predicate.dims))
        except Exception:
            return False

    def plan_details(self, query) -> Dict[str, object]:
        if query.predicate.is_empty():
            return {"covering_cuboids": "none (empty predicate)"}
        chosen = self.cube.covering_cuboids(query.predicate.dims)
        return {"covering_cuboids": ",".join("+".join(dims) for dims in chosen)}

    def cost_profile(self, query) -> Optional[Dict[str, object]]:
        covering = 1
        if not query.predicate.is_empty():
            try:
                covering = len(self.cube.covering_cuboids(query.predicate.dims))
            except Exception:
                return None
        return {"access": "grid", "granularity": self.cube.block_size,
                "covering": covering}

    def attach_bound_cache(self, bound_cache) -> None:
        self.cube.attach_bound_cache(bound_cache)

    def run(self, query):
        return self.cube.query(query)

    def run_stream(self, query, on_progress):
        """Streaming run: verified prefixes emitted mid-sweep.

        Same answer as :meth:`run`; ``on_progress(start_rank, pairs)``
        additionally fires as accumulator ranks become provably final
        (see :meth:`repro.cube.query.GridTopKExecutor.execute`).
        """
        return self.cube.query(query, on_progress=on_progress)

    def execute_batch(self, queries) -> List:
        """Fused path: one frontier sweep serves the whole group."""
        return self.cube.query_batch(list(queries))


class SignatureCubeBackend(Backend):
    """Signature ranking cube with branch-and-bound search (Chapter 4)."""

    kind = KIND_TOPK
    supports_fusion = True

    def __init__(self, executor, name: str = "signature-cube",
                 priority: int = 20) -> None:
        # ``executor`` is a repro.signature.SignatureTopKExecutor.
        self.executor = executor
        self.cube = executor.cube
        self.name = name
        self.priority = priority

    @property
    def relation(self):
        return self.cube.relation

    def cost_profile(self, query) -> Optional[Dict[str, object]]:
        return {"access": "rtree", "granularity": self.cube.rtree.max_entries}

    def _covers_predicate(self, predicate: Predicate) -> bool:
        if predicate.is_empty():
            return True
        exact = tuple(sorted(predicate.dims))
        if any(tuple(sorted(dims)) == exact for dims in self.cube.cuboid_dims):
            return True
        return all((dim,) in self.cube.cuboid_dims for dim in predicate.dims)

    def supports(self, query) -> bool:
        if not isinstance(query, TopKQuery):
            return False
        if not _predicate_valid(query.predicate, self.cube.relation):
            return False
        if not all(dim in self.cube.rtree.dims for dim in query.function.dims):
            return False
        return self._covers_predicate(query.predicate)

    def plan_details(self, query) -> Dict[str, object]:
        return {"rtree_dims": ",".join(self.cube.rtree.dims)}

    def run(self, query):
        return self.executor.query(query)

    def execute_batch(self, queries) -> List:
        """Fused path: one root-to-leaf traversal serves the whole group."""
        return self.executor.query_batch(list(queries))


class TableScanBackend(Backend):
    """Sequential-scan fallback (``TS``): always applicable, never fast."""

    kind = KIND_TOPK

    def __init__(self, scanner, name: str = "table-scan", priority: int = 90) -> None:
        # ``scanner`` is a repro.baselines.TableScanTopK.
        self.scanner = scanner
        self.name = name
        self.priority = priority

    @property
    def relation(self):
        return self.scanner.relation

    def cost_profile(self, query) -> Optional[Dict[str, object]]:
        return {"access": "scan"}

    def supports(self, query) -> bool:
        return (isinstance(query, TopKQuery)
                and _predicate_valid(query.predicate, self.scanner.relation)
                and _function_valid(query.function, self.scanner.relation))

    def run(self, query):
        return self.scanner.query(query)


class SkylineBackend(Backend):
    """Signature-pruned BBS skyline engine (Chapter 7)."""

    kind = KIND_SKYLINE

    def __init__(self, engine, name: str = "skyline", priority: int = 10) -> None:
        # ``engine`` is a repro.skyline.SkylineEngine.
        self.engine = engine
        self.name = name
        self.priority = priority

    @property
    def relation(self):
        return self.engine.relation

    def cost_profile(self, query) -> Optional[Dict[str, object]]:
        return {"access": "rtree-skyline",
                "granularity": self.engine.rtree.max_entries}

    def supports(self, query) -> bool:
        if not isinstance(query, SkylineQuery):
            return False
        if not _predicate_valid(query.predicate, self.engine.relation):
            return False
        return all(dim in self.engine.rtree.dims for dim in query.preference_dims)

    def plan_details(self, query) -> Dict[str, object]:
        return {
            "dynamic": query.is_dynamic,
            "signature_pruning": self.engine.use_signature,
        }

    def run(self, query):
        return self.engine.query(query)


class SkylineScanBackend(Backend):
    """Boolean-first block-nested-loop skyline fallback."""

    kind = KIND_SKYLINE

    def __init__(self, engine, name: str = "skyline-scan", priority: int = 90) -> None:
        # ``engine`` is a repro.skyline.BooleanFirstSkyline.
        self.engine = engine
        self.name = name
        self.priority = priority

    @property
    def relation(self):
        return self.engine.relation

    def cost_profile(self, query) -> Optional[Dict[str, object]]:
        return {"access": "scan-skyline"}

    def supports(self, query) -> bool:
        if not isinstance(query, SkylineQuery):
            return False
        if not _predicate_valid(query.predicate, self.engine.relation):
            return False
        return all(self.engine.relation.schema.is_ranking(dim)
                   for dim in query.preference_dims)

    def run(self, query):
        return self.engine.query(query)


class IndexMergeBackend(Backend):
    """Multi-relation ranked joins via index merging (Chapters 5–6)."""

    kind = KIND_JOIN

    def __init__(self, system, name: str = "index-merge", priority: int = 10) -> None:
        # ``system`` is a repro.joins.RankingCubeJoinSystem.
        self.system = system
        self.name = name
        self.priority = priority

    def supports(self, query) -> bool:
        if not (hasattr(query, "terms") and hasattr(query, "joins")):
            return False
        return all(term.relation.name in self.system.relations
                   for term in query.terms)

    def plan_details(self, query) -> Dict[str, object]:
        try:
            plan = self.system.plan(query)
        except Exception:
            return {}
        access = ",".join(
            f"{name}:{plan.plan_for(name).access}" for name in plan.order)
        return {"join_order": "->".join(plan.order), "access": access}

    def run(self, query):
        return self.system.query(query)
