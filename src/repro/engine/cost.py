"""Statistics-driven cost model for the engine planner and the shard layer.

The planner's original selection rule — lowest ``(priority, name)`` among
the supporting backends — ignores the data entirely.  This module supplies
what it was missing:

* :class:`RelationStatistics` — a per-relation profile (row count, distinct
  selection values and their cardinalities, ranking ``[min, max]`` ranges)
  generalizing the shard layer's ``ShardStatistics`` to any relation;
* :class:`StatisticsCatalog` — a version-checked cache of profiles, owned
  by the :class:`~repro.engine.Executor` and invalidated together with its
  result cache, so a mutated relation is re-profiled before it is re-planned;
* :class:`CostModel` — turns a profile plus a concrete query into one
  estimated cost per candidate backend.

Cost formula
------------
All estimates are expressed in *tuple-score units*: the cost of scoring one
tuple with the ranking function is 1.0, and every structural overhead
(touching a grid block, expanding an R-tree node, testing a signature) is a
tunable multiple of it.  For a query with predicate ``P``, ``k``, and
function shape factor ``F`` (1 for monotone / semi-monotone functions, >1
for general ones whose bounds localize poorly) over a relation of ``N``
tuples:

* ``selectivity(P) = prod(1 / cardinality(dim) for dim in P)``, forced to
  ``0`` when the profile proves a predicate value absent from its dimension;
* ``m = N * selectivity(P)`` — expected matching tuples;
* **table scan** — ``row_filter_cost * N + m``: one vectorized pass to
  filter, then score every match;
* **grid ranking cube** (block size ``B``, ``c`` covering cuboids) — when
  ``m <= k`` the search must exhaust the grid
  (``m + blocks_total * block_touch_cost``); otherwise the frontier visits
  roughly ``ceil(F * k / (B * selectivity))`` blocks, scoring the matching
  tuples inside them, with an ``1 + intersection_penalty * (c - 1)`` factor
  when several covering cuboids must be intersected online;
* **signature R-tree** (fanout ``f``) — when ``m <= k`` the descent visits
  about ``m * depth`` nodes (signatures prune match-free subtrees, so an
  absent value costs one root test); otherwise about
  ``ceil(F * k / (f * selectivity))`` leaves plus the path down, each leaf
  paying per-entry signature tests and match scoring;
* **skyline engines** — the BBS engine pays ``node_touch_cost * depth``
  per estimated skyline point (``(log2 m)^(d-1)``), the block-nested-loop
  fallback one filtered pass plus ``m`` window comparisons per point.

Every estimate records its inputs so ``explain`` can show *why* a backend
won (see ``QueryPlan.details["cost_estimates"]`` / ``["cost_inputs"]``).
The scatter/gather executor reuses the same model to order scatter legs
(most promising ranking-range floor first, fewer expected matches on ties)
and to skip a leg entirely once the gathered k-th score provably beats
everything the leg could still contribute.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

import numpy as np

from repro.functions.base import FunctionShape, RankingFunction
from repro.geometry import Box, Interval
from repro.query import Predicate, TopKQuery
from repro.storage.table import Relation


@dataclass
class RelationStatistics:
    """Profile of one relation used for costing, pruning, and leg ordering."""

    num_tuples: int
    #: Distinct coded values per selection dimension.
    selection_values: Dict[str, FrozenSet[int]] = field(default_factory=dict)
    #: Distinct-value count per selection dimension (cardinalities).
    selection_cardinalities: Dict[str, int] = field(default_factory=dict)
    #: Bounding ``(min, max)`` per ranking dimension.
    ranking_ranges: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    #: Word used in ``can_match`` pruning reasons; the shard subclass says
    #: "shard" so existing explain output stays stable.
    _scope_word = "relation"

    @classmethod
    def of(cls, relation: Relation, **extra) -> "RelationStatistics":
        """Profile ``relation``; ``extra`` feeds subclass fields (shard index)."""
        values: Dict[str, FrozenSet[int]] = {}
        cards: Dict[str, int] = {}
        for dim in relation.selection_dims:
            distinct = np.unique(relation.selection_column(dim))
            values[dim] = frozenset(int(v) for v in distinct)
            cards[dim] = int(distinct.size)
        ranges: Dict[str, Tuple[float, float]] = {}
        if relation.num_tuples:
            for dim in relation.ranking_dims:
                column = relation.ranking_column(dim)
                ranges[dim] = (float(column.min()), float(column.max()))
        return cls(num_tuples=relation.num_tuples, selection_values=values,
                   selection_cardinalities=cards, ranking_ranges=ranges,
                   **extra)

    # ------------------------------------------------------------------
    # predicate estimates
    # ------------------------------------------------------------------
    def selectivity(self, predicate: Predicate) -> float:
        """Estimated fraction of tuples surviving ``predicate``.

        Independence-assumption product of ``1 / cardinality`` over the
        predicate dimensions, sharpened to exactly ``0.0`` whenever the
        value sets prove a required value absent — the estimate the SPJR
        optimizer uses, now fed by the live profile.
        """
        estimate = 1.0
        for dim, value in predicate.conditions:
            known = self.selection_values.get(dim)
            if known is not None and int(value) not in known:
                return 0.0
            estimate /= max(1, self.selection_cardinalities.get(dim, 1))
        return estimate

    def expected_matches(self, predicate: Predicate) -> float:
        """Expected number of tuples matching ``predicate``."""
        return self.num_tuples * self.selectivity(predicate)

    def can_match(self, predicate: Predicate) -> Tuple[bool, Optional[str]]:
        """Whether any tuple can satisfy ``predicate`` (with a prune reason).

        Conservative: ``(False, reason)`` only when provably no tuple
        matches, so pruning on it never changes answers.
        """
        if self.num_tuples == 0:
            return False, f"empty {self._scope_word}"
        for dim, value in predicate.conditions:
            known = self.selection_values.get(dim)
            if known is not None and int(value) not in known:
                return False, f"{dim}={value} outside {self._scope_word} values"
        return True, None

    # ------------------------------------------------------------------
    # ranking-range bounds
    # ------------------------------------------------------------------
    def ranking_box(self, dims) -> Optional[Box]:
        """Bounding box of the profiled ranking values over ``dims``."""
        intervals: Dict[str, Interval] = {}
        for dim in dims:
            bounds = self.ranking_ranges.get(dim)
            if bounds is None:
                return None
            intervals[dim] = Interval(bounds[0], bounds[1])
        return Box(intervals)

    def score_floor(self, function: RankingFunction) -> float:
        """Lowest score ``function`` can attain on any profiled tuple.

        A *sound* floor: no tuple of the profiled relation scores below it.
        Used by the scatter gatherer — once the merged k-th score beats a
        remaining shard's floor strictly, that shard cannot contribute and
        is skipped.  Falls back to ``-inf`` (never skip) when the ranges do
        not cover the function's dimensions or the bound computation fails.
        """
        box = self.ranking_box(function.dims)
        if box is None:
            return float("-inf")
        try:
            return float(function.lower_bound(box))
        except Exception:
            return float("-inf")


class StatisticsCatalog:
    """Version-checked cache of :class:`RelationStatistics` per relation.

    Keys on object identity but pins the relation and remembers the
    ``Relation.version`` it profiled, so a recycled ``id()`` can never
    alias a live entry and a direct ``Relation.append`` transparently
    triggers re-profiling on the next lookup.  ``invalidate()`` drops
    everything — the executor calls it alongside its result cache.
    """

    def __init__(self) -> None:
        self._entries: Dict[int, Tuple[int, RelationStatistics, Relation]] = {}

    def of(self, relation: Relation) -> RelationStatistics:
        """The cached profile of ``relation``, recomputed when it mutated."""
        entry = self._entries.get(id(relation))
        if entry is not None:
            version, stats, pinned = entry
            if pinned is relation and version == relation.version:
                return stats
        stats = RelationStatistics.of(relation)
        self._entries[id(relation)] = (relation.version, stats, relation)
        return stats

    def seed(self, relation: Relation, stats: RelationStatistics) -> None:
        """Adopt an externally computed profile of ``relation`` as-is.

        The shard manager seeds each shard executor's catalog with the
        shard's own :class:`~repro.shard.stats.ShardStatistics` (a
        :class:`RelationStatistics`), so the cost planner never re-scans a
        relation the shard layer already profiled.  The entry is pinned to
        the relation's current version and expires like any other.
        """
        self._entries[id(relation)] = (relation.version, stats, relation)

    def invalidate(self) -> None:
        """Drop every cached profile (the data underneath changed)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


@dataclass(frozen=True)
class CostEstimate:
    """One backend's estimated cost plus the inputs the estimate used."""

    backend: str
    cost: float
    inputs: Mapping[str, object]

    def describe_inputs(self) -> str:
        """Deterministic one-line ``key=value`` rendering of the inputs."""
        parts = []
        for key in sorted(self.inputs):
            value = self.inputs[key]
            if isinstance(value, float):
                parts.append(f"{key}={value:g}")
            else:
                parts.append(f"{key}={value}")
        return " ".join(parts)


class CostModel:
    """Estimates per-backend execution cost from a relation profile.

    Backends declare their access structure through
    ``Backend.cost_profile(query)`` (access kind plus granularity: block
    size, R-tree fanout, covering-cuboid count); the formulas here turn
    that structure and the :class:`RelationStatistics` into one scalar in
    tuple-score units.  Constants are class attributes so operators can
    subclass-and-tune without touching the planner.
    """

    #: Cost of pushing one row through the vectorized predicate filter.
    row_filter_cost = 0.02
    #: Cost of scoring one matching tuple (the unit).
    score_cost = 1.0
    #: Cost of touching one grid block (frontier pop, cell lookup, bounds).
    block_touch_cost = 8.0
    #: Cost of expanding one R-tree node (page read + child bounds).
    node_touch_cost = 32.0
    #: Cost of one per-entry signature test.
    signature_test_cost = 0.5
    #: Frontier over-visit: neighbor blocks examined per productive block.
    frontier_overvisit = 3.0
    #: Extra relative cost per additional covering cuboid intersected online.
    intersection_penalty = 0.5
    #: Shape factor for functions with no monotonicity structure.
    general_shape_factor = 4.0
    #: Per-leg IPC overhead of dispatching one scatter leg to a worker
    #: *process* instead of a thread: pickling the query, a pipe round
    #: trip, and unpickling the top-k answer, expressed in tuple-score
    #: units.  The scatter layer compares :meth:`scatter_leg_cost`
    #: against it to price the thread/process crossover — a leg cheaper
    #: than the IPC it would cost stays on the thread pool.  Calibratable
    #: like every other constant (``CostModel(process_leg_overhead=...)``).
    process_leg_overhead = 5000.0

    #: Constants overridable per instance (``CostModel(**constants)``),
    #: e.g. from ``benchmarks/calibrate_cost_model.py`` measurements.
    TUNABLE = ("row_filter_cost", "score_cost", "block_touch_cost",
               "node_touch_cost", "signature_test_cost",
               "frontier_overvisit", "intersection_penalty",
               "general_shape_factor", "process_leg_overhead")

    def __init__(self, **constants: float) -> None:
        """Optionally override the class-level constants on this instance.

        Accepts exactly the names in :attr:`TUNABLE` so a typo'd constant
        fails loudly instead of silently keeping the default.
        """
        for name, value in constants.items():
            if name not in self.TUNABLE:
                raise ValueError(
                    f"unknown cost constant {name!r}; tunable constants: "
                    f"{', '.join(self.TUNABLE)}")
            setattr(self, name, float(value))

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def estimate(self, backend, query,
                 stats: RelationStatistics) -> Optional[CostEstimate]:
        """Estimated cost of answering ``query`` on ``backend``, or ``None``.

        ``None`` means the backend declares no cost profile (custom
        adapters, multi-relation joins) — the planner then falls back to
        the static priority order for the whole candidate list.
        """
        profile = backend.cost_profile(query)
        if profile is None or stats is None:
            return None
        name = self._ESTIMATOR_NAMES.get(profile.get("access"))
        if name is None:
            return None
        # getattr dispatch honours subclass overrides of the estimator
        # methods, not just of the constants.
        estimator = getattr(self, name)
        selectivity = stats.selectivity(query.predicate)
        matches = stats.num_tuples * selectivity
        cost, extra = estimator(profile, query, stats, selectivity, matches)
        inputs: Dict[str, object] = {
            "num_tuples": stats.num_tuples,
            "selectivity": float(selectivity),
            "expected_matches": float(matches),
        }
        if isinstance(query, TopKQuery):
            inputs["k"] = query.k
            inputs["shape"] = query.function.shape.value
        else:
            inputs["preference_dims"] = len(query.preference_dims)
        inputs.update(extra)
        return CostEstimate(backend=backend.name, cost=float(cost),
                            inputs=inputs)

    def shape_factor(self, function: RankingFunction) -> float:
        """How poorly the function's bounds localize the search (>= 1)."""
        if function.shape in (FunctionShape.MONOTONE,
                              FunctionShape.SEMI_MONOTONE):
            return 1.0
        return self.general_shape_factor

    # ------------------------------------------------------------------
    # scatter-leg ordering (shard layer)
    # ------------------------------------------------------------------
    def scatter_key(self, query, stats: RelationStatistics
                    ) -> Tuple[float, float]:
        """Ordering key for one scatter leg: most promising, then cheapest.

        Legs with the lowest attainable score (the shard's ranking-range
        floor for the query's function) run first so the merged k-th score
        tightens as fast as possible; expected matching tuples break ties
        so the cheaper leg of two equally promising ones goes first.
        """
        if isinstance(query, TopKQuery):
            return (stats.score_floor(query.function),
                    stats.expected_matches(query.predicate))
        return (0.0, float(stats.num_tuples))

    def scatter_leg_cost(self, query, stats: RelationStatistics) -> float:
        """Coarse tuple-score cost of running one scatter leg on a shard.

        A scan-shaped upper-ish proxy — one filtered pass over the shard
        plus scoring the expected matches — deliberately backend-agnostic:
        it prices *how much work a leg ships to a worker*, not which index
        the worker's planner will pick.  The scatter layer compares the
        most expensive surviving leg against
        :attr:`process_leg_overhead`: when even the biggest leg is cheaper
        than a pipe round trip, the whole scatter stays on the thread
        pool (the small-relation fallback).
        """
        matches = stats.expected_matches(query.predicate)
        return (self.row_filter_cost * stats.num_tuples
                + self.score_cost * matches)

    # ------------------------------------------------------------------
    # per-access estimators
    # ------------------------------------------------------------------
    def _scan_topk(self, profile, query, stats, selectivity, matches):
        cost = self.row_filter_cost * stats.num_tuples + self.score_cost * matches
        return cost, {"access": "scan"}

    def _grid_topk(self, profile, query, stats, selectivity, matches):
        block_size = max(1, int(profile.get("granularity", 1)))
        covering = max(1, int(profile.get("covering", 1)))
        blocks_total = max(1, math.ceil(stats.num_tuples / block_size))
        factor = self.shape_factor(query.function)
        if matches <= query.k:
            # Too few matches to ever fill k: the frontier exhausts the grid.
            cost = (self.score_cost * matches
                    + blocks_total * self.block_touch_cost)
        else:
            per_block = block_size * selectivity
            blocks_needed = min(blocks_total,
                                math.ceil(factor * query.k / per_block))
            scored = min(matches, blocks_needed * per_block)
            touched = min(blocks_total,
                          self.frontier_overvisit * blocks_needed)
            cost = (self.score_cost * scored
                    + touched * self.block_touch_cost)
        cost *= 1.0 + self.intersection_penalty * (covering - 1)
        return cost, {"access": "grid", "block_size": block_size,
                      "covering_cuboids": covering}

    def _rtree_topk(self, profile, query, stats, selectivity, matches):
        fanout = max(2, int(profile.get("granularity", 2)))
        depth = self._tree_depth(stats.num_tuples, fanout)
        leaves_total = max(1, math.ceil(stats.num_tuples / fanout))
        nodes_total = leaves_total + max(1, leaves_total // max(1, fanout - 1))
        factor = self.shape_factor(query.function)
        if matches <= query.k:
            # Signatures prune match-free subtrees: roughly one root-to-leaf
            # path per match (an absent value costs a single root test).
            nodes = min(matches * depth, float(nodes_total))
            cost = (self.node_touch_cost * (1.0 + nodes)
                    + self.score_cost * matches)
        else:
            per_leaf = fanout * selectivity
            leaves_needed = min(leaves_total,
                                math.ceil(factor * query.k / per_leaf))
            cost = (self.node_touch_cost * (depth + leaves_needed)
                    + leaves_needed * (self.score_cost * per_leaf
                                       + self.signature_test_cost * fanout))
        return cost, {"access": "rtree", "fanout": fanout, "depth": depth}

    def _rtree_skyline(self, profile, query, stats, selectivity, matches):
        fanout = max(2, int(profile.get("granularity", 2)))
        depth = self._tree_depth(stats.num_tuples, fanout)
        points = self._skyline_points(matches, len(query.preference_dims))
        cost = self.node_touch_cost * depth * (1.0 + points)
        return cost, {"access": "rtree-skyline", "fanout": fanout,
                      "estimated_skyline_points": float(points)}

    def _scan_skyline(self, profile, query, stats, selectivity, matches):
        points = self._skyline_points(matches, len(query.preference_dims))
        cost = (self.row_filter_cost * stats.num_tuples
                + self.score_cost * matches * points)
        return cost, {"access": "scan-skyline",
                      "estimated_skyline_points": float(points)}

    @staticmethod
    def _tree_depth(num_tuples: int, fanout: int) -> int:
        if num_tuples <= 1:
            return 1
        return max(1, math.ceil(math.log(num_tuples) / math.log(fanout)))

    @staticmethod
    def _skyline_points(matches: float, dims: int) -> float:
        """Expected skyline size of ``matches`` independent points."""
        if matches <= 1:
            return max(0.0, matches)
        return min(matches, math.log2(matches + 2.0) ** max(1, dims - 1))

    _ESTIMATOR_NAMES: Dict[str, str] = {
        "scan": "_scan_topk",
        "grid": "_grid_topk",
        "rtree": "_rtree_topk",
        "rtree-skyline": "_rtree_skyline",
        "scan-skyline": "_scan_skyline",
    }
