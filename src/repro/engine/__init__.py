"""Unified query-engine layer: registry, planner, and execution front door.

The library implements five execution paths for the same query model —
grid ranking cube and ranking fragments (Chapter 3), the signature ranking
cube (Chapter 4), index-merge joins (Chapters 5–6), skylines (Chapter 7),
and the scan baselines.  This package puts one front door in front of all
of them:

* :class:`EngineRegistry` — named, pluggable backends
  (:class:`~repro.engine.registry.Backend` adapters live in
  :mod:`repro.engine.backends`);
* :class:`Planner` — inspects a query (predicate dimensions, ranking
  function shape, ``k``, available covering cuboids) and produces an
  explainable :class:`QueryPlan`; by default candidates are ranked by the
  statistics-driven :class:`CostModel` over cached
  :class:`RelationStatistics` profiles (``planner_mode="static"`` restores
  the pure (priority, name) order), and every plan records the candidates'
  estimated costs and the estimates' inputs;
* :class:`Executor` — ``execute(query)`` / ``execute_many(queries)`` plus a
  :class:`LowerBoundCache` of per-(function, block) bounds shared across
  every query of a workload.

Results carry their routing: ``result.extra["backend"]`` names the engine
that ran the query and ``result.extra["plan"]`` holds the planner's
one-line explanation.

Usage
-----
Build the default stack for a relation and run queries of any kind through
one object::

    from repro.engine import Executor
    from repro.functions import LinearFunction
    from repro.query import Predicate, SkylineQuery, TopKQuery

    executor = Executor.for_relation(relation)

    topk = executor.execute(
        TopKQuery(Predicate.of(A1=1), LinearFunction(["N1", "N2"], [1, 2]), 10))
    print(topk.extra["backend"])          # 'ranking-cube'
    print(topk.extra["plan"])             # why it was routed there

    sky = executor.execute(SkylineQuery(Predicate.of(A1=1), ("N1", "N2")))
    print(sky.extra["backend"])           # 'skyline'

    batch = executor.execute_many(queries)   # shares block lower bounds
    print(executor.cache_stats())            # {'hit_rate': ..., ...}

Custom stacks register backends explicitly::

    from repro.engine import EngineRegistry, Executor
    from repro.engine.backends import RankingCubeBackend, TableScanBackend

    executor = Executor()
    executor.register(RankingCubeBackend(my_cube))
    executor.register(TableScanBackend(my_scanner))
    print(executor.explain(query))

Multi-relation ranked joins plug in through
:meth:`Executor.register_join_system` (or :meth:`Executor.for_system`),
routing :class:`repro.joins.SPJRQuery` objects to the index-merge backend.
"""

from repro.engine.backends import (
    IndexMergeBackend,
    RankingCubeBackend,
    SignatureCubeBackend,
    SkylineBackend,
    SkylineScanBackend,
    TableScanBackend,
)
from repro.engine.cache import LowerBoundCache, ResultCache, query_cache_key
from repro.engine.cost import (
    CostEstimate,
    CostModel,
    RelationStatistics,
    StatisticsCatalog,
)
from repro.engine.executor import Executor
from repro.engine.plan import (
    KIND_JOIN,
    KIND_SKYLINE,
    KIND_TOPK,
    MODE_COST,
    MODE_STATIC,
    QueryPlan,
)
from repro.engine.planner import Planner
from repro.engine.registry import Backend, EngineRegistry, kind_of

__all__ = [
    "Backend",
    "CostEstimate",
    "CostModel",
    "EngineRegistry",
    "Executor",
    "IndexMergeBackend",
    "KIND_JOIN",
    "KIND_SKYLINE",
    "KIND_TOPK",
    "LowerBoundCache",
    "MODE_COST",
    "MODE_STATIC",
    "Planner",
    "QueryPlan",
    "RankingCubeBackend",
    "RelationStatistics",
    "ResultCache",
    "SignatureCubeBackend",
    "SkylineBackend",
    "SkylineScanBackend",
    "StatisticsCatalog",
    "TableScanBackend",
    "kind_of",
    "query_cache_key",
]
