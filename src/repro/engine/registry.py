"""The backend abstraction and the named-backend registry.

A *backend* wraps one of the library's execution engines behind a uniform
interface: it declares which query kind it serves (top-k, skyline, or
multi-relation join), whether it can answer a concrete query, and how to run
it.  The :class:`EngineRegistry` holds named backends; the planner consults
it to route queries, and operators can swap or extend backends without
touching the planner or the executor.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterator, List, Optional

from repro.errors import PlanningError
from repro.query import SkylineQuery, TopKQuery

from repro.engine.plan import KIND_JOIN, KIND_SKYLINE, KIND_TOPK


def kind_of(query) -> str:
    """Classify a query object into one of the routed kinds."""
    if isinstance(query, TopKQuery):
        return KIND_TOPK
    if isinstance(query, SkylineQuery):
        return KIND_SKYLINE
    # SPJRQuery lives in repro.joins; avoid a hard import cycle by duck
    # typing on its distinguishing fields.
    if hasattr(query, "terms") and hasattr(query, "joins"):
        return KIND_JOIN
    raise PlanningError(f"cannot route query of type {type(query).__name__}")


class Backend(ABC):
    """One named execution engine behind the registry interface.

    ``priority`` orders candidates during planning — lower wins.  Indexed
    engines sit low (preferred), scan fallbacks high.
    """

    #: Registry name; unique within one registry.
    name: str
    #: Query kind served (one of the ``KIND_*`` constants).
    kind: str
    #: Planning preference; lower values are chosen first.
    priority: int = 50
    #: The single relation this backend answers over, when there is one.
    #: The cost-based planner profiles it; ``None`` (multi-relation joins,
    #: custom adapters) makes the planner fall back to the static order.
    relation = None
    #: Whether :meth:`execute_batch` actually fuses shared work across a
    #: same-function group (one frontier sweep / one tree traversal) rather
    #: than falling back to the per-query loop.
    supports_fusion: bool = False

    @abstractmethod
    def supports(self, query) -> bool:
        """Whether this backend can answer ``query`` (must not raise)."""

    @abstractmethod
    def run(self, query):
        """Execute ``query`` and return its result object."""

    def execute_batch(self, queries) -> List:
        """Answer a group of queries sharing one ranking function (by value).

        The executor groups each batch by (backend, canonical function key)
        after planning and hands every group here.  Backends that can share
        work across the group override this with a fused implementation and
        set :attr:`supports_fusion`; this default is the per-query fallback,
        so non-batchable backends keep exact per-query semantics.
        """
        return [self.run(query) for query in queries]

    def plan_details(self, query) -> Dict[str, object]:
        """Backend-specific plan properties (e.g. covering cuboids)."""
        return {}

    def cost_profile(self, query) -> Optional[Dict[str, object]]:
        """Structural inputs for the :class:`~repro.engine.cost.CostModel`.

        Returns the access kind plus its granularity (``{"access": "grid",
        "granularity": block_size, ...}``), or ``None`` when the backend
        cannot be costed — the planner then keeps the static priority
        order for the whole candidate list, so an unestimable custom
        backend can never be mis-ranked by a half-informed comparison.
        """
        return None

    def attach_bound_cache(self, bound_cache) -> None:
        """Adopt a shared lower-bound cache; default: not applicable."""

    def describe(self) -> str:
        """Short human-readable description for ``explain`` output."""
        return f"{self.name} ({self.kind}, priority {self.priority})"


class EngineRegistry:
    """Named collection of backends, ordered by registration."""

    def __init__(self) -> None:
        self._backends: "Dict[str, Backend]" = {}

    def register(self, backend: Backend, replace: bool = False) -> Backend:
        """Add ``backend`` under its name; ``replace`` allows re-binding."""
        if not replace and backend.name in self._backends:
            raise PlanningError(
                f"backend {backend.name!r} is already registered "
                f"(pass replace=True to re-bind)")
        self._backends[backend.name] = backend
        return backend

    def unregister(self, name: str) -> Backend:
        """Remove and return the backend registered under ``name``."""
        try:
            return self._backends.pop(name)
        except KeyError as exc:
            raise PlanningError(f"no backend registered under {name!r}") from exc

    def get(self, name: str) -> Backend:
        """Return the backend registered under ``name``."""
        try:
            return self._backends[name]
        except KeyError as exc:
            raise PlanningError(f"no backend registered under {name!r}") from exc

    def names(self) -> List[str]:
        """Registered backend names, in registration order."""
        return list(self._backends)

    def backends_for(self, kind: str) -> List[Backend]:
        """Backends serving ``kind``, stably sorted by ascending priority."""
        matching = [b for b in self._backends.values() if b.kind == kind]
        return sorted(matching, key=lambda b: b.priority)

    def __contains__(self, name: str) -> bool:
        return name in self._backends

    def __iter__(self) -> Iterator[Backend]:
        return iter(self._backends.values())

    def __len__(self) -> int:
        return len(self._backends)
