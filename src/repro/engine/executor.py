"""The engine front door: plan, route, execute, and batch queries.

:class:`Executor` is the single entry point the rest of the system (CLI,
examples, services) talks to.  It owns an :class:`EngineRegistry`, a
:class:`Planner` over it, and one :class:`LowerBoundCache` shared by every
registered backend that can use it — so a batch of queries reusing the same
ranking function never re-derives a block bound.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.query import TopKQuery
from repro.storage.table import Relation

from repro.engine.backends import (
    IndexMergeBackend,
    RankingCubeBackend,
    SignatureCubeBackend,
    SkylineBackend,
    SkylineScanBackend,
    TableScanBackend,
)
from repro.engine.cache import (
    LowerBoundCache,
    ResultCache,
    function_fuse_key,
    new_cache_scope,
    partition_batch,
    query_cache_key,
)
from repro.engine.cost import CostModel, RelationStatistics, StatisticsCatalog
from repro.engine.plan import MODE_COST, QueryPlan

from repro.engine.planner import Planner
from repro.engine.registry import Backend, EngineRegistry


class Executor:
    """Front door over the registry/planner with shared bound/result caches.

    ``planner_mode`` selects cost-based (default) or static backend
    selection for the default planner; it is ignored when an explicit
    ``planner`` is injected.  The executor owns a
    :class:`~repro.engine.cost.StatisticsCatalog` of per-relation profiles
    that the cost-based planner reads; the catalog invalidates together
    with the result cache, so a mutation can never leave stale statistics
    behind a fresh answer.
    """

    def __init__(self, registry: Optional[EngineRegistry] = None,
                 planner: Optional[Planner] = None,
                 bound_cache: Optional[LowerBoundCache] = None,
                 result_cache: Optional[ResultCache] = None,
                 cost_model: Optional[CostModel] = None,
                 planner_mode: str = MODE_COST) -> None:
        self.registry = registry or EngineRegistry()
        self.statistics = StatisticsCatalog()
        self.planner = planner or Planner(self.registry,
                                          cost_model=cost_model,
                                          statistics=self.statistics.of,
                                          mode=planner_mode)
        self.bound_cache = bound_cache or LowerBoundCache()
        self.result_cache = result_cache or ResultCache()
        self.plans_reused = 0
        self.fused_groups = 0
        self.fused_queries = 0
        self._cache_scope = new_cache_scope()
        self._watched_relations: List[Relation] = []
        self._watched_versions: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, backend: Backend, replace: bool = False) -> Backend:
        """Register a backend and hand it the shared lower-bound cache."""
        self.registry.register(backend, replace=replace)
        backend.attach_bound_cache(self.bound_cache)
        return backend

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def plan(self, query) -> QueryPlan:
        """Expose the planner's routing decision without executing."""
        return self.planner.plan(query)

    def explain(self, query) -> str:
        """One-line explanation of how ``query`` would be routed."""
        return self.planner.explain(query)

    def plan_backends(self, queries: Iterable) -> set:
        """Distinct backend names the planner routes ``queries`` to.

        The async serving layer keys its per-backend concurrency
        semaphores on these names before dispatching a batch, so it asks
        "what could this batch occupy" — duplicates of one canonical query
        key are planned once, but cache hits are *not* excluded (a hit
        costs the backend nothing, yet the conservative answer keeps the
        gate sound if the entry is evicted between routing and execution).
        """
        names = set()
        seen = set()
        for query in queries:
            key = query_cache_key(query)
            if key is not None:
                if key in seen:
                    continue
                seen.add(key)
            names.add(self.planner.plan(query).backend)
        return names

    def execute(self, query):
        """Plan ``query``, run it on the chosen backend, annotate the result.

        Results of cacheable queries (top-k and skyline) are memoized in
        :attr:`result_cache` under their canonical query key; a repeat of
        the same logical query — same predicate, same function by value,
        same ``k`` — returns the cached answer without planning or
        execution (``extra["result_cache"]`` says which happened).  Cached
        results keep the statistics of the run that produced them.
        """
        key = query_cache_key(query)
        if key is not None:
            key = (self._cache_scope,) + key
            if self._watched_mutated():
                self.result_cache.invalidate()
                self.statistics.invalidate()
            hit = self.result_cache.lookup(key)
            if hit is not None:
                return hit
        plan = self.planner.plan(query)
        backend = self.registry.get(plan.backend)
        result = backend.run(query)
        result.extra["backend"] = plan.backend
        result.extra["plan"] = plan.describe()
        if key is not None:
            self.result_cache.store(key, result)
        return result

    def execute_many(self, queries: Iterable) -> List:
        """Execute a batch of queries, fusing shared work across the batch.

        Results come back in submission order.  Cached queries are served
        from the result cache without planning (a fully cached batch plans
        nothing); batch repeats of one canonical :func:`query_cache_key`
        execute once and hit the cache afterwards, so each distinct logical
        query is planned exactly once per batch.  The remaining misses are
        grouped by ``(chosen backend, canonical ranking-function key)`` and
        each group of two or more is handed to the backend's
        :meth:`~repro.engine.registry.Backend.execute_batch` — fusion-aware
        backends (grid and signature cubes) answer the whole group with one
        frontier sweep / tree traversal, scoring shared tuples once;
        everything else falls back to the per-query loop.  Answers are
        bit-identical to looping :meth:`execute` either way.

        Every batch-executed result records ``fused_group_size``, the
        batch's ``plans_reused``, and its solo-equivalent
        ``tuples_evaluated`` in ``extra``; the ``tuples_evaluated`` *field*
        of fused results is the query's attributed share of the shared
        work, so summing a batch never double-counts a tuple the sweep
        scored once.
        """
        queries = list(queries)
        if not queries:
            return []
        if self._watched_mutated():
            self.result_cache.invalidate()
            self.statistics.invalidate()
        results, units, unit_index, followers = partition_batch(
            queries, self._cache_scope, self.result_cache)

        plans = [self.planner.plan(query) for _, query, _ in units]
        groups: Dict[tuple, List[int]] = {}
        for position, (_, query, _) in enumerate(units):
            if isinstance(query, TopKQuery):
                group_key = (plans[position].backend,
                             function_fuse_key(query.function))
            else:
                group_key = ("ungrouped", position)
            groups.setdefault(group_key, []).append(position)

        for members in groups.values():
            backend = self.registry.get(plans[members[0]].backend)
            if len(members) > 1:
                group_results = backend.execute_batch(
                    [units[position][1] for position in members])
                if backend.supports_fusion:
                    self.fused_groups += 1
                    self.fused_queries += len(members)
                    fused_size = len(members)
                else:
                    # The default execute_batch is a per-query loop: no work
                    # was shared, so do not report a fused group.
                    fused_size = 1
            else:
                group_results = [backend.run(units[members[0]][1])]
                fused_size = 1
            for position, result in zip(members, group_results):
                i, _, key = units[position]
                self._finish_batch_result(result, plans[position], key,
                                          fused_size)
                results[i] = result

        batch_plans_reused = 0
        for i, query, key in followers:
            hit = self.result_cache.lookup(key)
            if hit is None:
                # A cache that refuses to retain results (or evicted the
                # entry already): mirror the looped path — reuse the
                # hoisted plan and re-execute.
                self.plans_reused += 1
                batch_plans_reused += 1
                plan = plans[unit_index[key]]
                hit = self.registry.get(plan.backend).run(query)
                self._finish_batch_result(hit, plan, key, 1)
            results[i] = hit

        for result in results:
            result.extra["plans_reused"] = float(batch_plans_reused)
        return results

    def _finish_batch_result(self, result, plan: QueryPlan,
                             key: Optional[tuple], group_size: int) -> None:
        """Annotate and cache one batch-executed result."""
        result.extra["backend"] = plan.backend
        result.extra["plan"] = plan.describe()
        result.extra["fused_group_size"] = float(group_size)
        # Fused sweeps record the solo-equivalent count themselves; for
        # per-query execution the field already is that count (skyline
        # results carry no tuple counter).
        result.extra.setdefault("tuples_evaluated",
                                float(getattr(result, "tuples_evaluated", 0)))
        if key is not None:
            self.result_cache.store(key, result)

    def statistics_for(self, relation: Relation) -> RelationStatistics:
        """The cached :class:`RelationStatistics` profile of ``relation``.

        Profiles are recomputed when the relation's version changed, so a
        direct ``Relation.append`` is reflected on the next lookup.
        """
        return self.statistics.of(relation)

    def cache_stats(self) -> Dict[str, float]:
        """Hit/miss statistics of the lower-bound and result caches."""
        stats = {
            "entries": float(len(self.bound_cache)),
            "hits": float(self.bound_cache.hits),
            "misses": float(self.bound_cache.misses),
            "hit_rate": self.bound_cache.hit_rate,
            "plans_reused": float(self.plans_reused),
            "fused_groups": float(self.fused_groups),
            "fused_queries": float(self.fused_queries),
        }
        stats.update(self.result_cache.stats())
        return stats

    def invalidate_results(self, row: Optional[Mapping[str, object]] = None,
                           ) -> None:
        """Drop cached results and statistics; call after the data changed.

        The shard manager invokes this on every ``insert``/``reshard`` so
        neither a stale answer nor a stale relation profile can be served
        after a mutation.  When the mutation is a single inserted ``row``,
        passing it narrows the result-cache drop to the entries the row can
        affect (see :meth:`ResultCache.invalidate`); statistics are always
        re-profiled — even a non-matching row changes the relation's count.
        """
        self.result_cache.invalidate(row=row)
        self.statistics.invalidate()

    def note_mutation(self, relation: Relation,
                      row: Optional[Mapping[str, object]] = None) -> None:
        """Record an out-of-band mutation of ``relation`` right away.

        Callers that append to a watched relation directly (the serving
        layer's unsharded write path) call this instead of letting
        :meth:`_watched_mutated` discover the version change on the next
        query: syncing the watched version *first* lets the invalidation
        stay predicate-aware (``row=...``) — the deferred discovery path
        can only widen it to a blanket clear.
        """
        if id(relation) in self._watched_versions:
            self._watched_versions[id(relation)] = relation.version
        self.invalidate_results(row=row)

    def watch_relation(self, relation: Relation) -> None:
        """Auto-invalidate cached results whenever ``relation`` mutates.

        ``for_relation`` / ``for_system`` wire this up for the relations
        they build over, so after a direct ``Relation.append`` (the
        incremental maintenance path) the next execution re-runs instead of
        replaying a pre-mutation answer.  Scope of the guarantee: the
        result cache never adds staleness *beyond the backends themselves*
        — backends with static indexes (the grid cube's block table, a
        pre-built R-tree) still answer from the data they were built over
        until rebuilt or maintained through their own insert paths.
        Custom stacks should call this for every relation their backends
        serve.
        """
        if id(relation) not in self._watched_versions:
            self._watched_relations.append(relation)
            self._watched_versions[id(relation)] = relation.version

    def _watched_mutated(self) -> bool:
        """Whether any watched relation changed since the last check."""
        changed = False
        for relation in self._watched_relations:
            if self._watched_versions[id(relation)] != relation.version:
                self._watched_versions[id(relation)] = relation.version
                changed = True
        return changed

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def for_relation(cls, relation: Relation, *, block_size: int = 300,
                     rtree_max_entries: int = 32,
                     include_fragments: bool = False,
                     fragment_size: int = 2,
                     with_signature: bool = True,
                     with_skyline: bool = True,
                     planner_mode: str = MODE_COST) -> "Executor":
        """Build the default single-relation engine stack.

        Registers the grid ranking cube (preferred for top-k) and the
        table-scan fallback; by default also the signature ranking cube and
        both skyline engines.  Callers that only run grid top-k queries can
        pass ``with_signature=False, with_skyline=False`` to skip the
        R-tree / signature construction cost entirely.
        ``include_fragments`` additionally registers the ranking-fragments
        variant of the cube under the name ``"fragments"``.

        The signature top-k backend (Chapter 4) and the signature-pruned
        skyline backend (Chapter 7) run over the *same*
        :class:`~repro.signature.SignatureRankingCube` — one R-tree, one
        signature store.  Enabling either flag builds that structure exactly
        once; enabling both shares it, paying no duplicate construction
        cost, and with ``with_signature=False`` the top-k executor over it
        is simply never instantiated.
        """
        from repro.baselines import TableScanTopK
        from repro.cube import RankingCube, build_ranking_fragments

        executor = cls(planner_mode=planner_mode)
        cube = RankingCube(relation, block_size=block_size)
        executor.register(RankingCubeBackend(cube))
        if include_fragments:
            fragments = build_ranking_fragments(
                relation, fragment_size=fragment_size, block_size=block_size)
            executor.register(
                RankingCubeBackend(fragments, name="fragments", priority=15))
        signature = None
        if with_signature or with_skyline:
            from repro.signature import SignatureRankingCube

            signature = SignatureRankingCube(relation,
                                             rtree_max_entries=rtree_max_entries)
        if with_signature:
            from repro.signature import SignatureTopKExecutor

            executor.register(
                SignatureCubeBackend(SignatureTopKExecutor(signature)))
        executor.register(TableScanBackend(TableScanTopK(relation)))
        if with_skyline:
            from repro.skyline import BooleanFirstSkyline, SkylineEngine

            executor.register(SkylineBackend(SkylineEngine(signature)))
            executor.register(SkylineScanBackend(BooleanFirstSkyline(relation)))
        executor.watch_relation(relation)
        return executor

    def register_join_system(self, system, name: str = "index-merge") -> Backend:
        """Register a multi-relation join system as the ``join`` backend."""
        return self.register(IndexMergeBackend(system, name=name))

    @classmethod
    def for_system(cls, relations: Sequence[Relation], *,
                   rtree_max_entries: int = 32,
                   planner_mode: str = MODE_COST) -> "Executor":
        """Engine stack over several relations, including ranked joins.

        Single-relation backends are built for the first relation; the join
        backend spans all of them.
        """
        from repro.joins import RankingCubeJoinSystem

        executor = cls.for_relation(relations[0],
                                    rtree_max_entries=rtree_max_entries,
                                    planner_mode=planner_mode)
        system = RankingCubeJoinSystem(relations,
                                       rtree_max_entries=rtree_max_entries)
        executor.register_join_system(system)
        for relation in relations:
            executor.watch_relation(relation)
        return executor
