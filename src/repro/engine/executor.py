"""The engine front door: plan, route, execute, and batch queries.

:class:`Executor` is the single entry point the rest of the system (CLI,
examples, services) talks to.  It owns an :class:`EngineRegistry`, a
:class:`Planner` over it, and one :class:`LowerBoundCache` shared by every
registered backend that can use it — so a batch of queries reusing the same
ranking function never re-derives a block bound.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER
from repro.query import TopKQuery
from repro.storage.table import Relation

from repro.engine.backends import (
    IndexMergeBackend,
    RankingCubeBackend,
    SignatureCubeBackend,
    SkylineBackend,
    SkylineScanBackend,
    TableScanBackend,
)
from repro.engine.cache import (
    LowerBoundCache,
    ResultCache,
    function_fuse_key,
    new_cache_scope,
    partition_batch,
    query_cache_key,
)
from repro.engine.cost import CostModel, RelationStatistics, StatisticsCatalog
from repro.engine.plan import MODE_COST, QueryPlan

from repro.engine.planner import Planner
from repro.engine.registry import Backend, EngineRegistry


class Executor:
    """Front door over the registry/planner with shared bound/result caches.

    ``planner_mode`` selects cost-based (default) or static backend
    selection for the default planner; it is ignored when an explicit
    ``planner`` is injected.  The executor owns a
    :class:`~repro.engine.cost.StatisticsCatalog` of per-relation profiles
    that the cost-based planner reads; the catalog invalidates together
    with the result cache, so a mutation can never leave stale statistics
    behind a fresh answer.
    """

    def __init__(self, registry: Optional[EngineRegistry] = None,
                 planner: Optional[Planner] = None,
                 bound_cache: Optional[LowerBoundCache] = None,
                 result_cache: Optional[ResultCache] = None,
                 cost_model: Optional[CostModel] = None,
                 planner_mode: str = MODE_COST,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer=None) -> None:
        self.registry = registry or EngineRegistry()
        self.statistics = StatisticsCatalog()
        self.planner = planner or Planner(self.registry,
                                          cost_model=cost_model,
                                          statistics=self.statistics.of,
                                          mode=planner_mode)
        self.bound_cache = bound_cache or LowerBoundCache()
        self.result_cache = result_cache or ResultCache()
        self.plans_reused = 0
        self.fused_groups = 0
        self.fused_queries = 0
        self._cache_scope = new_cache_scope()
        self._watched_relations: List[Relation] = []
        self._watched_versions: Dict[int, int] = {}
        #: Where engine.* counters/histograms publish; shareable with the
        #: serving layer so one registry covers the whole stack.
        self.metrics = metrics or MetricsRegistry()
        #: Off by default: the null tracer's spans are no-op singletons.
        self.tracer = tracer or NULL_TRACER
        self._m_queries = self.metrics.counter("engine.queries")
        self._m_batches = self.metrics.counter("engine.batches")
        self._m_tuples = self.metrics.counter("engine.tuples_evaluated")
        self._m_latency = self.metrics.histogram("engine.latency_seconds")
        # Per-backend cost-feedback counters, created on first costed
        # execution (dict lookup on the hot path, no string formatting).
        self._cost_feedback: Dict[str, Tuple] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, backend: Backend, replace: bool = False) -> Backend:
        """Register a backend and hand it the shared lower-bound cache."""
        self.registry.register(backend, replace=replace)
        backend.attach_bound_cache(self.bound_cache)
        return backend

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def plan(self, query) -> QueryPlan:
        """Expose the planner's routing decision without executing."""
        return self.planner.plan(query)

    def explain(self, query) -> str:
        """One-line explanation of how ``query`` would be routed."""
        return self.planner.explain(query)

    def plan_backends(self, queries: Iterable) -> set:
        """Distinct backend names the planner routes ``queries`` to.

        The async serving layer keys its per-backend concurrency
        semaphores on these names before dispatching a batch, so it asks
        "what could this batch occupy" — duplicates of one canonical query
        key are planned once, but cache hits are *not* excluded (a hit
        costs the backend nothing, yet the conservative answer keeps the
        gate sound if the entry is evicted between routing and execution).
        """
        names = set()
        seen = set()
        for query in queries:
            key = query_cache_key(query)
            if key is not None:
                if key in seen:
                    continue
                seen.add(key)
            names.add(self.planner.plan(query).backend)
        return names

    def execute(self, query, *, parent_span=None, use_result_cache=True,
                on_progress=None):
        """Plan ``query``, run it on the chosen backend, annotate the result.

        ``on_progress`` opts into streaming: backends exposing a
        ``run_stream`` (the grid ranking cube) emit verified top-k
        prefixes as ``on_progress(start_rank, [(tid, score), ...])``
        while the sweep runs; other backends — and result-cache hits —
        simply return the final answer without intermediate calls.  The
        returned result is identical either way.

        Results of cacheable queries (top-k and skyline) are memoized in
        :attr:`result_cache` under their canonical query key; a repeat of
        the same logical query — same predicate, same function by value,
        same ``k`` — returns the cached answer without planning or
        execution (``extra["result_cache"]`` says which happened).  Cached
        results keep the statistics of the run that produced them.

        ``parent_span`` threads an enabled trace through (the span tree
        gains ``engine.execute`` → ``engine.plan`` / ``engine.run``
        children); without one the executor's own :attr:`tracer` roots
        the trace — the null object when tracing is off.
        ``use_result_cache=False`` bypasses lookup *and* store, the
        ``explain_analyze`` contract: the rendered plan and execution
        really happened, and the run leaves no cache residue behind.
        """
        span = (parent_span.child("engine.execute")
                if parent_span is not None
                else self.tracer.trace("engine.execute"))
        started = time.perf_counter()
        self._m_queries.inc()
        try:
            if self._watched_mutated():
                self.result_cache.invalidate()
                self.statistics.invalidate()
            key = query_cache_key(query) if use_result_cache else None
            if key is not None:
                key = (self._cache_scope,) + key
                hit = self.result_cache.lookup(key)
                if hit is not None:
                    span.set("result_cache", "hit")
                    return hit
            plan = self._plan_traced(query, span)
            backend = self.registry.get(plan.backend)
            run_span = span.child("engine.run").set("backend", plan.backend)
            run_stream = (getattr(backend, "run_stream", None)
                          if on_progress is not None else None)
            if run_stream is not None:
                result = run_stream(query, on_progress)
            else:
                result = backend.run(query)
            actual = float(getattr(result, "tuples_evaluated", 0))
            run_span.set("tuples_evaluated", actual).finish()
            self._m_tuples.inc(actual)
            self._record_cost_feedback(plan, actual)
            result.extra["backend"] = plan.backend
            result.extra["plan"] = plan.describe()
            if key is not None:
                self.result_cache.store(key, result)
            return result
        finally:
            self._m_latency.observe(time.perf_counter() - started)
            span.finish()

    def _plan_traced(self, query, span) -> QueryPlan:
        """Plan under an ``engine.plan`` child span carrying the evidence."""
        plan_span = span.child("engine.plan")
        try:
            plan = self.planner.plan(query)
        finally:
            plan_span.finish()
        if plan_span:
            plan_span.set("backend", plan.backend).set("mode", plan.mode)
            if plan.estimates:
                # Stored structured; the explain renderer formats pair
                # tuples lazily, keeping float formatting off the hot path.
                plan_span.set("cost_estimates", plan.estimates)
            estimated = plan.details.get("estimated_cost")
            if estimated is not None:
                plan_span.set("estimated_cost", float(estimated))
        return plan

    def _record_cost_feedback(self, plan: QueryPlan, actual: float) -> None:
        """Feed estimated-vs-actual into the per-backend planner counters.

        ``planner.misestimates.<backend>`` counts executions whose actual
        tuple count and estimated cost disagree by more than 4x in either
        direction — the signal ``calibrate_cost_model.py --metrics``
        turns into a per-backend drift report.  Statically planned
        queries carry no estimate and record nothing.
        """
        estimated = plan.details.get("estimated_cost")
        if estimated is None:
            return
        counters = self._cost_feedback.get(plan.backend)
        if counters is None:
            name = plan.backend
            counters = (
                self.metrics.counter(f"planner.costed_queries.{name}"),
                self.metrics.counter(f"planner.estimated_cost_total.{name}"),
                self.metrics.counter(f"planner.actual_tuples_total.{name}"),
                self.metrics.counter(f"planner.misestimates.{name}"),
            )
            self._cost_feedback[plan.backend] = counters
        costed, est_total, actual_total, misses = counters
        costed.inc()
        est_total.inc(float(estimated))
        actual_total.inc(actual)
        high = max(float(estimated), actual, 1.0)
        low = max(min(float(estimated), actual), 1.0)
        if high / low > 4.0:
            misses.inc()

    def execute_many(self, queries: Iterable, *, parent_span=None) -> List:
        """Execute a batch of queries, fusing shared work across the batch.

        Results come back in submission order.  Cached queries are served
        from the result cache without planning (a fully cached batch plans
        nothing); batch repeats of one canonical :func:`query_cache_key`
        execute once and hit the cache afterwards, so each distinct logical
        query is planned exactly once per batch.  The remaining misses are
        grouped by ``(chosen backend, canonical ranking-function key)`` and
        each group of two or more is handed to the backend's
        :meth:`~repro.engine.registry.Backend.execute_batch` — fusion-aware
        backends (grid and signature cubes) answer the whole group with one
        frontier sweep / tree traversal, scoring shared tuples once;
        everything else falls back to the per-query loop.  Answers are
        bit-identical to looping :meth:`execute` either way.

        Every batch-executed result records ``fused_group_size``, the
        batch's ``plans_reused``, and its solo-equivalent
        ``tuples_evaluated`` in ``extra``; the ``tuples_evaluated`` *field*
        of fused results is the query's attributed share of the shared
        work, so summing a batch never double-counts a tuple the sweep
        scored once.

        ``parent_span`` threads an enabled trace through exactly as in
        :meth:`execute`; the batch's tree gains ``engine.plan`` children
        per planned unit and one ``engine.fused_sweep`` (with
        ``attributed_shares``) or ``engine.run`` child per group.
        """
        queries = list(queries)
        if not queries:
            return []
        span = (parent_span.child("engine.execute_many")
                if parent_span is not None
                else self.tracer.trace("engine.execute_many"))
        started = time.perf_counter()
        self._m_batches.inc()
        self._m_queries.inc(float(len(queries)))
        try:
            if span:
                span.set("batch_size", len(queries))
            if self._watched_mutated():
                self.result_cache.invalidate()
                self.statistics.invalidate()
            results, units, unit_index, followers = partition_batch(
                queries, self._cache_scope, self.result_cache)

            plans = [self._plan_traced(query, span)
                     for _, query, _ in units]
            groups: Dict[tuple, List[int]] = {}
            for position, (_, query, _) in enumerate(units):
                if isinstance(query, TopKQuery):
                    group_key = (plans[position].backend,
                                 function_fuse_key(query.function))
                else:
                    group_key = ("ungrouped", position)
                groups.setdefault(group_key, []).append(position)

            for members in groups.values():
                backend = self.registry.get(plans[members[0]].backend)
                if len(members) > 1:
                    if backend.supports_fusion:
                        group_span = (span.child("engine.fused_sweep")
                                      .set("backend", backend.name)
                                      .set("group_size", len(members)))
                    else:
                        group_span = (span.child("engine.run_batch")
                                      .set("backend", backend.name))
                    group_results = backend.execute_batch(
                        [units[position][1] for position in members])
                    if backend.supports_fusion:
                        self.fused_groups += 1
                        self.fused_queries += len(members)
                        fused_size = len(members)
                        if group_span:
                            # The per-member shares of the one shared
                            # sweep: summing them never double-counts a
                            # tuple the sweep scored once.
                            shares = [float(getattr(r, "tuples_evaluated", 0))
                                      for r in group_results]
                            group_span.set("tuples_evaluated", sum(shares))
                            group_span.set("attributed_shares",
                                           tuple(shares))
                    else:
                        # The default execute_batch is a per-query loop: no
                        # work was shared, so do not report a fused group.
                        fused_size = 1
                        if group_span:
                            group_span.set("tuples_evaluated", sum(
                                float(getattr(r, "tuples_evaluated", 0))
                                for r in group_results))
                    group_span.finish()
                else:
                    backend_name = plans[members[0]].backend
                    run_span = (span.child("engine.run")
                                .set("backend", backend_name))
                    group_results = [backend.run(units[members[0]][1])]
                    run_span.set("tuples_evaluated", float(getattr(
                        group_results[0], "tuples_evaluated", 0))).finish()
                    fused_size = 1
                for position, result in zip(members, group_results):
                    i, _, key = units[position]
                    self._finish_batch_result(result, plans[position], key,
                                              fused_size)
                    results[i] = result

            batch_plans_reused = 0
            for i, query, key in followers:
                hit = self.result_cache.lookup(key)
                if hit is None:
                    # A cache that refuses to retain results (or evicted
                    # the entry already): mirror the looped path — reuse
                    # the hoisted plan and re-execute.
                    self.plans_reused += 1
                    batch_plans_reused += 1
                    plan = plans[unit_index[key]]
                    run_span = (span.child("engine.run")
                                .set("backend", plan.backend))
                    hit = self.registry.get(plan.backend).run(query)
                    run_span.set("tuples_evaluated", float(getattr(
                        hit, "tuples_evaluated", 0))).finish()
                    self._finish_batch_result(hit, plan, key, 1)
                results[i] = hit

            for result in results:
                result.extra["plans_reused"] = float(batch_plans_reused)
            return results
        finally:
            self._m_latency.observe(time.perf_counter() - started)
            span.finish()

    def _finish_batch_result(self, result, plan: QueryPlan,
                             key: Optional[tuple], group_size: int) -> None:
        """Annotate and cache one batch-executed result."""
        result.extra["backend"] = plan.backend
        result.extra["plan"] = plan.describe()
        result.extra["fused_group_size"] = float(group_size)
        # Fused sweeps record the solo-equivalent count themselves; for
        # per-query execution the field already is that count (skyline
        # results carry no tuple counter).
        result.extra.setdefault("tuples_evaluated",
                                float(getattr(result, "tuples_evaluated", 0)))
        # The attributed share is the honest work counter; the cost
        # feedback compares the *solo-equivalent* count against the
        # estimate, which priced a solo run.
        self._m_tuples.inc(float(getattr(result, "tuples_evaluated", 0)))
        self._record_cost_feedback(plan,
                                   float(result.extra["tuples_evaluated"]))
        if key is not None:
            self.result_cache.store(key, result)

    def statistics_for(self, relation: Relation) -> RelationStatistics:
        """The cached :class:`RelationStatistics` profile of ``relation``.

        Profiles are recomputed when the relation's version changed, so a
        direct ``Relation.append`` is reflected on the next lookup.
        """
        return self.statistics.of(relation)

    def cache_stats(self) -> Dict[str, float]:
        """Hit/miss statistics of the lower-bound and result caches."""
        stats = {
            "entries": float(len(self.bound_cache)),
            "hits": float(self.bound_cache.hits),
            "misses": float(self.bound_cache.misses),
            "hit_rate": self.bound_cache.hit_rate,
            "plans_reused": float(self.plans_reused),
            "fused_groups": float(self.fused_groups),
            "fused_queries": float(self.fused_queries),
        }
        stats.update(self.result_cache.stats())
        return stats

    #: ``cache_stats`` keys renamed when folded into a metrics snapshot —
    #: the bare bound-cache names collide with other layers' otherwise.
    _SNAPSHOT_RENAMES = {"entries": "bound_entries", "hits": "bound_hits",
                         "misses": "bound_misses",
                         "hit_rate": "bound_hit_rate"}

    def metrics_snapshot(self) -> Dict[str, float]:
        """One flat ``engine.*``-namespaced view: registry + cache stats.

        The live registry counters/histograms come through as-is (they
        are already namespaced); the :meth:`cache_stats` mapping is
        folded in under the ``engine.`` prefix with the bound-cache keys
        renamed (``entries`` → ``engine.bound_entries``, ...).
        """
        snap = self.metrics.snapshot()
        for name, value in self.cache_stats().items():
            snap[f"engine.{self._SNAPSHOT_RENAMES.get(name, name)}"] = \
                float(value)
        return snap

    def explain_analyze(self, query) -> str:
        """Run ``query`` traced (result cache bypassed) and render the trace.

        The rendered text is the span tree — plan with per-candidate cost
        estimates, the backend run with its tuple count — followed by the
        per-backend estimated-cost vs. actual-tuples table.  Uses a
        private tracer, so it works (and stays side-effect-free on the
        ring buffer) whether or not :attr:`tracer` is enabled.
        """
        from repro.obs.explain import analyze_with

        return analyze_with(self, query, "engine.explain_analyze")

    def invalidate_results(self, row: Optional[Mapping[str, object]] = None,
                           ) -> None:
        """Drop cached results and statistics; call after the data changed.

        The shard manager invokes this on every ``insert``/``reshard`` so
        neither a stale answer nor a stale relation profile can be served
        after a mutation.  When the mutation is a single inserted ``row``,
        passing it narrows the result-cache drop to the entries the row can
        affect (see :meth:`ResultCache.invalidate`); statistics are always
        re-profiled — even a non-matching row changes the relation's count.
        """
        self.result_cache.invalidate(row=row)
        self.statistics.invalidate()

    def note_mutation(self, relation: Relation,
                      row: Optional[Mapping[str, object]] = None) -> None:
        """Record an out-of-band mutation of ``relation`` right away.

        Callers that append to a watched relation directly (the serving
        layer's unsharded write path) call this instead of letting
        :meth:`_watched_mutated` discover the version change on the next
        query: syncing the watched version *first* lets the invalidation
        stay predicate-aware (``row=...``) — the deferred discovery path
        can only widen it to a blanket clear.
        """
        if id(relation) in self._watched_versions:
            self._watched_versions[id(relation)] = relation.version
        self.invalidate_results(row=row)

    def watch_relation(self, relation: Relation) -> None:
        """Auto-invalidate cached results whenever ``relation`` mutates.

        ``for_relation`` / ``for_system`` wire this up for the relations
        they build over, so after a direct ``Relation.append`` (the
        incremental maintenance path) the next execution re-runs instead of
        replaying a pre-mutation answer.  Scope of the guarantee: the
        result cache never adds staleness *beyond the backends themselves*
        — backends with static indexes (the grid cube's block table, a
        pre-built R-tree) still answer from the data they were built over
        until rebuilt or maintained through their own insert paths.
        Custom stacks should call this for every relation their backends
        serve.
        """
        if id(relation) not in self._watched_versions:
            self._watched_relations.append(relation)
            self._watched_versions[id(relation)] = relation.version

    def _watched_mutated(self) -> bool:
        """Whether any watched relation changed since the last check."""
        changed = False
        for relation in self._watched_relations:
            if self._watched_versions[id(relation)] != relation.version:
                self._watched_versions[id(relation)] = relation.version
                changed = True
        return changed

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def for_relation(cls, relation: Relation, *, block_size: int = 300,
                     rtree_max_entries: int = 32,
                     include_fragments: bool = False,
                     fragment_size: int = 2,
                     with_signature: bool = True,
                     with_skyline: bool = True,
                     planner_mode: str = MODE_COST) -> "Executor":
        """Build the default single-relation engine stack.

        Registers the grid ranking cube (preferred for top-k) and the
        table-scan fallback; by default also the signature ranking cube and
        both skyline engines.  Callers that only run grid top-k queries can
        pass ``with_signature=False, with_skyline=False`` to skip the
        R-tree / signature construction cost entirely.
        ``include_fragments`` additionally registers the ranking-fragments
        variant of the cube under the name ``"fragments"``.

        The signature top-k backend (Chapter 4) and the signature-pruned
        skyline backend (Chapter 7) run over the *same*
        :class:`~repro.signature.SignatureRankingCube` — one R-tree, one
        signature store.  Enabling either flag builds that structure exactly
        once; enabling both shares it, paying no duplicate construction
        cost, and with ``with_signature=False`` the top-k executor over it
        is simply never instantiated.
        """
        from repro.baselines import TableScanTopK
        from repro.cube import RankingCube, build_ranking_fragments

        executor = cls(planner_mode=planner_mode)
        cube = RankingCube(relation, block_size=block_size)
        executor.register(RankingCubeBackend(cube))
        if include_fragments:
            fragments = build_ranking_fragments(
                relation, fragment_size=fragment_size, block_size=block_size)
            executor.register(
                RankingCubeBackend(fragments, name="fragments", priority=15))
        signature = None
        if with_signature or with_skyline:
            from repro.signature import SignatureRankingCube

            signature = SignatureRankingCube(relation,
                                             rtree_max_entries=rtree_max_entries)
        if with_signature:
            from repro.signature import SignatureTopKExecutor

            executor.register(
                SignatureCubeBackend(SignatureTopKExecutor(signature)))
        executor.register(TableScanBackend(TableScanTopK(relation)))
        if with_skyline:
            from repro.skyline import BooleanFirstSkyline, SkylineEngine

            executor.register(SkylineBackend(SkylineEngine(signature)))
            executor.register(SkylineScanBackend(BooleanFirstSkyline(relation)))
        executor.watch_relation(relation)
        return executor

    def register_join_system(self, system, name: str = "index-merge") -> Backend:
        """Register a multi-relation join system as the ``join`` backend."""
        return self.register(IndexMergeBackend(system, name=name))

    @classmethod
    def for_system(cls, relations: Sequence[Relation], *,
                   rtree_max_entries: int = 32,
                   planner_mode: str = MODE_COST) -> "Executor":
        """Engine stack over several relations, including ranked joins.

        Single-relation backends are built for the first relation; the join
        backend spans all of them.
        """
        from repro.joins import RankingCubeJoinSystem

        executor = cls.for_relation(relations[0],
                                    rtree_max_entries=rtree_max_entries,
                                    planner_mode=planner_mode)
        system = RankingCubeJoinSystem(relations,
                                       rtree_max_entries=rtree_max_entries)
        executor.register_join_system(system)
        for relation in relations:
            executor.watch_relation(relation)
        return executor
