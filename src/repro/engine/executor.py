"""The engine front door: plan, route, execute, and batch queries.

:class:`Executor` is the single entry point the rest of the system (CLI,
examples, services) talks to.  It owns an :class:`EngineRegistry`, a
:class:`Planner` over it, and one :class:`LowerBoundCache` shared by every
registered backend that can use it — so a batch of queries reusing the same
ranking function never re-derives a block bound.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.storage.table import Relation

from repro.engine.backends import (
    IndexMergeBackend,
    RankingCubeBackend,
    SignatureCubeBackend,
    SkylineBackend,
    SkylineScanBackend,
    TableScanBackend,
)
from repro.engine.cache import LowerBoundCache
from repro.engine.plan import QueryPlan
from repro.engine.planner import Planner
from repro.engine.registry import Backend, EngineRegistry


class Executor:
    """Front door over the registry/planner with a shared bound cache."""

    def __init__(self, registry: Optional[EngineRegistry] = None,
                 planner: Optional[Planner] = None,
                 bound_cache: Optional[LowerBoundCache] = None) -> None:
        self.registry = registry or EngineRegistry()
        self.planner = planner or Planner(self.registry)
        self.bound_cache = bound_cache or LowerBoundCache()

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, backend: Backend, replace: bool = False) -> Backend:
        """Register a backend and hand it the shared lower-bound cache."""
        self.registry.register(backend, replace=replace)
        backend.attach_bound_cache(self.bound_cache)
        return backend

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def plan(self, query) -> QueryPlan:
        """Expose the planner's routing decision without executing."""
        return self.planner.plan(query)

    def explain(self, query) -> str:
        """One-line explanation of how ``query`` would be routed."""
        return self.planner.explain(query)

    def execute(self, query):
        """Plan ``query``, run it on the chosen backend, annotate the result."""
        plan = self.planner.plan(query)
        backend = self.registry.get(plan.backend)
        result = backend.run(query)
        result.extra["backend"] = plan.backend
        result.extra["plan"] = plan.describe()
        return result

    def execute_many(self, queries: Iterable) -> List:
        """Execute a batch of queries, sharing plans' lower-bound work.

        Results come back in submission order.  The shared
        :class:`LowerBoundCache` turns repeated (function, block) bound
        computations across the batch into dictionary hits.
        """
        return [self.execute(query) for query in queries]

    def cache_stats(self) -> Dict[str, float]:
        """Hit/miss statistics of the shared lower-bound cache."""
        return {
            "entries": float(len(self.bound_cache)),
            "hits": float(self.bound_cache.hits),
            "misses": float(self.bound_cache.misses),
            "hit_rate": self.bound_cache.hit_rate,
        }

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def for_relation(cls, relation: Relation, *, block_size: int = 300,
                     rtree_max_entries: int = 32,
                     include_fragments: bool = False,
                     fragment_size: int = 2,
                     with_signature: bool = True,
                     with_skyline: bool = True) -> "Executor":
        """Build the default single-relation engine stack.

        Registers the grid ranking cube (preferred for top-k) and the
        table-scan fallback; by default also the signature ranking cube and
        both skyline engines.  Callers that only run grid top-k queries can
        pass ``with_signature=False, with_skyline=False`` to skip the
        R-tree / signature construction cost entirely.
        ``include_fragments`` additionally registers the ranking-fragments
        variant of the cube under the name ``"fragments"``.
        """
        from repro.baselines import TableScanTopK
        from repro.cube import RankingCube, build_ranking_fragments

        executor = cls()
        cube = RankingCube(relation, block_size=block_size)
        executor.register(RankingCubeBackend(cube))
        if include_fragments:
            fragments = build_ranking_fragments(
                relation, fragment_size=fragment_size, block_size=block_size)
            executor.register(
                RankingCubeBackend(fragments, name="fragments", priority=15))
        if with_signature or with_skyline:
            from repro.signature import SignatureRankingCube, SignatureTopKExecutor

            signature = SignatureRankingCube(relation,
                                             rtree_max_entries=rtree_max_entries)
            if with_signature:
                executor.register(
                    SignatureCubeBackend(SignatureTopKExecutor(signature)))
        executor.register(TableScanBackend(TableScanTopK(relation)))
        if with_skyline:
            from repro.skyline import BooleanFirstSkyline, SkylineEngine

            executor.register(SkylineBackend(SkylineEngine(signature)))
            executor.register(SkylineScanBackend(BooleanFirstSkyline(relation)))
        return executor

    def register_join_system(self, system, name: str = "index-merge") -> Backend:
        """Register a multi-relation join system as the ``join`` backend."""
        return self.register(IndexMergeBackend(system, name=name))

    @classmethod
    def for_system(cls, relations: Sequence[Relation], *,
                   rtree_max_entries: int = 32) -> "Executor":
        """Engine stack over several relations, including ranked joins.

        Single-relation backends are built for the first relation; the join
        backend spans all of them.
        """
        from repro.joins import RankingCubeJoinSystem

        executor = cls.for_relation(relations[0],
                                    rtree_max_entries=rtree_max_entries)
        system = RankingCubeJoinSystem(relations,
                                       rtree_max_entries=rtree_max_entries)
        executor.register_join_system(system)
        return executor
