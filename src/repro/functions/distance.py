"""Distance-style (nearest-neighbor) ranking functions.

Queries like ``order by (price-20k)^2 + (milage-10k)^2`` (thesis Example 1)
minimize a weighted distance to a target point.  These functions are convex
and *semi-monotone*: they increase with the per-coordinate distance from the
target, which enables the neighborhood expansion of Section 5.2.2.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.functions.base import FunctionShape, RankingFunction
from repro.geometry import Box


class SquaredDistanceFunction(RankingFunction):
    """``f(x) = sum_i weights[i] * (x_i - target_i)^2``."""

    def __init__(self, dims: Sequence[str], targets: Sequence[float],
                 weights: Optional[Sequence[float]] = None) -> None:
        if len(dims) != len(targets):
            raise ValueError("dims and targets must have the same length")
        self.dims: Tuple[str, ...] = tuple(dims)
        self.targets: Tuple[float, ...] = tuple(float(t) for t in targets)
        if weights is None:
            weights = [1.0] * len(dims)
        if len(weights) != len(dims):
            raise ValueError("weights must align with dims")
        if any(w < 0 for w in weights):
            raise ValueError("distance weights must be non-negative")
        self.weights: Tuple[float, ...] = tuple(float(w) for w in weights)

    def evaluate(self, values: Sequence[float]) -> float:
        total = 0.0
        for weight, value, target in zip(self.weights, values, self.targets):
            diff = value - target
            total += weight * diff * diff
        return total

    def evaluate_batch(self, values: np.ndarray) -> np.ndarray:
        # Same per-dimension accumulation order as ``evaluate`` for bitwise
        # identical scores.
        values = np.asarray(values, dtype=np.float64)
        total = np.zeros(values.shape[0], dtype=np.float64)
        for j, (weight, target) in enumerate(zip(self.weights, self.targets)):
            diff = values[:, j] - target
            total += weight * diff * diff
        return total

    def lower_bound(self, box: Box) -> float:
        """Exact minimum over the box: clamp the target into each interval."""
        total = 0.0
        for dim, weight, target in zip(self.dims, self.weights, self.targets):
            interval = box.interval(dim)
            diff = interval.clamp(target) - target
            total += weight * diff * diff
        return total

    @property
    def shape(self) -> FunctionShape:
        return FunctionShape.SEMI_MONOTONE

    def minimum_point(self) -> Dict[str, float]:
        return {dim: target for dim, target in zip(self.dims, self.targets)}

    def describe(self) -> str:
        terms = " + ".join(
            f"{w:g}*({d}-{t:g})^2"
            for d, t, w in zip(self.dims, self.targets, self.weights)
        )
        return terms


class ManhattanDistanceFunction(RankingFunction):
    """``f(x) = sum_i weights[i] * |x_i - target_i|``."""

    def __init__(self, dims: Sequence[str], targets: Sequence[float],
                 weights: Optional[Sequence[float]] = None) -> None:
        if len(dims) != len(targets):
            raise ValueError("dims and targets must have the same length")
        self.dims: Tuple[str, ...] = tuple(dims)
        self.targets: Tuple[float, ...] = tuple(float(t) for t in targets)
        if weights is None:
            weights = [1.0] * len(dims)
        if any(w < 0 for w in weights):
            raise ValueError("distance weights must be non-negative")
        self.weights: Tuple[float, ...] = tuple(float(w) for w in weights)

    def evaluate(self, values: Sequence[float]) -> float:
        total = 0.0
        for weight, value, target in zip(self.weights, values, self.targets):
            total += weight * abs(value - target)
        return total

    def evaluate_batch(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        total = np.zeros(values.shape[0], dtype=np.float64)
        for j, (weight, target) in enumerate(zip(self.weights, self.targets)):
            total += weight * np.abs(values[:, j] - target)
        return total

    def lower_bound(self, box: Box) -> float:
        total = 0.0
        for dim, weight, target in zip(self.dims, self.weights, self.targets):
            interval = box.interval(dim)
            total += weight * abs(interval.clamp(target) - target)
        return total

    @property
    def shape(self) -> FunctionShape:
        return FunctionShape.SEMI_MONOTONE

    def minimum_point(self) -> Dict[str, float]:
        return {dim: target for dim, target in zip(self.dims, self.targets)}

    def describe(self) -> str:
        terms = " + ".join(
            f"{w:g}*|{d}-{t:g}|"
            for d, t, w in zip(self.dims, self.targets, self.weights)
        )
        return terms
