"""Expression-tree ranking functions with interval-arithmetic lower bounds.

Chapter 5 evaluates queries whose ranking functions are neither monotone nor
convex, e.g. ``fg = (A - B^2)^2`` (min-square-error style) and the
constrained ``fc = (A + B) / eta(B)``.  The only requirement the framework
places on a function is that a lower bound over an axis-aligned box can be
derived; expression trees evaluated with interval arithmetic provide exactly
that for any algebraic combination of the ranking dimensions.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.functions.base import FunctionShape, RankingFunction
from repro.geometry import Box, Interval


class Expr(ABC):
    """A node of an algebraic expression over named variables."""

    @abstractmethod
    def value(self, env: Mapping[str, float]) -> float:
        """Evaluate at a point given by ``{var: value}``."""

    @abstractmethod
    def batch(self, env: Mapping[str, np.ndarray]) -> np.ndarray:
        """Evaluate elementwise on ``{var: column}`` arrays of equal length.

        Every node applies the same IEEE operation per element as
        :meth:`value`, so batch evaluation matches point evaluation.
        """

    @abstractmethod
    def interval(self, env: Mapping[str, Interval]) -> Interval:
        """Enclose the image over a box given by ``{var: Interval}``."""

    @abstractmethod
    def variables(self) -> Set[str]:
        """Set of variable names referenced by the expression."""

    # -- operator sugar ---------------------------------------------------
    def __add__(self, other: "Expr | float") -> "Expr":
        return Add(self, _wrap(other))

    def __radd__(self, other: float) -> "Expr":
        return Add(_wrap(other), self)

    def __sub__(self, other: "Expr | float") -> "Expr":
        return Sub(self, _wrap(other))

    def __rsub__(self, other: float) -> "Expr":
        return Sub(_wrap(other), self)

    def __mul__(self, other: "Expr | float") -> "Expr":
        return Mul(self, _wrap(other))

    def __rmul__(self, other: float) -> "Expr":
        return Mul(_wrap(other), self)

    def __pow__(self, exponent: int) -> "Expr":
        return Pow(self, exponent)

    def __neg__(self) -> "Expr":
        return Mul(Const(-1.0), self)


def _wrap(value: "Expr | float") -> Expr:
    if isinstance(value, Expr):
        return value
    return Const(float(value))


class Var(Expr):
    """A named variable (a ranking dimension)."""

    def __init__(self, name: str) -> None:
        self.name = name

    def value(self, env: Mapping[str, float]) -> float:
        return float(env[self.name])

    def batch(self, env: Mapping[str, np.ndarray]) -> np.ndarray:
        return np.asarray(env[self.name], dtype=np.float64)

    def interval(self, env: Mapping[str, Interval]) -> Interval:
        return env[self.name]

    def variables(self) -> Set[str]:
        return {self.name}

    def __repr__(self) -> str:
        return self.name


class Const(Expr):
    """A numeric constant."""

    def __init__(self, value: float) -> None:
        self._value = float(value)

    def value(self, env: Mapping[str, float]) -> float:
        return self._value

    def batch(self, env: Mapping[str, np.ndarray]) -> np.ndarray:
        return np.float64(self._value)

    def interval(self, env: Mapping[str, Interval]) -> Interval:
        return Interval(self._value, self._value)

    def variables(self) -> Set[str]:
        return set()

    def __repr__(self) -> str:
        return f"{self._value:g}"


class Add(Expr):
    """Binary addition."""

    def __init__(self, left: Expr, right: Expr) -> None:
        self.left, self.right = left, right

    def value(self, env: Mapping[str, float]) -> float:
        return self.left.value(env) + self.right.value(env)

    def batch(self, env: Mapping[str, np.ndarray]) -> np.ndarray:
        return self.left.batch(env) + self.right.batch(env)

    def interval(self, env: Mapping[str, Interval]) -> Interval:
        return self.left.interval(env) + self.right.interval(env)

    def variables(self) -> Set[str]:
        return self.left.variables() | self.right.variables()

    def __repr__(self) -> str:
        return f"({self.left!r} + {self.right!r})"


class Sub(Expr):
    """Binary subtraction."""

    def __init__(self, left: Expr, right: Expr) -> None:
        self.left, self.right = left, right

    def value(self, env: Mapping[str, float]) -> float:
        return self.left.value(env) - self.right.value(env)

    def batch(self, env: Mapping[str, np.ndarray]) -> np.ndarray:
        return self.left.batch(env) - self.right.batch(env)

    def interval(self, env: Mapping[str, Interval]) -> Interval:
        return self.left.interval(env) - self.right.interval(env)

    def variables(self) -> Set[str]:
        return self.left.variables() | self.right.variables()

    def __repr__(self) -> str:
        return f"({self.left!r} - {self.right!r})"


class Mul(Expr):
    """Binary multiplication."""

    def __init__(self, left: Expr, right: Expr) -> None:
        self.left, self.right = left, right

    def value(self, env: Mapping[str, float]) -> float:
        return self.left.value(env) * self.right.value(env)

    def batch(self, env: Mapping[str, np.ndarray]) -> np.ndarray:
        return self.left.batch(env) * self.right.batch(env)

    def interval(self, env: Mapping[str, Interval]) -> Interval:
        return self.left.interval(env) * self.right.interval(env)

    def variables(self) -> Set[str]:
        return self.left.variables() | self.right.variables()

    def __repr__(self) -> str:
        return f"({self.left!r} * {self.right!r})"


class Pow(Expr):
    """Integer power (``exponent >= 0``)."""

    def __init__(self, base: Expr, exponent: int) -> None:
        if exponent < 0:
            raise ValueError("only non-negative integer exponents are supported")
        self.base, self.exponent = base, int(exponent)

    def value(self, env: Mapping[str, float]) -> float:
        # Left-to-right repeated multiplication, mirrored exactly by
        # ``batch`` so scalar and vectorized scores agree bit for bit.
        base = self.base.value(env)
        result = 1.0
        for _ in range(self.exponent):
            result = result * base
        return result

    def batch(self, env: Mapping[str, np.ndarray]) -> np.ndarray:
        base = self.base.batch(env)
        result = np.float64(1.0)
        for _ in range(self.exponent):
            result = result * base
        return result

    def interval(self, env: Mapping[str, Interval]) -> Interval:
        return self.base.interval(env).power(self.exponent)

    def variables(self) -> Set[str]:
        return self.base.variables()

    def __repr__(self) -> str:
        return f"({self.base!r})^{self.exponent}"


class Abs(Expr):
    """Absolute value."""

    def __init__(self, inner: Expr) -> None:
        self.inner = inner

    def value(self, env: Mapping[str, float]) -> float:
        return abs(self.inner.value(env))

    def batch(self, env: Mapping[str, np.ndarray]) -> np.ndarray:
        return np.abs(self.inner.batch(env))

    def interval(self, env: Mapping[str, Interval]) -> Interval:
        return self.inner.interval(env).abs()

    def variables(self) -> Set[str]:
        return self.inner.variables()

    def __repr__(self) -> str:
        return f"|{self.inner!r}|"


class ExpressionFunction(RankingFunction):
    """A ranking function defined by an algebraic expression tree.

    The lower bound over a box is the low end of the interval-arithmetic
    enclosure — always sound, not always tight (interval arithmetic ignores
    variable correlation), which is exactly the guarantee the search
    algorithms need.
    """

    def __init__(self, expr: Expr, dims: Optional[Sequence[str]] = None,
                 shape: FunctionShape = FunctionShape.GENERAL) -> None:
        self.expr = expr
        inferred = tuple(sorted(expr.variables()))
        self.dims: Tuple[str, ...] = tuple(dims) if dims is not None else inferred
        missing = set(inferred) - set(self.dims)
        if missing:
            raise ValueError(f"expression uses dims {sorted(missing)} not listed in dims")
        self._shape = shape

    def evaluate(self, values: Sequence[float]) -> float:
        env = {dim: float(v) for dim, v in zip(self.dims, values)}
        return self.expr.value(env)

    def evaluate_batch(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        env = {dim: values[:, j] for j, dim in enumerate(self.dims)}
        result = np.asarray(self.expr.batch(env), dtype=np.float64)
        if result.ndim == 0:
            result = np.full(values.shape[0], float(result), dtype=np.float64)
        return result

    def lower_bound(self, box: Box) -> float:
        env = {dim: box.interval(dim) for dim in self.dims}
        return self.expr.interval(env).low

    @property
    def shape(self) -> FunctionShape:
        return self._shape

    def describe(self) -> str:
        return repr(self.expr)


class ConstrainedFunction(RankingFunction):
    """``f / eta(dim)`` where ``eta`` is 1 inside ``[low, high]`` and 0 outside.

    This reproduces the constrained function ``fc`` of Section 5.4.2: tuples
    whose constrained dimension falls outside the window score ``+inf``.
    """

    def __init__(self, base: RankingFunction, dim: str, low: float, high: float) -> None:
        if dim not in base.dims:
            raise ValueError(f"constrained dim {dim!r} is not used by the base function")
        if low > high:
            raise ValueError("constraint window is empty")
        self.base = base
        self.constrained_dim = dim
        self.window = Interval(float(low), float(high))
        self.dims: Tuple[str, ...] = base.dims

    def evaluate(self, values: Sequence[float]) -> float:
        env = dict(zip(self.dims, values))
        if not self.window.contains(env[self.constrained_dim]):
            return float("inf")
        return self.base.evaluate(values)

    def evaluate_batch(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        constrained = values[:, self.dims.index(self.constrained_dim)]
        inside = (constrained >= self.window.low) & (constrained <= self.window.high)
        scores = self.base.evaluate_batch(values)
        return np.where(inside, scores, np.inf)

    def lower_bound(self, box: Box) -> float:
        interval = box.interval(self.constrained_dim)
        clipped = interval.intersection(self.window)
        if clipped is None:
            return float("inf")
        return self.base.lower_bound(box.with_interval(self.constrained_dim, clipped))

    @property
    def shape(self) -> FunctionShape:
        return FunctionShape.GENERAL

    def describe(self) -> str:
        return (
            f"({self.base.describe()}) / eta({self.constrained_dim} in "
            f"[{self.window.low:g},{self.window.high:g}])"
        )
