"""Ranking functions with box lower bounds.

Public surface:

* :class:`RankingFunction`, :class:`FunctionShape` — the interface every
  search algorithm uses.
* :class:`LinearFunction`, :func:`sum_function`, :func:`skewed_linear_function`
* :class:`SquaredDistanceFunction`, :class:`ManhattanDistanceFunction`
* Expression trees (:class:`Var`, :class:`Const`, operators) and
  :class:`ExpressionFunction` / :class:`ConstrainedFunction` for ad-hoc
  non-convex functions.
"""

from repro.functions.base import FunctionShape, FunctionWithShape, RankingFunction
from repro.functions.distance import ManhattanDistanceFunction, SquaredDistanceFunction
from repro.functions.expression import (
    Abs,
    Add,
    Const,
    ConstrainedFunction,
    Expr,
    ExpressionFunction,
    Mul,
    Pow,
    Sub,
    Var,
)
from repro.functions.linear import (
    LinearFunction,
    WeightedAverageFunction,
    skewed_linear_function,
    sum_function,
)

__all__ = [
    "FunctionShape",
    "FunctionWithShape",
    "RankingFunction",
    "LinearFunction",
    "WeightedAverageFunction",
    "sum_function",
    "skewed_linear_function",
    "SquaredDistanceFunction",
    "ManhattanDistanceFunction",
    "Expr",
    "Var",
    "Const",
    "Add",
    "Sub",
    "Mul",
    "Pow",
    "Abs",
    "ExpressionFunction",
    "ConstrainedFunction",
]
