"""Ranking-function interface.

The thesis only requires that a ranking function ``f`` is a *lower-bound
function*: given the domain region of its variables, a lower bound of ``f``
over that region can be derived (Section 1.2.1).  Every search algorithm in
the library — neighborhood search over grid blocks (Chapter 3),
branch-and-bound over R-tree nodes (Chapter 4), joint-state merging
(Chapter 5) — only interacts with the function through

* point evaluation, and
* ``lower_bound(box)`` over an axis-aligned :class:`repro.geometry.Box`.

Functions additionally advertise their *shape* (monotone / semi-monotone /
general), which Chapter 5 uses to pick between neighborhood expansion and
threshold expansion.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.geometry import Box
from repro.storage.table import Relation


class FunctionShape(enum.Enum):
    """Structural classes of ranking functions used to pick search strategies."""

    #: ``f(x) <= f(x')`` whenever ``x_i <= x'_i`` for every i (TA-style).
    MONOTONE = "monotone"
    #: ``f`` increases with the distance of each coordinate from a fixed
    #: minimum point (nearest-neighbor style functions, Section 5.2.2).
    SEMI_MONOTONE = "semi_monotone"
    #: No usable structure beyond the lower-bound property.
    GENERAL = "general"


class RankingFunction(ABC):
    """Abstract ranking function over a fixed tuple of ranking dimensions."""

    #: Names of the ranking dimensions this function reads, in argument order.
    dims: Tuple[str, ...]

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    @abstractmethod
    def evaluate(self, values: Sequence[float]) -> float:
        """Evaluate the function on values aligned with :attr:`dims`."""

    def __call__(self, values: Sequence[float]) -> float:
        return self.evaluate(values)

    def evaluate_mapping(self, values: Mapping[str, float]) -> float:
        """Evaluate on a ``{dim: value}`` mapping."""
        return self.evaluate([values[d] for d in self.dims])

    def evaluate_tuple(self, relation: Relation, tid: int) -> float:
        """Evaluate on tuple ``tid`` of ``relation``."""
        return self.evaluate(relation.ranking_values(tid, self.dims))

    def evaluate_batch(self, values: np.ndarray) -> np.ndarray:
        """Evaluate on a ``(n, len(dims))`` array of rows, returning ``n`` scores.

        Subclasses override this with a columnar implementation whose
        per-row floating-point operation order matches :meth:`evaluate`, so
        batch and per-tuple scoring agree bit for bit.  This fallback simply
        loops, which is always exact.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return np.empty(0, dtype=np.float64)
        return np.array([self.evaluate(row) for row in values], dtype=np.float64)

    # ------------------------------------------------------------------
    # lower bounds
    # ------------------------------------------------------------------
    @abstractmethod
    def lower_bound(self, box: Box) -> float:
        """A lower bound of the function over ``box``.

        The bound must be *sound* (never exceed the true minimum over the
        box) but need not be tight.  ``box`` must cover every dimension in
        :attr:`dims`.
        """

    # ------------------------------------------------------------------
    # structure hints
    # ------------------------------------------------------------------
    @property
    def shape(self) -> FunctionShape:
        """Structural class; defaults to :attr:`FunctionShape.GENERAL`."""
        return FunctionShape.GENERAL

    def minimum_point(self) -> Optional[Dict[str, float]]:
        """Unconstrained minimizer for semi-monotone functions, else None."""
        return None

    def global_minimum(self, domain: Box) -> float:
        """Lower bound over the full ``domain`` (used to seed searches)."""
        return self.lower_bound(domain)

    def describe(self) -> str:
        """Short human-readable description used in benchmark tables."""
        return f"{type(self).__name__}({', '.join(self.dims)})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


class FunctionWithShape(RankingFunction):
    """Mixin-style base that stores an explicit shape and minimum point."""

    def __init__(self, dims: Sequence[str], shape: FunctionShape,
                 minimum: Optional[Mapping[str, float]] = None) -> None:
        self.dims = tuple(dims)
        self._shape = shape
        self._minimum = dict(minimum) if minimum is not None else None

    @property
    def shape(self) -> FunctionShape:
        return self._shape

    def minimum_point(self) -> Optional[Dict[str, float]]:
        return dict(self._minimum) if self._minimum is not None else None
