"""Linear ranking functions.

Linear functions ``f = w1*N1 + ... + wr*Nr`` are the workhorse of the
evaluation (Section 3.5.1 generates queries with controlled *skewness*
``u = max(w)/min(w)``).  They are convex for any weights; they are monotone
in the TA sense only when every weight is non-negative.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.functions.base import FunctionShape, RankingFunction
from repro.geometry import Box


class LinearFunction(RankingFunction):
    """``f(x) = sum_i weights[i] * x[dims[i]] (+ constant)``."""

    def __init__(self, dims: Sequence[str], weights: Sequence[float],
                 constant: float = 0.0) -> None:
        if len(dims) != len(weights):
            raise ValueError("dims and weights must have the same length")
        if not dims:
            raise ValueError("a linear function needs at least one dimension")
        self.dims: Tuple[str, ...] = tuple(dims)
        self.weights: Tuple[float, ...] = tuple(float(w) for w in weights)
        self.constant = float(constant)

    @classmethod
    def from_weights(cls, weights: Mapping[str, float], constant: float = 0.0
                     ) -> "LinearFunction":
        """Build from a ``{dim: weight}`` mapping (dims sorted by name)."""
        dims = tuple(sorted(weights))
        return cls(dims, [weights[d] for d in dims], constant)

    def evaluate(self, values: Sequence[float]) -> float:
        total = self.constant
        for weight, value in zip(self.weights, values):
            total += weight * value
        return total

    def evaluate_batch(self, values: np.ndarray) -> np.ndarray:
        # Accumulate column by column in the same order as ``evaluate`` so
        # the per-row rounding (and thus the scores) is bitwise identical.
        values = np.asarray(values, dtype=np.float64)
        total = np.full(values.shape[0], self.constant, dtype=np.float64)
        for j, weight in enumerate(self.weights):
            total += weight * values[:, j]
        return total

    def lower_bound(self, box: Box) -> float:
        """Exact minimum over the box: pick the low corner for positive
        weights and the high corner for negative weights."""
        total = self.constant
        for dim, weight in zip(self.dims, self.weights):
            interval = box.interval(dim)
            total += weight * (interval.low if weight >= 0 else interval.high)
        return total

    @property
    def shape(self) -> FunctionShape:
        if all(w >= 0 for w in self.weights):
            return FunctionShape.MONOTONE
        return FunctionShape.GENERAL

    def skewness(self) -> float:
        """Query skewness ``u = max|w| / min|w|`` (Section 3.5.1)."""
        magnitudes = [abs(w) for w in self.weights if w != 0]
        if not magnitudes:
            return 1.0
        return max(magnitudes) / min(magnitudes)

    def describe(self) -> str:
        terms = " + ".join(f"{w:g}*{d}" for d, w in zip(self.dims, self.weights))
        if self.constant:
            terms += f" + {self.constant:g}"
        return terms


def sum_function(dims: Sequence[str]) -> LinearFunction:
    """The unweighted sum ``N1 + ... + Nr`` used in the worked examples."""
    return LinearFunction(dims, [1.0] * len(dims))


def skewed_linear_function(dims: Sequence[str], skewness: float,
                           rng=None) -> LinearFunction:
    """A linear function whose weights span the requested skewness ``u``.

    Weights are spread geometrically between 1 and ``skewness`` and then
    shuffled, reproducing the query generator of Section 3.5.1.
    """
    import numpy as np

    rng = rng or np.random.default_rng(0)
    count = len(dims)
    if count == 1 or skewness <= 1.0:
        weights = [1.0] * count
    else:
        weights = list(np.geomspace(1.0, float(skewness), num=count))
        rng.shuffle(weights)
    return LinearFunction(dims, weights)


class WeightedAverageFunction(LinearFunction):
    """Convenience: weights normalized to sum to one."""

    def __init__(self, dims: Sequence[str], weights: Sequence[float]) -> None:
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        super().__init__(dims, [w / total for w in weights])
