"""Skyline queries with boolean predicates (Sections 7.2.2–7.2.4).

The signature-pruned engine follows the branch-and-bound skyline (BBS)
paradigm: R-tree entries are visited in increasing *mindist* order, a node
is pruned if its best mapped corner is dominated by an already-found skyline
point (domination pruning) or if its signature bit says no tuple inside
satisfies the boolean predicate (boolean pruning).  Dynamic skylines map
every value to its distance from a query target before dominance is tested.

Drill-down / roll-up sessions (Section 7.2.4) reuse the pages and entries
retrieved by the previous query: the buffer pool stays warm, so an OLAP
navigation step costs far fewer disk accesses than a fresh query.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import QueryError
from repro.query import Predicate, SkylineQuery
from repro.signature.cube import SignatureRankingCube
from repro.skyline.dominance import (
    box_min_corner,
    dominated_by_any,
    mindist,
    skyline_of,
    transform_dynamic,
)
from repro.storage.table import Relation


@dataclass
class SkylineResult:
    """Skyline answer plus the statistics reported in Figures 7.3–7.5."""

    tids: Tuple[int, ...]
    disk_accesses: int = 0
    signature_accesses: int = 0
    peak_heap_size: int = 0
    nodes_expanded: int = 0
    elapsed_seconds: float = 0.0
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def backend(self) -> Optional[str]:
        """Name of the engine backend that produced this result, if planned."""
        value = self.extra.get("backend")
        return str(value) if value is not None else None

    @property
    def plan(self) -> Optional[str]:
        """The planner's explanation of how this query was routed, if planned."""
        value = self.extra.get("plan")
        return str(value) if value is not None else None

    def __len__(self) -> int:
        return len(self.tids)


class SkylineEngine:
    """BBS-style skyline computation over a signature ranking cube."""

    def __init__(self, cube: SignatureRankingCube, use_signature: bool = True) -> None:
        self.cube = cube
        self.relation = cube.relation
        self.rtree = cube.rtree
        self.use_signature = use_signature

    # ------------------------------------------------------------------
    # main query entry point
    # ------------------------------------------------------------------
    def query(self, query: SkylineQuery) -> SkylineResult:
        """Compute the (dynamic) skyline restricted by the boolean predicate."""
        for dim in query.preference_dims:
            if dim not in self.rtree.dims:
                raise QueryError(
                    f"preference dimension {dim!r} is not covered by the R-tree")
        start = time.perf_counter()
        rtree_before = self.rtree.pager.stats.physical_reads
        sig_before = self.cube.store.pager.stats.physical_reads

        dims = tuple(query.preference_dims)
        targets = list(query.targets) if query.targets is not None else None
        reader = (self.cube.signature_reader(query.predicate)
                  if self.use_signature and not query.predicate.is_empty() else None)
        verify = reader is None and not query.predicate.is_empty()

        skyline: List[Tuple[int, Tuple[float, ...]]] = []
        peak_heap = 0
        expanded = 0
        verifications = 0
        counter = 0

        root = self.rtree.root()
        if reader is not None and not reader.test(()):
            elapsed = time.perf_counter() - start
            return SkylineResult(tids=(), elapsed_seconds=elapsed)

        root_corner = box_min_corner(root.box.project(dims), dims, targets)
        heap: List[Tuple[float, int, object]] = [(mindist(root_corner), counter, root)]
        dim_positions = [self.rtree.dims.index(d) for d in dims]

        while heap:
            peak_heap = max(peak_heap, len(heap))
            _, _, item = heapq.heappop(heap)

            if isinstance(item, tuple):  # a data point: (tid, mapped values)
                tid, mapped = item
                if dominated_by_any(mapped, (vals for _, vals in skyline)):
                    continue
                skyline.append((tid, mapped))
                continue

            node = item
            node_corner = box_min_corner(node.box.project(dims), dims, targets)
            if dominated_by_any(node_corner, (vals for _, vals in skyline)):
                continue
            expanded += 1
            if node.is_leaf:
                for entry in self.rtree.leaf_entries(node):
                    entry_path = node.path + (entry.position,)
                    if reader is not None and not reader.test(entry_path):
                        continue
                    if verify:
                        verifications += 1
                        if not query.predicate.matches(self.relation, entry.tid):
                            continue
                    raw = [entry.values[i] for i in dim_positions]
                    mapped = transform_dynamic(raw, targets)
                    if dominated_by_any(mapped, (vals for _, vals in skyline)):
                        continue
                    counter += 1
                    heapq.heappush(heap, (mindist(mapped), counter, (entry.tid, mapped)))
            else:
                for child in self.rtree.children(node):
                    if reader is not None and not reader.test(child.path):
                        continue
                    child_corner = box_min_corner(child.box.project(dims), dims, targets)
                    if dominated_by_any(child_corner, (vals for _, vals in skyline)):
                        continue
                    counter += 1
                    heapq.heappush(heap, (mindist(child_corner), counter, child))

        elapsed = time.perf_counter() - start
        rtree_io = self.rtree.pager.stats.physical_reads - rtree_before
        sig_io = self.cube.store.pager.stats.physical_reads - sig_before
        return SkylineResult(
            tids=tuple(sorted(tid for tid, _ in skyline)),
            disk_accesses=rtree_io + sig_io + verifications,
            signature_accesses=sig_io,
            peak_heap_size=peak_heap,
            nodes_expanded=expanded,
            elapsed_seconds=elapsed,
            extra={"boolean_verifications": float(verifications)},
        )


class BooleanFirstSkyline:
    """Baseline: filter by the boolean predicate, then block-nested-loop skyline."""

    def __init__(self, relation: Relation) -> None:
        self.relation = relation

    def query(self, query: SkylineQuery) -> SkylineResult:
        """Scan, filter, then compute the skyline of the survivors."""
        start = time.perf_counter()
        mask = self.relation.mask_equal(query.predicate.as_dict)
        tids = np.nonzero(mask)[0]
        values = self.relation.ranking_values_bulk(tids, query.preference_dims)
        targets = list(query.targets) if query.targets is not None else None
        mapped = [
            (int(tid), transform_dynamic(row, targets))
            for tid, row in zip(tids, values)
        ]
        result = skyline_of(mapped)
        elapsed = time.perf_counter() - start
        from repro.baselines.table_scan import table_pages

        return SkylineResult(
            tids=tuple(sorted(tid for tid, _ in result)),
            disk_accesses=table_pages(self.relation),
            peak_heap_size=len(mapped),
            nodes_expanded=len(mapped),
            elapsed_seconds=elapsed,
        )


class SkylineSession:
    """OLAP navigation session: drill-down / roll-up with warm buffers."""

    def __init__(self, engine: SkylineEngine) -> None:
        self.engine = engine
        self._last_query: Optional[SkylineQuery] = None

    def fresh(self, query: SkylineQuery) -> SkylineResult:
        """Run a query from cold buffers (a brand-new query)."""
        self.engine.rtree.buffer.invalidate()
        self.engine.cube.store.buffer.invalidate()
        result = self.engine.query(query)
        self._last_query = query
        return result

    def drill_down(self, extra_conditions: Dict[str, int]) -> SkylineResult:
        """Add boolean conditions to the previous query, reusing its pages."""
        if self._last_query is None:
            raise QueryError("drill_down requires a previous query in the session")
        merged = dict(self._last_query.predicate.as_dict)
        merged.update({k: int(v) for k, v in extra_conditions.items()})
        query = SkylineQuery(Predicate.of(merged), self._last_query.preference_dims,
                             self._last_query.targets)
        result = self.engine.query(query)
        self._last_query = query
        return result

    def roll_up(self, drop_dims: Sequence[str]) -> SkylineResult:
        """Remove boolean conditions from the previous query, reusing its pages."""
        if self._last_query is None:
            raise QueryError("roll_up requires a previous query in the session")
        remaining = {
            dim: value for dim, value in self._last_query.predicate.as_dict.items()
            if dim not in set(drop_dims)
        }
        query = SkylineQuery(Predicate.of(remaining), self._last_query.preference_dims,
                             self._last_query.targets)
        result = self.engine.query(query)
        self._last_query = query
        return result
