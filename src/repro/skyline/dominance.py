"""Dominance tests for skyline computation (Chapter 7).

All preference dimensions are minimized.  For *dynamic* skylines the raw
values are first mapped to their absolute distance from a per-dimension
target (Section 7.2.3); dominance is then evaluated in the mapped space.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.geometry import Box


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Whether point ``a`` dominates point ``b`` (<= everywhere, < somewhere)."""
    strictly_better = False
    for x, y in zip(a, b):
        if x > y:
            return False
        if x < y:
            strictly_better = True
    return strictly_better


def dominated_by_any(point: Sequence[float], others: Iterable[Sequence[float]]) -> bool:
    """Whether any point in ``others`` dominates ``point``."""
    return any(dominates(other, point) for other in others)


def skyline_of(points: Sequence[Tuple[int, Sequence[float]]]
               ) -> List[Tuple[int, Tuple[float, ...]]]:
    """Block-nested-loop skyline of ``(tid, values)`` pairs (the oracle).

    Sorting by the coordinate sum first guarantees a point can only be
    dominated by points appearing earlier, so a single pass suffices.
    """
    ordered = sorted(points, key=lambda pair: (sum(pair[1]), tuple(pair[1])))
    skyline: List[Tuple[int, Tuple[float, ...]]] = []
    for tid, values in ordered:
        values = tuple(float(v) for v in values)
        if not dominated_by_any(values, (vals for _, vals in skyline)):
            skyline.append((tid, values))
    return skyline


def transform_dynamic(values: Sequence[float], targets: Optional[Sequence[float]]
                      ) -> Tuple[float, ...]:
    """Map raw values into dynamic-skyline space (identity when no targets)."""
    if targets is None:
        return tuple(float(v) for v in values)
    return tuple(abs(float(v) - float(t)) for v, t in zip(values, targets))


def box_min_corner(box: Box, dims: Sequence[str],
                   targets: Optional[Sequence[float]] = None) -> Tuple[float, ...]:
    """Best possible (per-dimension minimal) mapped corner of a box.

    For static skylines this is the box's low corner; for dynamic skylines
    it is the per-dimension distance of the target clamped into the box —
    the box cannot contain any point better than this corner, so if the
    corner is dominated the whole box can be pruned (Figure 7.1).
    """
    corner: List[float] = []
    for i, dim in enumerate(dims):
        interval = box.interval(dim)
        if targets is None:
            corner.append(interval.low)
        else:
            corner.append(abs(interval.clamp(targets[i]) - targets[i]))
    return tuple(corner)


def mindist(corner: Sequence[float]) -> float:
    """Sum of the mapped coordinates — the BBS priority of a node or point."""
    return float(sum(corner))
