"""Chapter 7: skyline and dynamic-skyline queries with boolean predicates."""

from repro.skyline.dominance import (
    box_min_corner,
    dominated_by_any,
    dominates,
    mindist,
    skyline_of,
    transform_dynamic,
)
from repro.skyline.engine import (
    BooleanFirstSkyline,
    SkylineEngine,
    SkylineResult,
    SkylineSession,
)

__all__ = [
    "box_min_corner",
    "dominated_by_any",
    "dominates",
    "mindist",
    "skyline_of",
    "transform_dynamic",
    "BooleanFirstSkyline",
    "SkylineEngine",
    "SkylineResult",
    "SkylineSession",
]
