"""Partial-signature decomposition and paged storage (Section 4.2.3).

A cell's signature is decomposed into *partial signatures*, each holding a
breadth-first chunk of the tree sized to roughly ``alpha * page_size`` so it
fits a data page with room for in-place growth.  Each partial signature is
referenced by the path (equivalently, SID) of its shallowest node; at query
time partial signatures are loaded lazily — only when the search asks about
a node they encode — and every load costs one counted page access.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import SignatureError
from repro.signature.encoding import code_size_bits, encode_adaptive
from repro.signature.signature import Path, Signature, path_to_sid
from repro.storage.buffer import BufferPool
from repro.storage.pager import Pager

CellKey = Tuple[int, ...]
CuboidKey = Tuple[str, ...]


@dataclass
class PartialSignature:
    """One decomposed chunk of a signature tree."""

    ref_path: Path
    nodes: Dict[Path, List[int]]
    size_bits: int

    @property
    def ref_sid(self) -> int:
        """SID of the reference node (with respect to the owner's fanout)."""
        return len(self.ref_path)  # informational; real SIDs need the fanout


def decompose_signature(signature: Signature, budget_bits: int
                        ) -> List[PartialSignature]:
    """Split a signature into breadth-first partial signatures.

    The first partial starts at the root; whenever the accumulated encoded
    size reaches ``budget_bits``, the nodes still waiting in the traversal
    queue become the reference nodes of subsequent partials (Section 4.2.3).
    """
    if budget_bits <= 0:
        raise SignatureError("the partial-signature budget must be positive")
    partials: List[PartialSignature] = []
    assigned: Set[Path] = set()
    pending: deque = deque([()])
    while pending:
        start = pending.popleft()
        if start in assigned or start not in signature.nodes:
            continue
        nodes: Dict[Path, List[int]] = {}
        size = 0
        queue: deque = deque([start])
        while queue:
            if size >= budget_bits:
                break
            path = queue.popleft()
            if path in assigned or path not in signature.nodes:
                continue
            bits = signature.node_bits(path)
            size += code_size_bits(encode_adaptive(bits, signature.fanout))
            nodes[path] = bits
            assigned.add(path)
            for position in sorted(signature.nodes[path]):
                child = path + (position,)
                if child in signature.nodes:
                    queue.append(child)
        pending.extend(queue)
        if nodes:
            partials.append(PartialSignature(ref_path=start, nodes=nodes, size_bits=size))
    return partials


def reassemble_signature(partials: Iterable[PartialSignature], fanout: int) -> Signature:
    """Rebuild the full signature tree from its partial signatures."""
    nodes: Dict[Path, Set[int]] = {}
    for partial in partials:
        for path, bits in partial.nodes.items():
            nodes[path] = {i + 1 for i, b in enumerate(bits) if b == 1}
    return Signature(fanout, nodes)


class SignatureStore:
    """Paged storage of the partial signatures of every (cuboid, cell)."""

    def __init__(self, fanout: int, pager: Optional[Pager] = None,
                 alpha: float = 0.5, buffer_capacity: int = 512) -> None:
        if not 0 < alpha <= 1:
            raise SignatureError("alpha must be in (0, 1]")
        self.fanout = fanout
        self.pager = pager or Pager()
        self.buffer = BufferPool(self.pager, capacity=buffer_capacity)
        self.budget_bits = int(alpha * self.pager.page_size * 8)
        # (cuboid dims, cell) -> {ref_path: page_id}
        self._index: Dict[Tuple[CuboidKey, CellKey], Dict[Path, int]] = {}
        self._size_bits: Dict[Tuple[CuboidKey, CellKey], int] = {}

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def put(self, cuboid: CuboidKey, cell: CellKey, signature: Signature) -> int:
        """Store (or replace) the signature of one cell; returns pages written."""
        key = (tuple(cuboid), tuple(cell))
        existing = self._index.pop(key, {})
        for page_id in existing.values():
            self.pager.free(page_id)
            self.buffer.invalidate(page_id)
        partials = decompose_signature(signature, self.budget_bits)
        refs: Dict[Path, int] = {}
        total_bits = 0
        for partial in partials:
            payload = {"ref": partial.ref_path, "nodes": dict(partial.nodes)}
            refs[partial.ref_path] = self.pager.allocate(payload)
            total_bits += partial.size_bits
        self._index[key] = refs
        self._size_bits[key] = total_bits
        return len(refs)

    def has_cell(self, cuboid: CuboidKey, cell: CellKey) -> bool:
        """Whether a signature was materialized for this cell."""
        return (tuple(cuboid), tuple(cell)) in self._index

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def reader(self, cuboid: CuboidKey, cell: CellKey) -> "CellSignatureReader":
        """Lazy reader over one cell's partial signatures."""
        key = (tuple(cuboid), tuple(cell))
        refs = self._index.get(key, {})
        return CellSignatureReader(self, refs)

    def load_signature(self, cuboid: CuboidKey, cell: CellKey) -> Signature:
        """Load and reassemble the whole signature of one cell (maintenance)."""
        key = (tuple(cuboid), tuple(cell))
        refs = self._index.get(key, {})
        partials = []
        for page_id in refs.values():
            payload = self.buffer.read(page_id)
            partials.append(PartialSignature(ref_path=payload["ref"],
                                             nodes=payload["nodes"], size_bits=0))
        return reassemble_signature(partials, self.fanout)

    # ------------------------------------------------------------------
    # sizing
    # ------------------------------------------------------------------
    def total_size_bits(self) -> int:
        """Encoded size of every stored signature, in bits."""
        return sum(self._size_bits.values())

    def total_size_bytes(self) -> int:
        """Encoded size of every stored signature, in bytes."""
        return -(-self.total_size_bits() // 8)

    def num_pages(self) -> int:
        """Number of partial-signature pages currently stored."""
        return sum(len(refs) for refs in self._index.values())

    def cells(self) -> List[Tuple[CuboidKey, CellKey]]:
        """Every (cuboid, cell) with a stored signature."""
        return list(self._index.keys())


class CellSignatureReader:
    """Lazily loads one cell's partial signatures during query processing."""

    def __init__(self, store: SignatureStore, refs: Dict[Path, int]) -> None:
        self.store = store
        self.refs = dict(refs)
        self._nodes: Dict[Path, Set[int]] = {}
        self._loaded_refs: Set[Path] = set()
        self.pages_loaded = 0

    def _load_ref(self, ref: Path) -> None:
        if ref in self._loaded_refs or ref not in self.refs:
            return
        payload = self.store.buffer.read(self.refs[ref])
        self.pages_loaded += 1
        self._loaded_refs.add(ref)
        for path, bits in payload["nodes"].items():
            self._nodes[path] = {i + 1 for i, b in enumerate(bits) if b == 1}

    def _ensure_node(self, path: Path) -> None:
        if path in self._nodes:
            return
        # Load the partial signatures referenced by prefixes of the path,
        # shallowest first (the thesis walks the first-level node, then the
        # second-level node, and so on).
        for depth in range(len(path) + 1):
            prefix = path[:depth]
            if prefix in self.refs and prefix not in self._loaded_refs:
                self._load_ref(prefix)
                if path in self._nodes:
                    return

    def test(self, path: Path) -> bool:
        """Whether the node / entry at ``path`` may hold a qualifying tuple."""
        if not self.refs:
            return False
        if not path:
            self._ensure_node(())
            return bool(self._nodes.get(()))
        parent = path[:-1]
        self._ensure_node(parent)
        bits = self._nodes.get(parent)
        return bits is not None and path[-1] in bits


class CombinedSignatureReader:
    """AND-combination of several cell readers (on-line predicate assembly).

    At internal nodes the conjunction is conservative (it may fail to prune
    a node whose subtrees do not actually intersect), and at leaf-entry
    level it is exact, so query results never need re-verification.
    """

    def __init__(self, readers: Sequence[CellSignatureReader]) -> None:
        if not readers:
            raise SignatureError("at least one signature reader is required")
        self.readers = list(readers)

    def test(self, path: Path) -> bool:
        return all(reader.test(path) for reader in self.readers)

    @property
    def pages_loaded(self) -> int:
        """Signature pages loaded across all member readers."""
        return sum(reader.pages_loaded for reader in self.readers)
