"""The signature-based ranking cube (Sections 4.2.4–4.2.5).

Construction (Algorithm 1): partition the tuples with an R-tree over the
ranking dimensions, derive every tuple's path, and — per materialized cuboid
and per cell — build, compress, decompose and store a signature.  By default
only the *atomic* cuboids (one per boolean dimension) are materialized, as
the thesis suggests for high-dimensional data; signatures for arbitrary
conjunctive predicates are assembled on-line by intersection.

Incremental maintenance (Algorithm 2): inserting a tuple updates the R-tree
(possibly splitting nodes), and only the signatures of the cells touched by
the changed tuple paths are loaded, patched (clear old paths, set new
paths) and written back.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import CubeError, QueryError
from repro.query import Predicate
from repro.signature.signature import Path, Signature
from repro.signature.store import (
    CellSignatureReader,
    CombinedSignatureReader,
    SignatureStore,
)
from repro.storage.pager import Pager
from repro.storage.rtree import RTree
from repro.storage.table import Relation

CellKey = Tuple[int, ...]
CuboidKey = Tuple[str, ...]


@dataclass
class ConstructionStats:
    """Timing and size statistics of cube construction (Figures 4.8–4.9)."""

    rtree_seconds: float = 0.0
    cube_seconds: float = 0.0
    rtree_bytes: int = 0
    cube_bytes: int = 0
    num_signatures: int = 0
    num_partial_pages: int = 0


@dataclass
class MaintenanceReport:
    """Outcome of one incremental-maintenance batch (Figure 4.11)."""

    tuples_inserted: int = 0
    cells_updated: int = 0
    pages_written: int = 0
    node_splits: int = 0
    elapsed_seconds: float = 0.0


class SignatureRankingCube:
    """Ranking cube whose measure is a signature per (cuboid cell)."""

    def __init__(
        self,
        relation: Relation,
        ranking_dims: Optional[Sequence[str]] = None,
        cuboid_dims: Optional[Sequence[Sequence[str]]] = None,
        rtree: Optional[RTree] = None,
        rtree_max_entries: Optional[int] = 32,
        pager: Optional[Pager] = None,
        alpha: float = 0.5,
        buffer_capacity: int = 512,
    ) -> None:
        self.relation = relation
        self.ranking_dims: Tuple[str, ...] = (
            tuple(ranking_dims) if ranking_dims else relation.ranking_dims)
        if cuboid_dims is None:
            cuboid_dims = [(dim,) for dim in relation.selection_dims]
        self.cuboid_dims: List[CuboidKey] = [tuple(d) for d in cuboid_dims]
        for dims in self.cuboid_dims:
            if not dims:
                raise CubeError("cuboid dimension sets must be non-empty")

        self.stats = ConstructionStats()
        start = time.perf_counter()
        if rtree is None:
            points = relation.ranking_values_bulk(
                np.arange(relation.num_tuples), self.ranking_dims)
            rtree = RTree.build(self.ranking_dims, points,
                                max_entries=rtree_max_entries)
        self.rtree = rtree
        self.stats.rtree_seconds = time.perf_counter() - start
        self.stats.rtree_bytes = self.rtree.size_in_bytes()

        # Leaf slots may hold up to max_entries tuples as well, so the
        # signature fanout equals the R-tree node capacity.
        self.store = SignatureStore(fanout=self.rtree.max_entries, pager=pager,
                                    alpha=alpha, buffer_capacity=buffer_capacity)
        start = time.perf_counter()
        self._build_signatures()
        self.stats.cube_seconds = time.perf_counter() - start
        self.stats.cube_bytes = self.store.total_size_bytes()
        self.stats.num_partial_pages = self.store.num_pages()

    # ------------------------------------------------------------------
    # construction (Algorithm 1)
    # ------------------------------------------------------------------
    def _build_signatures(self) -> None:
        tuple_paths: Dict[int, Path] = dict(self.rtree.iter_tuple_paths())
        count = 0
        for dims in self.cuboid_dims:
            columns = [self.relation.selection_column(d) for d in dims]
            cells: Dict[CellKey, List[Path]] = {}
            for tid, path in tuple_paths.items():
                cell = tuple(int(col[tid]) for col in columns)
                cells.setdefault(cell, []).append(path)
            for cell, paths in cells.items():
                signature = Signature.from_paths(paths, self.store.fanout)
                self.store.put(dims, cell, signature)
                count += 1
        self.stats.num_signatures = count

    # ------------------------------------------------------------------
    # on-line signature assembly (Section 4.3.3)
    # ------------------------------------------------------------------
    def signature_reader(self, predicate: Predicate) -> Optional[CombinedSignatureReader]:
        """Reader answering boolean-pruning tests for ``predicate``.

        Returns ``None`` for the empty predicate (no boolean pruning).  A
        multi-dimensional cuboid is used when it exactly matches the
        predicate dimensions; otherwise the per-dimension atomic signatures
        are combined by intersection.
        """
        if predicate.is_empty():
            return None
        conditions = predicate.as_dict
        exact = tuple(sorted(conditions))
        for dims in self.cuboid_dims:
            if tuple(sorted(dims)) == exact:
                cell = tuple(int(conditions[d]) for d in dims)
                return CombinedSignatureReader([self.store.reader(dims, cell)])
        readers: List[CellSignatureReader] = []
        for dim, value in conditions.items():
            if (dim,) not in self.cuboid_dims:
                raise QueryError(
                    f"no materialized signature cuboid covers dimension {dim!r}")
            readers.append(self.store.reader((dim,), (int(value),)))
        return CombinedSignatureReader(readers)

    # ------------------------------------------------------------------
    # incremental maintenance (Algorithm 2)
    # ------------------------------------------------------------------
    def insert(self, rows: Sequence[Mapping[str, object]]) -> MaintenanceReport:
        """Insert new tuples and incrementally patch the affected signatures."""
        report = MaintenanceReport()
        start = time.perf_counter()
        writes_before = self.store.pager.stats.writes

        for row in rows:
            tid = self.relation.append(row)
            point = [float(row[d]) for d in self.ranking_dims]
            outcome = self.rtree.insert(point, tid)
            if outcome.split_occurred:
                report.node_splits += 1
            report.tuples_inserted += 1
            self._apply_path_changes(outcome.old_paths, outcome.new_paths, report)

        report.pages_written = self.store.pager.stats.writes - writes_before
        report.elapsed_seconds = time.perf_counter() - start
        return report

    def _apply_path_changes(self, old_paths: Mapping[int, Path],
                            new_paths: Mapping[int, Path],
                            report: MaintenanceReport) -> None:
        affected_tids = set(old_paths) | set(new_paths)
        for dims in self.cuboid_dims:
            cells: Dict[CellKey, List[int]] = {}
            for tid in affected_tids:
                values = self.relation.selection_values(tid)
                cell = tuple(int(values[d]) for d in dims)
                cells.setdefault(cell, []).append(tid)
            for cell, tids in cells.items():
                signature = self.store.load_signature(dims, cell)
                for tid in tids:
                    old = old_paths.get(tid)
                    if old is not None:
                        signature.clear_path(old)
                    new = new_paths.get(tid)
                    if new is not None:
                        signature.set_path(new)
                self.store.put(dims, cell, signature)
                report.cells_updated += 1

    # ------------------------------------------------------------------
    # rebuild-from-scratch reference (for the maintenance comparison)
    # ------------------------------------------------------------------
    def rebuild(self) -> float:
        """Recompute every signature from the current R-tree; returns seconds."""
        start = time.perf_counter()
        self._build_signatures()
        return time.perf_counter() - start

    # ------------------------------------------------------------------
    # sizing
    # ------------------------------------------------------------------
    def size_in_bytes(self) -> int:
        """Encoded size of all stored signatures."""
        return self.store.total_size_bytes()
