"""Signature measure: a tree of bit arrays mirroring a hierarchical partition.

A signature (Section 4.2.1) answers, for any node of the R-tree partition,
"does this subtree contain at least one tuple satisfying the cell's boolean
condition?".  Each tree node carries a bit array with one bit per child
entry; a 0 bit has no subtree below it.  Signatures are built from tuple
*paths* (the 1-based entry positions from the root down to the tuple's slot
in its leaf), combined with union / intersection operators for on-line
assembly of arbitrary boolean predicates (Section 4.3.3), and updated in
place by the incremental maintenance of Section 4.2.5.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import SignatureError

Path = Tuple[int, ...]


class Signature:
    """A tree of bit arrays indexed by node path.

    ``nodes`` maps a node's path (``()`` for the root) to the set of 1-bit
    positions (1-based child positions).  A node appears in ``nodes`` only if
    it has at least one set bit, so an empty signature has no entries at all.
    """

    def __init__(self, fanout: int, nodes: Optional[Dict[Path, Set[int]]] = None) -> None:
        if fanout < 1:
            raise SignatureError("signature fanout must be at least 1")
        self.fanout = fanout
        self.nodes: Dict[Path, Set[int]] = {k: set(v) for k, v in (nodes or {}).items()}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_paths(cls, paths: Iterable[Path], fanout: int) -> "Signature":
        """Build a signature from the paths of the qualifying tuples.

        Each path contributes a 1 bit at every level: bit ``p_i`` of the node
        reached by the prefix ``p_0..p_{i-1}``.
        """
        signature = cls(fanout)
        for path in paths:
            signature.set_path(tuple(path))
        return signature

    # ------------------------------------------------------------------
    # point operations
    # ------------------------------------------------------------------
    def set_path(self, path: Path) -> None:
        """Set every bit along ``path`` to 1."""
        if not path:
            raise SignatureError("cannot set an empty path")
        for depth in range(len(path)):
            prefix = path[:depth]
            position = path[depth]
            if not 1 <= position <= self.fanout:
                raise SignatureError(
                    f"position {position} exceeds the fanout {self.fanout}")
            self.nodes.setdefault(prefix, set()).add(position)

    def clear_path(self, path: Path) -> None:
        """Clear the leaf bit of ``path``; recursively clear emptied ancestors.

        Mirrors the maintenance rule of Algorithm 2: only the leaf bit is
        cleared directly, and a node whose bits all become 0 clears the bit
        pointing to it in its parent.
        """
        if not path:
            raise SignatureError("cannot clear an empty path")
        for depth in range(len(path) - 1, -1, -1):
            prefix = path[:depth]
            position = path[depth]
            bits = self.nodes.get(prefix)
            if bits is None:
                return
            bits.discard(position)
            if bits:
                return
            del self.nodes[prefix]

    def test(self, path: Path) -> bool:
        """Whether the node / entry identified by ``path`` may contain a
        qualifying tuple.  The empty path asks about the root."""
        if not path:
            return bool(self.nodes.get((), set()))
        bits = self.nodes.get(path[:-1])
        return bits is not None and path[-1] in bits

    def node_bits(self, path: Path) -> List[int]:
        """The node's bit array as a 0/1 list truncated at the last set bit."""
        bits = self.nodes.get(path, set())
        if not bits:
            return []
        width = max(bits)
        return [1 if position in bits else 0 for position in range(1, width + 1)]

    # ------------------------------------------------------------------
    # set algebra (Section 4.3.3)
    # ------------------------------------------------------------------
    def union(self, other: "Signature") -> "Signature":
        """Bit-or of two signatures (``A = a or B = b`` predicates)."""
        merged: Dict[Path, Set[int]] = {k: set(v) for k, v in self.nodes.items()}
        for path, bits in other.nodes.items():
            merged.setdefault(path, set()).update(bits)
        return Signature(max(self.fanout, other.fanout), merged)

    def intersection(self, other: "Signature") -> "Signature":
        """Recursive bit-and of two signatures.

        A bit survives only if it is set in both signatures *and* (for
        non-leaf bits) the intersection below it is non-empty — the
        recursive rule of Section 4.3.3.
        """
        fanout = max(self.fanout, other.fanout)
        result = Signature(fanout)

        def recurse(path: Path) -> bool:
            mine = self.nodes.get(path)
            theirs = other.nodes.get(path)
            if not mine or not theirs:
                return False
            common = mine & theirs
            surviving: Set[int] = set()
            for position in common:
                child = path + (position,)
                child_is_internal = child in self.nodes or child in other.nodes
                if not child_is_internal:
                    surviving.add(position)
                elif recurse(child):
                    surviving.add(position)
            if surviving:
                result.nodes[path] = surviving
                return True
            return False

        recurse(())
        return result

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        """True when no tuple satisfies the signature's condition."""
        return not self.nodes

    def num_nodes(self) -> int:
        """Number of non-empty nodes in the signature tree."""
        return len(self.nodes)

    def num_set_bits(self) -> int:
        """Total number of 1 bits across all nodes."""
        return sum(len(bits) for bits in self.nodes.values())

    def iter_nodes_breadth_first(self) -> Iterator[Tuple[Path, List[int]]]:
        """Yield ``(path, bit array)`` in breadth-first order (storage order)."""
        frontier: List[Path] = [()]
        while frontier:
            next_frontier: List[Path] = []
            for path in frontier:
                bits = self.nodes.get(path)
                if bits is None:
                    continue
                yield path, self.node_bits(path)
                for position in sorted(bits):
                    child = path + (position,)
                    if child in self.nodes:
                        next_frontier.append(child)
            frontier = next_frontier

    def copy(self) -> "Signature":
        """Deep copy."""
        return Signature(self.fanout, {k: set(v) for k, v in self.nodes.items()})

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Signature):
            return NotImplemented
        return self.nodes == other.nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Signature(fanout={self.fanout}, nodes={len(self.nodes)})"


def path_to_sid(path: Path, fanout: int) -> int:
    """One-to-one map of a node path to a signature id (Section 4.2.1).

    ``SID = p0*(M+1)^l + p1*(M+1)^(l-1) + ... + p_{l-1}`` where ``M`` is the
    fanout; the root (empty path) has SID 0.
    """
    sid = 0
    base = fanout + 1
    for position in path:
        sid = sid * base + position
    return sid


def sid_to_path(sid: int, fanout: int) -> Path:
    """Inverse of :func:`path_to_sid`."""
    base = fanout + 1
    digits: List[int] = []
    while sid > 0:
        digits.append(sid % base)
        sid //= base
    return tuple(reversed(digits))
