"""Node-level signature compression (Section 4.2.2).

Each signature node's bit array is stored as a bit string with the unified
coding structure of Figure 4.4: a 3-bit ``CS`` field naming the scheme, a
length field, and the coding region.  Four lossless schemes are implemented,
each with a *sparse* variant (encoding the 1 positions / 0-runs) and a
*dense* variant (encoding the 0 positions / 1-runs):

* ``BL`` — baseline: the raw (tail-truncated) bit array,
* ``RL`` — run-length coding of runs terminated by a 1 (or 0 in the dense
  variant), using Elias-gamma-style length prefixes,
* ``PI`` — position index: the positions of the 1s (0s), each in
  ``ceil(log2 M)`` bits,
* ``PC`` — prefix compression of the position index: positions grouped by a
  shared prefix.

``encode_adaptive`` picks whichever scheme yields the shortest code for a
node — the adaptive choice the thesis uses — and ``decode`` reverses any of
them.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.errors import EncodingError

#: Scheme identifiers for the 2 high bits of the CS field.
SCHEME_BL = "BL"
SCHEME_PI = "PI"
SCHEME_RL = "RL"
SCHEME_PC = "PC"

_SCHEME_BITS = {SCHEME_BL: "00", SCHEME_PI: "01", SCHEME_RL: "10", SCHEME_PC: "11"}
_BITS_SCHEME = {v: k for k, v in _SCHEME_BITS.items()}

#: Width of the explicit length field following CS.
_LEN_FIELD_BITS = 16


def _to_binary(value: int, width: int) -> str:
    if value < 0 or value >= (1 << width):
        raise EncodingError(f"value {value} does not fit in {width} bits")
    return format(value, f"0{width}b")


def _bits_needed(fanout: int) -> int:
    return max(1, math.ceil(math.log2(max(2, fanout))))


def _positions(bits: List[int], target: int) -> List[int]:
    return [i + 1 for i, b in enumerate(bits) if b == target]


# ----------------------------------------------------------------------
# individual schemes (coding region only)
# ----------------------------------------------------------------------
def _encode_bl(bits: List[int], dense: bool) -> str:
    # Baseline stores the raw array; the dense variant stores the complement
    # so that trailing-one truncation applies symmetrically.
    stored = [1 - b for b in bits] if dense else list(bits)
    while stored and stored[-1] == 0:
        stored.pop()
    return "".join(str(b) for b in stored)


def _decode_bl(region: str, length: int, dense: bool) -> List[int]:
    stored = [int(c) for c in region]
    stored += [0] * (length - len(stored))
    return [1 - b for b in stored] if dense else stored


def _gamma_encode(value: int) -> str:
    # Elias-gamma-like: (ceil(log2(v+1)) - 1) ones, a zero, then v in binary.
    width = max(1, math.ceil(math.log2(value + 2)))
    return "1" * (width - 1) + "0" + _to_binary(value, width)


def _gamma_decode(stream: str, offset: int) -> Tuple[int, int]:
    width = 1
    while offset < len(stream) and stream[offset] == "1":
        width += 1
        offset += 1
    offset += 1  # skip the terminating zero
    value = int(stream[offset:offset + width], 2)
    return value, offset + width


def _encode_rl(bits: List[int], dense: bool) -> str:
    # Runs of zeros terminated by a one (sparse) or of ones terminated by a
    # zero (dense).  A sentinel terminator is appended so the final run is
    # recoverable, matching the thesis' artificial trailing symbol.
    symbol = 0 if dense else 1
    runs: List[int] = []
    run = 0
    for bit in bits:
        if bit == symbol:
            runs.append(run)
            run = 0
        else:
            run += 1
    runs.append(run)
    return "".join(_gamma_encode(r) for r in runs)


def _decode_rl(region: str, length: int, dense: bool) -> List[int]:
    symbol = 0 if dense else 1
    other = 1 - symbol
    bits: List[int] = []
    offset = 0
    runs: List[int] = []
    while offset < len(region):
        value, offset = _gamma_decode(region, offset)
        runs.append(value)
    for run in runs[:-1]:
        bits.extend([other] * run)
        bits.append(symbol)
    bits.extend([other] * runs[-1])
    bits = bits[:length]
    bits += [other if dense else 0] * (length - len(bits))
    return bits


def _encode_pi(bits: List[int], dense: bool, fanout: int) -> str:
    width = _bits_needed(fanout)
    positions = _positions(bits, 0 if dense else 1)
    return "".join(_to_binary(p - 1, width) for p in positions)


def _decode_pi(region: str, length: int, dense: bool, fanout: int) -> List[int]:
    width = _bits_needed(fanout)
    fill = 1 if dense else 0
    mark = 0 if dense else 1
    bits = [fill] * length
    for start in range(0, len(region), width):
        chunk = region[start:start + width]
        if len(chunk) < width:
            break
        position = int(chunk, 2)
        if position < length:
            bits[position] = mark
    return bits


def _pc_prefix_bits(fanout: int) -> int:
    n = _bits_needed(fanout)
    # Optimal prefix length from the thesis: log2(2^n / (n ln 2)).
    value = (2 ** n) / (n * math.log(2))
    return max(1, min(n - 1, int(round(math.log2(value)))))


def _encode_pc(bits: List[int], dense: bool, fanout: int) -> str:
    n = _bits_needed(fanout)
    p = _pc_prefix_bits(fanout)
    suffix_bits = n - p
    positions = _positions(bits, 0 if dense else 1)
    groups: dict = {}
    for position in positions:
        code = _to_binary(position - 1, n)
        groups.setdefault(code[:p], []).append(code[p:])
    out: List[str] = []
    for prefix in sorted(groups):
        suffixes = groups[prefix]
        out.append(prefix)
        out.append(_to_binary(len(suffixes) - 1, suffix_bits))
        out.extend(suffixes)
    return "".join(out)


def _decode_pc(region: str, length: int, dense: bool, fanout: int) -> List[int]:
    n = _bits_needed(fanout)
    p = _pc_prefix_bits(fanout)
    suffix_bits = n - p
    fill = 1 if dense else 0
    mark = 0 if dense else 1
    bits = [fill] * length
    offset = 0
    while offset + p + suffix_bits <= len(region):
        prefix = region[offset:offset + p]
        offset += p
        count = int(region[offset:offset + suffix_bits], 2) + 1
        offset += suffix_bits
        for _ in range(count):
            suffix = region[offset:offset + suffix_bits]
            offset += suffix_bits
            position = int(prefix + suffix, 2)
            if position < length:
                bits[position] = mark
    return bits


# ----------------------------------------------------------------------
# unified coding structure
# ----------------------------------------------------------------------
def encode(bits: List[int], fanout: int, scheme: str, dense: bool) -> str:
    """Encode a node with one scheme, producing CS + Len + coding region."""
    if scheme not in _SCHEME_BITS:
        raise EncodingError(f"unknown coding scheme {scheme!r}")
    if any(b not in (0, 1) for b in bits):
        raise EncodingError("bit arrays may only contain 0 and 1")
    if scheme == SCHEME_BL:
        region = _encode_bl(bits, dense)
    elif scheme == SCHEME_RL:
        region = _encode_rl(bits, dense)
    elif scheme == SCHEME_PI:
        region = _encode_pi(bits, dense, fanout)
    else:
        region = _encode_pc(bits, dense, fanout)
    header = _SCHEME_BITS[scheme] + ("1" if dense else "0")
    return header + _to_binary(len(bits), _LEN_FIELD_BITS) + region


def decode(code: str, fanout: int) -> List[int]:
    """Decode a node encoded by :func:`encode` (any scheme)."""
    if len(code) < 3 + _LEN_FIELD_BITS:
        raise EncodingError("code is too short to contain a header")
    scheme = _BITS_SCHEME[code[:2]]
    dense = code[2] == "1"
    length = int(code[3:3 + _LEN_FIELD_BITS], 2)
    region = code[3 + _LEN_FIELD_BITS:]
    if scheme == SCHEME_BL:
        return _decode_bl(region, length, dense)
    if scheme == SCHEME_RL:
        return _decode_rl(region, length, dense)
    if scheme == SCHEME_PI:
        return _decode_pi(region, length, dense, fanout)
    return _decode_pc(region, length, dense, fanout)


def encode_adaptive(bits: List[int], fanout: int) -> str:
    """Encode with every scheme/variant and keep the shortest code."""
    best: str = ""
    for scheme in (SCHEME_BL, SCHEME_RL, SCHEME_PI, SCHEME_PC):
        for dense in (False, True):
            try:
                code = encode(bits, fanout, scheme, dense)
            except EncodingError:
                continue
            if not best or len(code) < len(best):
                best = code
    if not best:
        raise EncodingError("no scheme could encode the node")
    return best


def code_size_bits(code: str) -> int:
    """Length of a node code in bits."""
    return len(code)


def code_size_bytes(code: str) -> int:
    """Length of a node code rounded up to whole bytes."""
    return -(-len(code) // 8)
