"""Chapter 4: signature measures and the signature-based ranking cube."""

from repro.signature.cube import (
    ConstructionStats,
    MaintenanceReport,
    SignatureRankingCube,
)
from repro.signature.encoding import (
    SCHEME_BL,
    SCHEME_PC,
    SCHEME_PI,
    SCHEME_RL,
    code_size_bits,
    code_size_bytes,
    decode,
    encode,
    encode_adaptive,
)
from repro.signature.query import SignatureTopKExecutor
from repro.signature.signature import Signature, path_to_sid, sid_to_path
from repro.signature.store import (
    CellSignatureReader,
    CombinedSignatureReader,
    PartialSignature,
    SignatureStore,
    decompose_signature,
    reassemble_signature,
)

__all__ = [
    "ConstructionStats",
    "MaintenanceReport",
    "SignatureRankingCube",
    "SCHEME_BL",
    "SCHEME_PC",
    "SCHEME_PI",
    "SCHEME_RL",
    "code_size_bits",
    "code_size_bytes",
    "decode",
    "encode",
    "encode_adaptive",
    "SignatureTopKExecutor",
    "Signature",
    "path_to_sid",
    "sid_to_path",
    "CellSignatureReader",
    "CombinedSignatureReader",
    "PartialSignature",
    "SignatureStore",
    "decompose_signature",
    "reassemble_signature",
]
