"""Branch-and-bound query processing with boolean pruning (Algorithm 3).

The executor walks the R-tree best-first on the ranking function's lower
bounds and consults the (lazily loaded) signatures to skip any node or leaf
entry whose subtree contains no tuple satisfying the boolean predicate.
Because leaf-entry signature bits are exact, results need no further
boolean verification.
"""

from __future__ import annotations

import heapq
import time
from typing import List, Optional, Tuple

from repro.cube.query import TopKAccumulator
from repro.query import Predicate, QueryResult, TopKQuery
from repro.signature.cube import SignatureRankingCube


class _FusedSignatureState:
    """Book-keeping of one query inside a fused branch-and-bound traversal."""

    __slots__ = ("reader", "topk", "live", "nodes", "charged", "peak")

    def __init__(self, reader, k: int) -> None:
        self.reader = reader
        self.topk = TopKAccumulator(k)
        self.live = True
        #: Nodes expanded while this query was live and the node reachable
        #: for it — its logical share of the traversal.
        self.nodes = 0
        #: Nodes attributed to this query (each expanded node is charged to
        #: exactly one consumer, so the group's charges sum to the work).
        self.charged = 0
        self.peak = 0


class SignatureTopKExecutor:
    """Runs top-k queries against a :class:`SignatureRankingCube`."""

    def __init__(self, cube: SignatureRankingCube) -> None:
        self.cube = cube
        self.relation = cube.relation
        self.rtree = cube.rtree

    def query(self, query: TopKQuery) -> QueryResult:
        """Execute Algorithm 3: ranking pruning + signature boolean pruning."""
        query.validate(self.relation)
        start = time.perf_counter()
        rtree_io_before = self.rtree.pager.stats.physical_reads
        sig_io_before = self.cube.store.pager.stats.physical_reads

        function = query.function
        dims = self.rtree.dims
        dim_positions = [dims.index(d) for d in function.dims]
        reader = self.cube.signature_reader(query.predicate)

        topk = TopKAccumulator(query.k)
        states = 0
        peak_heap = 0
        counter = 0

        root = self.rtree.root()
        if reader is not None and not reader.test(()):
            elapsed = time.perf_counter() - start
            return QueryResult(tids=(), scores=(), elapsed_seconds=elapsed)

        heap: List[Tuple[float, int, object]] = [
            (function.lower_bound(root.box), counter, root)]
        while heap:
            peak_heap = max(peak_heap, len(heap))
            bound, _, node = heapq.heappop(heap)
            # Strict halt/skip (here and below): a node whose bound equals
            # the k-th score may hold a tied tuple with a smaller tid, which
            # the canonical (score, tid) order must admit.
            if topk.is_full() and topk.kth_score < bound:
                break
            states += 1
            if node.is_leaf:
                for entry in self.rtree.leaf_entries(node):
                    entry_path = node.path + (entry.position,)
                    if reader is not None and not reader.test(entry_path):
                        continue
                    score = function.evaluate([entry.values[i] for i in dim_positions])
                    topk.offer(entry.tid, score)
            else:
                for child in self.rtree.children(node):
                    if reader is not None and not reader.test(child.path):
                        continue
                    child_bound = function.lower_bound(child.box)
                    if topk.is_full() and child_bound > topk.kth_score:
                        continue
                    counter += 1
                    heapq.heappush(heap, (child_bound, counter, child))

        rtree_io = self.rtree.pager.stats.physical_reads - rtree_io_before
        sig_io = self.cube.store.pager.stats.physical_reads - sig_io_before
        elapsed = time.perf_counter() - start
        ranked = topk.ranked()
        return QueryResult(
            tids=tuple(tid for tid, _ in ranked),
            scores=tuple(score for _, score in ranked),
            disk_accesses=rtree_io + sig_io,
            states_generated=states,
            peak_heap_size=peak_heap,
            tuples_evaluated=states,
            elapsed_seconds=elapsed,
            extra={"rtree_accesses": float(rtree_io),
                   "signature_accesses": float(sig_io)},
        )

    def query_batch(self, queries) -> List[QueryResult]:
        """One root-to-leaf traversal serving a same-function query group.

        Every query must rank by the same function (by value); predicates
        and ``k`` differ freely.  A single best-first heap drives the
        traversal; each heap entry carries the set of queries for which the
        node is *reachable* (every ancestor passed that query's signature
        test and could still beat its k-th score).  A node is expanded once
        for the whole group, its child bounds and leaf-entry scores are
        computed once, and each query consumes only the entries its own
        signatures admit.

        Bit-identical to the per-query loop: leaf-entry signature bits are
        exact, so every entry fed to a query is a true match, and the
        per-query pruning rules (signature test, strict k-th-score bound)
        only ever drop nodes whose subtree provably cannot contribute — a
        query's fed set is therefore a superset of its solo run's that
        still contains only matches, which yields the same canonical
        ``(score, tid)`` top-k.

        Accounting mirrors the grid sweep: ``tuples_evaluated`` (= nodes,
        as in :meth:`query`) is the attributed share of the shared
        traversal, the solo-equivalent count lands in
        ``extra["tuples_evaluated"]``, and the traversal's disk accesses
        are attributed to the first result.
        """
        queries = list(queries)
        if not queries:
            return []
        start = time.perf_counter()
        rtree_io_before = self.rtree.pager.stats.physical_reads
        sig_io_before = self.cube.store.pager.stats.physical_reads

        function = queries[0].function
        dims = self.rtree.dims
        dim_positions = [dims.index(d) for d in function.dims]

        states: List[_FusedSignatureState] = []
        for query in queries:
            query.validate(self.relation)
            states.append(_FusedSignatureState(
                self.cube.signature_reader(query.predicate), query.k))

        root = self.rtree.root()
        initial = []
        live = 0
        for index, state in enumerate(states):
            if state.reader is not None and not state.reader.test(()):
                state.live = False  # provably no match anywhere
            else:
                initial.append(index)
                live += 1

        counter = 0
        peak_heap = 0
        heap: List[Tuple[float, int, object, Tuple[int, ...]]] = []
        if initial:
            heap.append((function.lower_bound(root.box), counter, root,
                         tuple(initial)))
        while heap:
            peak_heap = max(peak_heap, len(heap))
            bound = heap[0][0]
            for state in states:
                # Strict per-query halt: every node still reachable for the
                # query bounds at least the heap minimum, so once that
                # minimum exceeds its k-th score the query is finished.
                if (state.live and state.topk.is_full()
                        and state.topk.kth_score < bound):
                    state.live = False
                    state.peak = peak_heap
                    live -= 1
            if not live:
                break
            bound, _, node, active = heapq.heappop(heap)
            consumers = [index for index in active if states[index].live]
            if not consumers:
                continue
            states[consumers[0]].charged += 1
            for index in consumers:
                states[index].nodes += 1
            if node.is_leaf:
                for entry in self.rtree.leaf_entries(node):
                    entry_path = node.path + (entry.position,)
                    score: Optional[float] = None
                    for index in consumers:
                        state = states[index]
                        if (state.reader is not None
                                and not state.reader.test(entry_path)):
                            continue
                        if score is None:
                            score = function.evaluate(
                                [entry.values[i] for i in dim_positions])
                        state.topk.offer(entry.tid, score)
            else:
                for child in self.rtree.children(node):
                    child_bound: Optional[float] = None
                    child_active: List[int] = []
                    for index in consumers:
                        state = states[index]
                        if (state.reader is not None
                                and not state.reader.test(child.path)):
                            continue
                        if child_bound is None:
                            child_bound = function.lower_bound(child.box)
                        if (state.topk.is_full()
                                and child_bound > state.topk.kth_score):
                            continue
                        child_active.append(index)
                    if child_active:
                        counter += 1
                        heapq.heappush(heap, (child_bound, counter, child,
                                              tuple(child_active)))

        rtree_io = self.rtree.pager.stats.physical_reads - rtree_io_before
        sig_io = self.cube.store.pager.stats.physical_reads - sig_io_before
        elapsed = time.perf_counter() - start
        results: List[QueryResult] = []
        for position, state in enumerate(states):
            if state.live:
                state.peak = peak_heap
            ranked = state.topk.ranked()
            first = position == 0
            results.append(QueryResult(
                tids=tuple(tid for tid, _ in ranked),
                scores=tuple(score for _, score in ranked),
                disk_accesses=(rtree_io + sig_io) if first else 0,
                states_generated=state.nodes,
                peak_heap_size=state.peak,
                tuples_evaluated=state.charged,
                elapsed_seconds=elapsed,
                extra={"tuples_evaluated": float(state.nodes),
                       "rtree_accesses": float(rtree_io) if first else 0.0,
                       "signature_accesses": float(sig_io) if first else 0.0},
            ))
        return results

    def top_k(self, predicate: Predicate, function, k: int) -> QueryResult:
        """Convenience wrapper."""
        return self.query(TopKQuery(predicate=predicate, function=function, k=k))
