"""Branch-and-bound query processing with boolean pruning (Algorithm 3).

The executor walks the R-tree best-first on the ranking function's lower
bounds and consults the (lazily loaded) signatures to skip any node or leaf
entry whose subtree contains no tuple satisfying the boolean predicate.
Because leaf-entry signature bits are exact, results need no further
boolean verification.
"""

from __future__ import annotations

import heapq
import time
from typing import List, Optional, Tuple

from repro.cube.query import TopKAccumulator
from repro.query import Predicate, QueryResult, TopKQuery
from repro.signature.cube import SignatureRankingCube


class SignatureTopKExecutor:
    """Runs top-k queries against a :class:`SignatureRankingCube`."""

    def __init__(self, cube: SignatureRankingCube) -> None:
        self.cube = cube
        self.relation = cube.relation
        self.rtree = cube.rtree

    def query(self, query: TopKQuery) -> QueryResult:
        """Execute Algorithm 3: ranking pruning + signature boolean pruning."""
        query.validate(self.relation)
        start = time.perf_counter()
        rtree_io_before = self.rtree.pager.stats.physical_reads
        sig_io_before = self.cube.store.pager.stats.physical_reads

        function = query.function
        dims = self.rtree.dims
        dim_positions = [dims.index(d) for d in function.dims]
        reader = self.cube.signature_reader(query.predicate)

        topk = TopKAccumulator(query.k)
        states = 0
        peak_heap = 0
        counter = 0

        root = self.rtree.root()
        if reader is not None and not reader.test(()):
            elapsed = time.perf_counter() - start
            return QueryResult(tids=(), scores=(), elapsed_seconds=elapsed)

        heap: List[Tuple[float, int, object]] = [
            (function.lower_bound(root.box), counter, root)]
        while heap:
            peak_heap = max(peak_heap, len(heap))
            bound, _, node = heapq.heappop(heap)
            # Strict halt/skip (here and below): a node whose bound equals
            # the k-th score may hold a tied tuple with a smaller tid, which
            # the canonical (score, tid) order must admit.
            if topk.is_full() and topk.kth_score < bound:
                break
            states += 1
            if node.is_leaf:
                for entry in self.rtree.leaf_entries(node):
                    entry_path = node.path + (entry.position,)
                    if reader is not None and not reader.test(entry_path):
                        continue
                    score = function.evaluate([entry.values[i] for i in dim_positions])
                    topk.offer(entry.tid, score)
            else:
                for child in self.rtree.children(node):
                    if reader is not None and not reader.test(child.path):
                        continue
                    child_bound = function.lower_bound(child.box)
                    if topk.is_full() and child_bound > topk.kth_score:
                        continue
                    counter += 1
                    heapq.heappush(heap, (child_bound, counter, child))

        rtree_io = self.rtree.pager.stats.physical_reads - rtree_io_before
        sig_io = self.cube.store.pager.stats.physical_reads - sig_io_before
        elapsed = time.perf_counter() - start
        ranked = topk.ranked()
        return QueryResult(
            tids=tuple(tid for tid, _ in ranked),
            scores=tuple(score for _, score in ranked),
            disk_accesses=rtree_io + sig_io,
            states_generated=states,
            peak_heap_size=peak_heap,
            tuples_evaluated=states,
            elapsed_seconds=elapsed,
            extra={"rtree_accesses": float(rtree_io),
                   "signature_accesses": float(sig_io)},
        )

    def top_k(self, predicate: Predicate, function, k: int) -> QueryResult:
        """Convenience wrapper."""
        return self.query(TopKQuery(predicate=predicate, function=function, k=k))
