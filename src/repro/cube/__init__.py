"""Chapter 3: the grid ranking cube and ranking fragments."""

from repro.cube.blocktable import BaseBlockTable
from repro.cube.model import Cuboid
from repro.cube.providers import (
    CellProvider,
    CuboidCellProvider,
    IntersectionCellProvider,
    UnfilteredCellProvider,
)
from repro.cube.query import GridTopKExecutor, TopKAccumulator, find_start_block
from repro.cube.ranking_cube import (
    RankingCube,
    all_nonempty_subsets,
    build_ranking_fragments,
    fragment_groups,
)

__all__ = [
    "BaseBlockTable",
    "Cuboid",
    "CellProvider",
    "CuboidCellProvider",
    "IntersectionCellProvider",
    "UnfilteredCellProvider",
    "GridTopKExecutor",
    "TopKAccumulator",
    "find_start_block",
    "RankingCube",
    "all_nonempty_subsets",
    "build_ranking_fragments",
    "fragment_groups",
]
