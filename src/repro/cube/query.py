"""Grid ranking-cube query algorithm: neighborhood search (Section 3.3).

The executor follows the four steps of the thesis — pre-process, search,
retrieve, evaluate — and the expansion rule of Lemma 1: starting from the
base block that contains the ranking function's minimizer, candidate blocks
are explored in increasing order of their lower-bound score, each expansion
adding the block's grid neighbors to the frontier.  The search halts once
the current k-th best seen score strictly beats the best possible score of
any unexplored block (``S_k < S_unseen``; blocks whose bound ties ``S_k``
are still examined so the canonical (score, tid) tie-break sees every
candidate).
"""

from __future__ import annotations

import heapq
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.cube.blocktable import BaseBlockTable
from repro.cube.providers import CellProvider
from repro.errors import QueryError
from repro.functions.base import RankingFunction
from repro.partition.grid import GridPartition
from repro.query import QueryResult, topk_order_key


class TopKAccumulator:
    """Bounded max-heap tracking the best (smallest-score) k tuples seen.

    The retained set is the minimal k under the canonical
    :func:`repro.query.topk_order_key` order ``(score, tid)`` — ties at the
    k-th position are broken by tuple id, not by arrival order, so every
    engine (and every shard merge) that feeds the same scored tuples ends
    with the same answer list.
    """

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise QueryError("k must be positive")
        self.k = k
        self._heap: List[Tuple[float, int]] = []  # (-score, -tid): root is worst

    def offer(self, tid: int, score: float) -> None:
        """Consider one scored tuple."""
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (-score, -tid))
        else:
            # Inline (score, tid) < (worst_score, worst_tid): this runs once
            # per surviving tuple, so no tuple allocation in the hot path.
            worst_score = -self._heap[0][0]
            if score < worst_score or (score == worst_score
                                       and tid < -self._heap[0][1]):
                heapq.heapreplace(self._heap, (-score, -tid))

    @property
    def kth_score(self) -> float:
        """Current k-th best score (``+inf`` until k tuples have been seen)."""
        if len(self._heap) < self.k:
            return float("inf")
        return -self._heap[0][0]

    def is_full(self) -> bool:
        """Whether k tuples have been collected."""
        return len(self._heap) >= self.k

    def ranked(self) -> List[Tuple[int, float]]:
        """``(tid, score)`` pairs in canonical ``(score, tid)`` order."""
        return sorted(((-neg_tid, -neg_score) for neg_score, neg_tid in self._heap),
                      key=lambda p: topk_order_key(p[0], p[1]))

    def verified_count(self, bound: float) -> int:
        """Length of the ranked prefix that is final given ``bound``.

        ``bound`` is a lower bound on every score not yet offered (the
        frontier minimum during a sweep).  An entry with score strictly
        below it can neither be displaced (later tuples score no better
        than ``bound``, so they rank behind it and evict only the tail)
        nor be preceded by an unseen tuple — so the entries below the
        bound form a prefix of the final answer, in final rank order.
        Strictness matters: a retained score *equal* to the bound could
        still be preceded by an unseen tie with a smaller tid under the
        canonical ``(score, tid)`` order, exactly the reason the sweep's
        halt test is strict too.
        """
        return sum(1 for neg_score, _ in self._heap if -neg_score < bound)

    def __len__(self) -> int:
        return len(self._heap)


def find_start_block(grid: GridPartition, function: RankingFunction) -> int:
    """Base block containing the function's minimizer over the grid domain.

    Semi-monotone functions report their minimum point directly; for other
    (convex) functions the minimizing domain corner is used, which is exact
    for linear functions and a sound starting point in general.
    """
    domain = grid.domain()
    minimum = function.minimum_point()
    if minimum is not None:
        clamped = {
            dim: domain.interval(dim).clamp(minimum.get(dim, domain.interval(dim).low))
            for dim in grid.dims
        }
        return grid.bid_of_point(clamped)
    best_corner, best_score = None, float("inf")
    for corner in domain.project(function.dims).corners():
        score = function.evaluate_mapping(corner)
        if score < best_score:
            best_corner, best_score = corner, score
    if best_corner is None:
        return 0
    point = {dim: best_corner.get(dim, domain.interval(dim).low) for dim in grid.dims}
    return grid.bid_of_point(point)


class _FusedQueryState:
    """Book-keeping of one query inside a fused frontier sweep."""

    __slots__ = ("provider", "topk", "live", "blocks", "tuples", "charged",
                 "peak")

    def __init__(self, provider: CellProvider, k: int) -> None:
        self.provider = provider
        self.topk = TopKAccumulator(k)
        self.live = True
        #: Blocks examined while live — what a solo run of this query would
        #: report as ``states_generated``.
        self.blocks = 0
        #: Tuples this query consumed (fed to its accumulator) — the solo
        #: ``tuples_evaluated``.
        self.tuples = 0
        #: Unique scoring work attributed to this query: each tuple scored
        #: by the sweep is charged to exactly one consumer, so the group's
        #: charges sum to the tuples actually evaluated.
        self.charged = 0
        self.peak = 0


class GridTopKExecutor:
    """Runs one top-k query against a grid ranking cube.

    ``bound_cache`` is an optional per-(function, block) lower-bound cache
    (duck-typed: anything with ``lower_bound(grid, function, bid)``, see
    :class:`repro.engine.cache.LowerBoundCache`).  Bounds depend only on the
    function and the block geometry, so they can be shared across every
    query in a workload that reuses the same function.
    """

    def __init__(self, grid: GridPartition, block_table: BaseBlockTable,
                 bound_cache=None) -> None:
        self.grid = grid
        self.block_table = block_table
        self.bound_cache = bound_cache

    def _block_bound(self, function: RankingFunction, bid: int) -> float:
        if self.bound_cache is not None:
            return self.bound_cache.lower_bound(self.grid, function, bid)
        return function.lower_bound(self.grid.block_box(bid))

    def execute(self, provider: CellProvider, function: RankingFunction, k: int,
                on_progress=None) -> QueryResult:
        """Execute the neighborhood-search algorithm of Section 3.3.2.

        ``on_progress`` (optional) streams verified top-k prefixes while
        the sweep runs: whenever the frontier minimum rises above more of
        the accumulator, the newly finalized ranks are emitted as
        ``on_progress(start_rank, [(tid, score), ...])`` — those entries
        are bit-identical to the same positions of the final answer (see
        :meth:`TopKAccumulator.verified_count`).  The callback runs on
        the sweep's thread and must be cheap; ``None`` (the default) adds
        zero work to the hot loop.
        """
        for dim in function.dims:
            if dim not in self.grid.dims:
                raise QueryError(
                    f"ranking dimension {dim!r} is not covered by the grid partition")
        start_time = time.perf_counter()
        provider.reset()
        pagers = {
            id(self.block_table.pager): self.block_table.pager,
        }
        cuboid_pagers = getattr(provider, "providers", [provider])
        for sub in cuboid_pagers:
            cuboid = getattr(sub, "cuboid", None)
            if cuboid is not None:
                pagers[id(cuboid.pager)] = cuboid.pager
        io_before = {key: p.stats.physical_reads for key, p in pagers.items()}

        topk = TopKAccumulator(k)
        start_bid = find_start_block(self.grid, function)
        frontier: List[Tuple[float, int]] = []
        inserted: Set[int] = set()
        blocks_examined = 0
        peak_frontier = 0
        tuples_evaluated = 0
        dim_index = [self.grid.dims.index(d) for d in function.dims]
        whole_grid = dim_index == list(range(len(self.grid.dims)))

        heapq.heappush(frontier, (self._block_bound(function, start_bid), start_bid))
        inserted.add(start_bid)
        emitted = 0

        while frontier:
            peak_frontier = max(peak_frontier, len(frontier))
            unseen_score, bid = frontier[0]
            if on_progress is not None and len(topk) > emitted:
                # Every unseen tuple scores >= the frontier minimum (the
                # halt test's invariant), so ranks below it are final —
                # stream the ones not yet emitted.
                verified = topk.verified_count(unseen_score)
                if verified > emitted:
                    on_progress(emitted, topk.ranked()[emitted:verified])
                    emitted = verified
            # Strict halt: a block whose bound *equals* the k-th score may
            # still hold a tied tuple with a smaller tid, which the
            # canonical (score, tid) order must admit — only provably worse
            # blocks are pruned.
            if topk.is_full() and topk.kth_score < unseen_score:
                break
            heapq.heappop(frontier)
            blocks_examined += 1

            tids = provider.tids_in_block(bid)
            if tids:
                block_tids, block_values = self.block_table.block_arrays(bid)
                if len(tids) == len(block_tids) and np.array_equal(tids, block_tids):
                    # Unfiltered block: every row qualifies, in page order.
                    kept = tids
                    selected = block_values
                else:
                    row_of = self.block_table.block_row_index(bid)
                    kept = [tid for tid in tids if tid in row_of]
                    selected = block_values[[row_of[tid] for tid in kept]]
                if kept:
                    if not whole_grid:
                        selected = selected[:, dim_index]
                    scores = function.evaluate_batch(selected)
                    for tid, score in zip(kept, scores):
                        topk.offer(tid, float(score))
                    tuples_evaluated += len(kept)

            for neighbor in self.grid.neighbors(bid):
                if neighbor in inserted:
                    continue
                inserted.add(neighbor)
                bound = self._block_bound(function, neighbor)
                heapq.heappush(frontier, (bound, neighbor))

        elapsed = time.perf_counter() - start_time
        disk = sum(
            p.stats.physical_reads - io_before[key] for key, p in pagers.items()
        )
        ranked = topk.ranked()
        return QueryResult(
            tids=tuple(tid for tid, _ in ranked),
            scores=tuple(score for _, score in ranked),
            disk_accesses=disk,
            states_generated=blocks_examined,
            peak_heap_size=peak_frontier,
            tuples_evaluated=tuples_evaluated,
            elapsed_seconds=elapsed,
        )

    def execute_fused(self, function: RankingFunction,
                      requests: Sequence[Tuple[CellProvider, int]],
                      ) -> List[QueryResult]:
        """One frontier sweep answering a whole group of same-function queries.

        ``requests`` pairs each query's cell provider with its ``k``; every
        query must rank by ``function`` (the engine groups batches by the
        function's canonical value key, so value-equal function objects
        share one sweep).  The frontier's evolution — which blocks are
        popped and expanded, in which order — depends only on the function
        and the grid geometry, never on a predicate or ``k``, so a solo run
        of any query is exactly a prefix of this shared sweep.  Each query
        keeps its own accumulator and *retires* at the same frontier state
        where its solo run would halt (k-th score strictly beats the best
        unseen bound); each popped block's union of needed tuples is scored
        once with :meth:`~repro.functions.base.RankingFunction.evaluate_batch`
        and fed to every live accumulator that asked for them.  Answers are
        bit-identical to the per-query loop; the shared scoring work is the
        saving.

        Per-result accounting: ``tuples_evaluated`` is each query's
        *attributed* share of the unique scoring work (a tuple scored once
        for three queries is charged to exactly one of them), so summing
        the group's results counts shared work once.  The solo-equivalent
        consumption lands in ``extra["tuples_evaluated"]``;
        ``states_generated`` / ``peak_heap_size`` stay solo-equivalent, and
        the sweep's disk accesses are attributed to the first result.
        """
        for dim in function.dims:
            if dim not in self.grid.dims:
                raise QueryError(
                    f"ranking dimension {dim!r} is not covered by the grid partition")
        start_time = time.perf_counter()
        pagers = {
            id(self.block_table.pager): self.block_table.pager,
        }
        states: List[_FusedQueryState] = []
        for provider, k in requests:
            provider.reset()
            for sub in getattr(provider, "providers", [provider]):
                cuboid = getattr(sub, "cuboid", None)
                if cuboid is not None:
                    pagers[id(cuboid.pager)] = cuboid.pager
            states.append(_FusedQueryState(provider, k))
        io_before = {key: p.stats.physical_reads for key, p in pagers.items()}

        start_bid = find_start_block(self.grid, function)
        frontier: List[Tuple[float, int]] = []
        inserted: Set[int] = {start_bid}
        live = len(states)
        peak_frontier = 0
        dim_index = [self.grid.dims.index(d) for d in function.dims]
        whole_grid = dim_index == list(range(len(self.grid.dims)))

        heapq.heappush(frontier, (self._block_bound(function, start_bid), start_bid))

        while frontier and live:
            peak_frontier = max(peak_frontier, len(frontier))
            unseen_score, bid = frontier[0]
            for state in states:
                # Same strict halt as the solo loop, checked at the same
                # frontier state — only the retirement is per query.
                if (state.live and state.topk.is_full()
                        and state.topk.kth_score < unseen_score):
                    state.live = False
                    state.peak = peak_frontier
                    live -= 1
            if not live:
                break
            heapq.heappop(frontier)

            needs: List[Tuple[_FusedQueryState, List[int]]] = []
            for state in states:
                if not state.live:
                    continue
                state.blocks += 1
                tids = state.provider.tids_in_block(bid)
                if tids:
                    needs.append((state, tids))
            if needs:
                block_tids, block_values = self.block_table.block_arrays(bid)
                row_of = self.block_table.block_row_index(bid)
                if len(needs) == 1:
                    union = needs[0][1]
                else:
                    seen: Set[int] = set()
                    union = [tid for _, tids in needs for tid in tids
                             if not (tid in seen or seen.add(tid))]
                kept = [tid for tid in union if tid in row_of]
                score_of: Dict[int, float] = {}
                if kept:
                    if (len(kept) == len(block_tids)
                            and np.array_equal(kept, block_tids)):
                        selected = block_values
                    else:
                        selected = block_values[[row_of[tid] for tid in kept]]
                    if not whole_grid:
                        selected = selected[:, dim_index]
                    scores = function.evaluate_batch(selected)
                    if len(needs) == 1:
                        # Single consumer: feed the accumulator directly,
                        # exactly like the solo loop — no per-tuple dict.
                        state = needs[0][0]
                        for tid, score in zip(kept, scores):
                            state.topk.offer(tid, float(score))
                        state.tuples += len(kept)
                        state.charged += len(kept)
                    else:
                        score_of = {tid: float(score)
                                    for tid, score in zip(kept, scores)}
                if score_of:
                    charged: Set[int] = set()
                    for state, tids in needs:
                        consumed = 0
                        for tid in tids:
                            score = score_of.get(tid)
                            if score is None:
                                continue
                            state.topk.offer(tid, score)
                            consumed += 1
                            if tid not in charged:
                                charged.add(tid)
                                state.charged += 1
                        state.tuples += consumed

            for neighbor in self.grid.neighbors(bid):
                if neighbor in inserted:
                    continue
                inserted.add(neighbor)
                bound = self._block_bound(function, neighbor)
                heapq.heappush(frontier, (bound, neighbor))

        elapsed = time.perf_counter() - start_time
        disk = sum(
            p.stats.physical_reads - io_before[key] for key, p in pagers.items()
        )
        results: List[QueryResult] = []
        for position, state in enumerate(states):
            if state.live:
                state.peak = peak_frontier
            ranked = state.topk.ranked()
            results.append(QueryResult(
                tids=tuple(tid for tid, _ in ranked),
                scores=tuple(score for _, score in ranked),
                disk_accesses=disk if position == 0 else 0,
                states_generated=state.blocks,
                peak_heap_size=state.peak,
                tuples_evaluated=state.charged,
                elapsed_seconds=elapsed,
                extra={"tuples_evaluated": float(state.tuples)},
            ))
        return results
