"""Base block table: ranking values grouped by base block (Section 3.2.2).

After the geometry partition, the original relation is decomposed into a
*selection table* (selection dims + block dimension ``B``, which feeds the
ranking cube) and a *base block table* holding, per base block, the tids and
their real ranking values.  The query algorithm's ``get_base_block`` data
access method (Section 3.3.1) reads one of these pages.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CubeError
from repro.partition.grid import GridPartition
from repro.storage.buffer import BufferPool
from repro.storage.pager import Pager
from repro.storage.table import Relation


class BaseBlockTable:
    """Per-base-block pages of ``(tid, ranking values)`` entries."""

    def __init__(self, relation: Relation, grid: GridPartition,
                 bids: Optional[np.ndarray] = None, pager: Optional[Pager] = None,
                 buffer_capacity: int = 256) -> None:
        self.relation = relation
        self.grid = grid
        self.dims: Tuple[str, ...] = grid.dims
        self.pager = pager or Pager()
        self.buffer = BufferPool(self.pager, capacity=buffer_capacity)
        if bids is None:
            bids = grid.assign(relation)
        bids = np.asarray(bids, dtype=np.int64)
        if bids.shape[0] != relation.num_tuples:
            raise CubeError("bids must assign a block to every tuple")
        self.bids = bids
        self._block_pages: Dict[int, int] = {}
        self._row_index: Dict[int, Dict[int, int]] = {}
        self._build()

    def _build(self) -> None:
        values = self.relation.ranking_values_bulk(
            np.arange(self.relation.num_tuples), self.dims)
        order = np.argsort(self.bids, kind="stable")
        sorted_bids = self.bids[order]
        boundaries = np.flatnonzero(np.diff(sorted_bids)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [len(sorted_bids)]))
        for start, end in zip(starts, ends):
            if start == end:
                continue
            bid = int(sorted_bids[start])
            tids = np.ascontiguousarray(order[start:end], dtype=np.int64)
            block_values = np.ascontiguousarray(values[tids], dtype=np.float64)
            self._block_pages[bid] = self.pager.allocate((tids, block_values))
            self._row_index[bid] = {int(tid): row for row, tid in enumerate(tids)}

    # ------------------------------------------------------------------
    # data access methods
    # ------------------------------------------------------------------
    def block_arrays(self, bid: int) -> Tuple[np.ndarray, np.ndarray]:
        """``get_base_block`` in columnar form: ``(tids, values)`` arrays.

        ``tids`` has shape ``(n,)`` and ``values`` shape ``(n, len(dims))``;
        both are contiguous so ranking functions can score the whole block
        with one vectorized call.  Reads one page through the buffer pool
        (counts a disk access on a miss); an unknown / empty block returns
        empty arrays for free.
        """
        page_id = self._block_pages.get(int(bid))
        if page_id is None:
            return (np.empty(0, dtype=np.int64),
                    np.empty((0, len(self.dims)), dtype=np.float64))
        return self.buffer.read(page_id)

    def get_base_block(self, bid: int) -> List[Tuple[int, Tuple[float, ...]]]:
        """``get_base_block``: tids and ranking values of one base block.

        Row-wise view kept for callers that want python objects; costs the
        same single (possibly buffered) page read as :meth:`block_arrays`.
        """
        tids, values = self.block_arrays(bid)
        return [
            (int(tid), tuple(row.tolist())) for tid, row in zip(tids, values)
        ]

    def block_tids(self, bid: int) -> List[int]:
        """Tids of one base block (single page read, like ``get_base_block``)."""
        tids, _ = self.block_arrays(bid)
        return [int(tid) for tid in tids]

    def block_row_index(self, bid: int) -> Dict[int, int]:
        """``{tid: row}`` positions inside :meth:`block_arrays` of ``bid``.

        Derived metadata built during construction (no I/O is charged): the
        table is immutable, so the mapping never goes stale.
        """
        return self._row_index.get(int(bid), {})

    def block_values(self, bid: int) -> Dict[int, Tuple[float, ...]]:
        """The same block as a ``{tid: values}`` dict."""
        return {tid: vals for tid, vals in self.get_base_block(bid)}

    def bid_of_tid(self, tid: int) -> int:
        """Base block that tuple ``tid`` was assigned to."""
        return int(self.bids[tid])

    def non_empty_bids(self) -> List[int]:
        """Base blocks that actually contain tuples."""
        return sorted(self._block_pages)

    def num_blocks(self) -> int:
        """Number of non-empty base blocks."""
        return len(self._block_pages)

    def size_in_bytes(self) -> int:
        """Estimated materialized size of the base block table."""
        return self.pager.total_bytes()
