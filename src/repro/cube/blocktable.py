"""Base block table: ranking values grouped by base block (Section 3.2.2).

After the geometry partition, the original relation is decomposed into a
*selection table* (selection dims + block dimension ``B``, which feeds the
ranking cube) and a *base block table* holding, per base block, the tids and
their real ranking values.  The query algorithm's ``get_base_block`` data
access method (Section 3.3.1) reads one of these pages.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CubeError
from repro.partition.grid import GridPartition
from repro.storage.buffer import BufferPool
from repro.storage.pager import Pager
from repro.storage.table import Relation


class BaseBlockTable:
    """Per-base-block pages of ``(tid, ranking values)`` entries."""

    def __init__(self, relation: Relation, grid: GridPartition,
                 bids: Optional[np.ndarray] = None, pager: Optional[Pager] = None,
                 buffer_capacity: int = 256) -> None:
        self.relation = relation
        self.grid = grid
        self.dims: Tuple[str, ...] = grid.dims
        self.pager = pager or Pager()
        self.buffer = BufferPool(self.pager, capacity=buffer_capacity)
        if bids is None:
            bids = grid.assign(relation)
        bids = np.asarray(bids, dtype=np.int64)
        if bids.shape[0] != relation.num_tuples:
            raise CubeError("bids must assign a block to every tuple")
        self.bids = bids
        self._block_pages: Dict[int, int] = {}
        self._build()

    def _build(self) -> None:
        values = self.relation.ranking_values_bulk(
            np.arange(self.relation.num_tuples), self.dims)
        order = np.argsort(self.bids, kind="stable")
        sorted_bids = self.bids[order]
        boundaries = np.flatnonzero(np.diff(sorted_bids)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [len(sorted_bids)]))
        for start, end in zip(starts, ends):
            if start == end:
                continue
            bid = int(sorted_bids[start])
            tids = order[start:end]
            payload = [
                (int(tid), tuple(values[tid].tolist())) for tid in tids
            ]
            self._block_pages[bid] = self.pager.allocate(payload)

    # ------------------------------------------------------------------
    # data access methods
    # ------------------------------------------------------------------
    def get_base_block(self, bid: int) -> List[Tuple[int, Tuple[float, ...]]]:
        """``get_base_block``: tids and ranking values of one base block.

        Reads one page through the buffer pool (counts a disk access on a
        miss); an unknown / empty block returns an empty list for free.
        """
        page_id = self._block_pages.get(int(bid))
        if page_id is None:
            return []
        return self.buffer.read(page_id)

    def block_values(self, bid: int) -> Dict[int, Tuple[float, ...]]:
        """The same block as a ``{tid: values}`` dict."""
        return {tid: vals for tid, vals in self.get_base_block(bid)}

    def bid_of_tid(self, tid: int) -> int:
        """Base block that tuple ``tid`` was assigned to."""
        return int(self.bids[tid])

    def non_empty_bids(self) -> List[int]:
        """Base blocks that actually contain tuples."""
        return sorted(self._block_pages)

    def num_blocks(self) -> int:
        """Number of non-empty base blocks."""
        return len(self._block_pages)

    def size_in_bytes(self) -> int:
        """Estimated materialized size of the base block table."""
        return self.pager.total_bytes()
