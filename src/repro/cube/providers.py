"""Cell providers: where the query algorithm gets qualifying tids per block.

The retrieve step of the query algorithm (Section 3.3.2) asks a cuboid for
the tid list of a base block's pseudo block, buffering pseudo blocks already
fetched.  When a query is answered by several ranking fragments (Section
3.4.2), the per-fragment tid lists for the same block are intersected.  Both
behaviours implement the same small interface so the executor does not care
which one it talks to.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Sequence, Set, Tuple

from repro.cube.blocktable import BaseBlockTable
from repro.cube.model import CellKey, Cuboid


class CellProvider(ABC):
    """Supplies, per base block, the tids that satisfy the boolean predicate."""

    @abstractmethod
    def tids_in_block(self, bid: int) -> List[int]:
        """Tids in base block ``bid`` that satisfy the provider's predicate."""

    def reset(self) -> None:
        """Drop any per-query buffering (called between queries)."""


class CuboidCellProvider(CellProvider):
    """Reads one cuboid cell, pseudo block by pseudo block, with buffering."""

    def __init__(self, cuboid: Cuboid, cell: CellKey) -> None:
        self.cuboid = cuboid
        self.cell = tuple(cell)
        self._fetched_pids: Dict[int, Dict[int, List[int]]] = {}

    def tids_in_block(self, bid: int) -> List[int]:
        pid = self.cuboid.grid.pid_of_bid(bid, self.cuboid.scale_factor)
        if pid not in self._fetched_pids:
            entries = self.cuboid.get_pseudo_block(self.cell, pid)
            by_bid: Dict[int, List[int]] = {}
            for tid, entry_bid in entries:
                by_bid.setdefault(entry_bid, []).append(tid)
            self._fetched_pids[pid] = by_bid
        return self._fetched_pids[pid].get(bid, [])

    def reset(self) -> None:
        self._fetched_pids.clear()


class IntersectionCellProvider(CellProvider):
    """Intersects the tid lists of several providers (ranking fragments)."""

    def __init__(self, providers: Sequence[CellProvider]) -> None:
        if not providers:
            raise ValueError("at least one provider is required")
        self.providers = list(providers)

    def tids_in_block(self, bid: int) -> List[int]:
        result: Set[int] = set(self.providers[0].tids_in_block(bid))
        for provider in self.providers[1:]:
            if not result:
                break
            result &= set(provider.tids_in_block(bid))
        return sorted(result)

    def reset(self) -> None:
        for provider in self.providers:
            provider.reset()


class UnfilteredCellProvider(CellProvider):
    """Provider for the empty predicate: every tuple of the block qualifies."""

    def __init__(self, block_table: BaseBlockTable) -> None:
        self.block_table = block_table

    def tids_in_block(self, bid: int) -> List[int]:
        return self.block_table.block_tids(bid)

    def reset(self) -> None:
        pass
