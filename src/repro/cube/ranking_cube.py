"""The grid ranking cube and the ranking-fragments variant (Chapter 3).

A :class:`RankingCube` materializes one cuboid per requested combination of
selection dimensions over a shared geometry partition plus a base block
table.  The default full cube materializes every non-empty subset of the
selection dimensions (``2^S - 1`` cuboids); :func:`build_ranking_fragments`
instead materializes, per fragment of ``F`` selection dimensions, all
subsets within the fragment, which keeps the space linear in ``S``
(Lemma 2) and answers cross-fragment queries by intersecting tid lists
online (Section 3.4.2).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cube.blocktable import BaseBlockTable
from repro.cube.model import Cuboid
from repro.cube.providers import (
    CellProvider,
    CuboidCellProvider,
    IntersectionCellProvider,
    UnfilteredCellProvider,
)
from repro.cube.query import GridTopKExecutor
from repro.errors import CubeError, QueryError
from repro.partition.equidepth import equidepth_partition
from repro.partition.grid import GridPartition
from repro.query import Predicate, QueryResult, TopKQuery
from repro.storage.pager import Pager
from repro.storage.table import Relation


def all_nonempty_subsets(dims: Sequence[str]) -> List[Tuple[str, ...]]:
    """Every non-empty subset of ``dims``, smallest first."""
    result: List[Tuple[str, ...]] = []
    for size in range(1, len(dims) + 1):
        result.extend(itertools.combinations(dims, size))
    return result


class RankingCube:
    """Grid-partition ranking cube with neighborhood-search query processing."""

    def __init__(
        self,
        relation: Relation,
        cuboid_dims: Optional[Sequence[Sequence[str]]] = None,
        block_size: int = 300,
        grid: Optional[GridPartition] = None,
        pager: Optional[Pager] = None,
        buffer_capacity: int = 256,
        bound_cache=None,
    ) -> None:
        self.relation = relation
        self.block_size = block_size
        self.grid = grid or equidepth_partition(relation, block_size=block_size)
        self.pager = pager or Pager()
        self.block_table = BaseBlockTable(relation, self.grid, pager=Pager(),
                                          buffer_capacity=buffer_capacity)
        if cuboid_dims is None:
            cuboid_dims = all_nonempty_subsets(relation.selection_dims)
        bids = self.block_table.bids
        self.cuboids: Dict[Tuple[str, ...], Cuboid] = {}
        for dims in cuboid_dims:
            key = tuple(dims)
            if not key:
                raise CubeError("cuboid dimension sets must be non-empty")
            self.cuboids[key] = Cuboid(key, relation, self.grid, bids, self.pager,
                                       buffer_capacity=buffer_capacity)
        self._executor = GridTopKExecutor(self.grid, self.block_table,
                                          bound_cache=bound_cache)
        self._cover_memo: Dict[Tuple[str, ...], List[Tuple[str, ...]]] = {}

    # ------------------------------------------------------------------
    # covering-cuboid selection (Section 3.4.2, minmax criterion)
    # ------------------------------------------------------------------
    def covering_cuboids(self, query_dims: Sequence[str]) -> List[Tuple[str, ...]]:
        """Choose materialized cuboids that together cover ``query_dims``.

        Only cuboids whose dimensions are a subset of the query dimensions
        are usable.  Among those, maximal ones are preferred and a greedy
        minimum cover is selected.  The materialized cuboid set is fixed
        after construction, so covers are memoized per dimension set — the
        engine consults this several times per routed query (supports,
        plan details, execution) for the price of one computation.
        """
        memo_key = tuple(sorted(set(query_dims)))
        cached = self._cover_memo.get(memo_key)
        if cached is not None:
            return list(cached)
        target: Set[str] = set(query_dims)
        if not target:
            return []
        usable = [dims for dims in self.cuboids if set(dims) <= target]
        if not usable:
            raise QueryError(
                f"no materialized cuboid covers any of the query dimensions {sorted(target)}")
        # Maximal step: drop cuboids strictly contained in another usable one.
        maximal = [
            dims for dims in usable
            if not any(set(dims) < set(other) for other in usable)
        ]
        chosen: List[Tuple[str, ...]] = []
        uncovered = set(target)
        while uncovered:
            best = max(maximal, key=lambda dims: len(set(dims) & uncovered))
            gain = set(best) & uncovered
            if not gain:
                raise QueryError(
                    f"query dimensions {sorted(uncovered)} are not covered by any cuboid")
            chosen.append(best)
            uncovered -= gain
        self._cover_memo[memo_key] = chosen
        return list(chosen)

    def plan_for(self, predicate: Predicate
                 ) -> Tuple[CellProvider, List[Tuple[str, ...]]]:
        """Plan ``predicate`` access: the cell provider plus the chosen cuboids.

        The covering-cuboid selection runs exactly once; callers that also
        want the chosen cuboids (statistics, the engine planner) reuse the
        same plan instead of re-deriving it.
        """
        if predicate.is_empty():
            return UnfilteredCellProvider(self.block_table), []
        conditions = predicate.as_dict
        chosen = self.covering_cuboids(predicate.dims)
        providers: List[CellProvider] = []
        for dims in chosen:
            cuboid = self.cuboids[dims]
            cell = cuboid.cell_of_predicate(conditions)
            providers.append(CuboidCellProvider(cuboid, cell))
        if len(providers) == 1:
            return providers[0], chosen
        return IntersectionCellProvider(providers), chosen

    def provider_for(self, predicate: Predicate) -> CellProvider:
        """Build the cell provider answering ``predicate``."""
        provider, _ = self.plan_for(predicate)
        return provider

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------
    def query(self, query: TopKQuery, on_progress=None) -> QueryResult:
        """Answer one top-k query using the materialized cube.

        ``on_progress`` streams verified top-k prefixes during the sweep
        (see :meth:`~repro.cube.query.GridTopKExecutor.execute`); the
        returned result is identical with or without it.
        """
        query.validate(self.relation)
        provider, chosen = self.plan_for(query.predicate)
        result = self._executor.execute(provider, query.function, query.k,
                                        on_progress=on_progress)
        result.extra["covering_cuboids"] = float(len(chosen) if chosen else 1)
        return result

    def query_batch(self, queries: Sequence[TopKQuery]) -> List[QueryResult]:
        """Answer a same-function batch of top-k queries with one fused sweep.

        Every query must rank by the same function (by value — the engine
        layer groups batches by the function's canonical key before calling
        this); predicates and ``k`` may differ freely.  One frontier sweep
        serves the whole group (see
        :meth:`~repro.cube.query.GridTopKExecutor.execute_fused`), scoring
        each block's tuples once instead of once per query.  Results are
        bit-identical to running :meth:`query` per entry.
        """
        queries = list(queries)
        if not queries:
            return []
        requests = []
        chosen_counts = []
        for query in queries:
            query.validate(self.relation)
            provider, chosen = self.plan_for(query.predicate)
            requests.append((provider, query.k))
            chosen_counts.append(len(chosen) if chosen else 1)
        results = self._executor.execute_fused(queries[0].function, requests)
        for result, covering in zip(results, chosen_counts):
            result.extra["covering_cuboids"] = float(covering)
        return results

    def attach_bound_cache(self, bound_cache) -> None:
        """Share a per-(function, block) lower-bound cache with the executor."""
        self._executor.bound_cache = bound_cache

    def top_k(self, predicate: Predicate, function, k: int) -> QueryResult:
        """Convenience wrapper building the :class:`TopKQuery` for the caller."""
        return self.query(TopKQuery(predicate=predicate, function=function, k=k))

    # ------------------------------------------------------------------
    # sizing
    # ------------------------------------------------------------------
    def size_in_bytes(self) -> int:
        """Materialized size: cuboid pages plus the base block table."""
        return self.pager.total_bytes() + self.block_table.size_in_bytes()

    def cuboid_names(self) -> List[str]:
        """Names of the materialized cuboids."""
        return [cuboid.name for cuboid in self.cuboids.values()]

    def num_cuboids(self) -> int:
        """Number of materialized cuboids."""
        return len(self.cuboids)


def fragment_groups(selection_dims: Sequence[str], fragment_size: int) -> List[Tuple[str, ...]]:
    """Evenly partition the selection dimensions into fragments of size ``F``."""
    if fragment_size <= 0:
        raise CubeError("fragment size must be positive")
    dims = list(selection_dims)
    return [
        tuple(dims[start:start + fragment_size])
        for start in range(0, len(dims), fragment_size)
    ]


def build_ranking_fragments(
    relation: Relation,
    fragment_size: int = 2,
    block_size: int = 300,
    groups: Optional[Sequence[Sequence[str]]] = None,
    grid: Optional[GridPartition] = None,
    pager: Optional[Pager] = None,
    buffer_capacity: int = 256,
) -> RankingCube:
    """Build the ranking-fragments variant of the cube (Section 3.4).

    Every fragment materializes all non-empty subsets of its own selection
    dimensions; queries touching several fragments are answered by online
    intersection of the per-fragment tid lists.
    """
    if groups is None:
        groups = fragment_groups(relation.selection_dims, fragment_size)
    cuboid_dims: List[Tuple[str, ...]] = []
    seen: Set[Tuple[str, ...]] = set()
    for group in groups:
        for subset in all_nonempty_subsets(tuple(group)):
            if subset not in seen:
                seen.add(subset)
                cuboid_dims.append(subset)
    return RankingCube(
        relation,
        cuboid_dims=cuboid_dims,
        block_size=block_size,
        grid=grid,
        pager=pager,
        buffer_capacity=buffer_capacity,
    )
