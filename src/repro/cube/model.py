"""Cuboid storage for the grid ranking cube (Section 3.2.3).

A *cuboid* is named by its selection dimensions (e.g. ``A1A2_N1N2``) and
stores, for every (cell, pseudo block) combination, the list of
``(tid, bid)`` pairs of tuples that fall in that cell and pseudo block.
Each such list occupies one page, mirroring the thesis' clustered index on
``(selection dims, pid)``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CubeError
from repro.partition.grid import GridPartition
from repro.storage.buffer import BufferPool
from repro.storage.pager import Pager
from repro.storage.table import Relation

CellKey = Tuple[int, ...]


class Cuboid:
    """One materialized cuboid of the ranking cube."""

    def __init__(self, dims: Sequence[str], relation: Relation, grid: GridPartition,
                 bids: np.ndarray, pager: Pager, buffer_capacity: int = 256) -> None:
        self.dims: Tuple[str, ...] = tuple(dims)
        if not self.dims:
            raise CubeError("a cuboid needs at least one selection dimension")
        self.grid = grid
        self.pager = pager
        self.buffer = BufferPool(pager, capacity=buffer_capacity)
        cardinalities = [relation.cardinality(d) for d in self.dims]
        self.scale_factor = grid.scale_factor(cardinalities)
        self._pages: Dict[Tuple[CellKey, int], int] = {}
        self._build(relation, bids)

    @property
    def name(self) -> str:
        """Cuboid name in the thesis' ``A1A2_N1N2`` convention."""
        return "".join(self.dims) + "_" + "".join(self.grid.dims)

    def _build(self, relation: Relation, bids: np.ndarray) -> None:
        columns = [relation.selection_column(d) for d in self.dims]
        pids = np.array(
            [self.grid.pid_of_bid(int(bid), self.scale_factor) for bid in bids],
            dtype=np.int64,
        )
        groups: Dict[Tuple[CellKey, int], List[Tuple[int, int]]] = {}
        for tid in range(relation.num_tuples):
            cell: CellKey = tuple(int(col[tid]) for col in columns)
            key = (cell, int(pids[tid]))
            groups.setdefault(key, []).append((tid, int(bids[tid])))
        for key, entries in groups.items():
            self._pages[key] = self.pager.allocate(entries)

    # ------------------------------------------------------------------
    # data access method: get_pseudo_block (Section 3.3.1)
    # ------------------------------------------------------------------
    def get_pseudo_block(self, cell: CellKey, pid: int) -> List[Tuple[int, int]]:
        """``(tid, bid)`` list of one (cell, pseudo block), one page read."""
        page_id = self._pages.get((tuple(cell), int(pid)))
        if page_id is None:
            return []
        return self.buffer.read(page_id)

    def cell_of_predicate(self, conditions: Mapping[str, int]) -> CellKey:
        """Cell key for a predicate that constrains every cuboid dimension."""
        missing = [d for d in self.dims if d not in conditions]
        if missing:
            raise CubeError(
                f"cuboid {self.name} needs values for dimensions {missing}")
        return tuple(int(conditions[d]) for d in self.dims)

    def num_cells(self) -> int:
        """Number of materialized (cell, pseudo block) pages."""
        return len(self._pages)

    def size_in_bytes(self) -> int:
        """Estimated size of this cuboid's pages."""
        total = 0
        for page_id in self._pages.values():
            total += len(self.pager.read(page_id, physical=False)) * 16
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cuboid({self.name}, sf={self.scale_factor}, pages={len(self._pages)})"
