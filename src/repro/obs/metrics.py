"""One metrics dialect for the whole stack: counters, gauges, histograms.

Before this module the engine, the scatter layer, and the serving layer
each invented their own statistics surface (``cache_stats()`` dict
merges, ``QueryResult.extra`` breadcrumbs, ``ServiceStats.snapshot()``).
:class:`MetricsRegistry` replaces those dialects' *plumbing* with one
namespaced get-or-create registry of named instruments:

* :class:`Counter` — a monotonically increasing float
  (``engine.tuples_evaluated``, ``shard.legs_skipped``, ...);
* :class:`Gauge` — a value that moves both ways (``serve.pending``);
* :class:`Histogram` — a bounded reservoir of recent observations with
  nearest-rank percentiles (``serve.queue_wait_seconds`` p50/p95/p99).

Instruments are cheap to record into (one lock acquisition, no string
work) and the registry renders either a flat ``{name: float}`` snapshot,
JSON, or Prometheus text exposition.  :func:`merged_snapshot` folds many
registries — e.g. the scatter front door plus every shard engine — into
one view, summing counters and pooling histogram reservoirs so merged
percentiles are computed over the union of observations, not averaged.
"""

from __future__ import annotations

import json
import math
import threading
from collections import deque
from typing import Deque, Dict, Iterable, List, Mapping, Optional, Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (0 < q <= 100); 0.0 if empty.

    The single percentile implementation of the stack — the serving
    layer's :class:`~repro.serve.stats.ServiceStats` and every histogram
    here share it, so "p99" means the same thing in every snapshot.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[min(rank, len(ordered)) - 1])


class Counter:
    """A monotonically increasing metric.  Thread-safe."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A metric that can move in both directions.  Thread-safe."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Bounded reservoir of recent observations with lifetime count/sum.

    The reservoir keeps the most recent ``window`` observations (a sliding
    window, not a sampling reservoir: serving percentiles should reflect
    *current* behaviour, and the window bound keeps memory constant).
    ``count`` and ``sum`` are lifetime totals, so rates derived from them
    are exact even after the window rolls.
    """

    __slots__ = ("name", "window", "count", "sum", "_values", "_lock")

    def __init__(self, name: str, lock: threading.Lock,
                 window: int = 2048) -> None:
        if window < 1:
            raise ValueError(f"histogram window must be >= 1, got {window}")
        self.name = name
        self.window = window
        self.count = 0
        self.sum = 0.0
        self._values: Deque[float] = deque(maxlen=window)
        self._lock = lock

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.sum += value
            self._values.append(float(value))

    def values(self) -> List[float]:
        """A copy of the retained window (for pooling and tests)."""
        with self._lock:
            return list(self._values)

    def percentile(self, q: float) -> float:
        return percentile(self.values(), q)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


#: Percentiles every histogram exposes in snapshots.
SNAPSHOT_QUANTILES = (50, 95, 99)


def _histogram_stats(name: str, values: Sequence[float], count: int,
                     total: float) -> Dict[str, float]:
    """The flat snapshot keys of one histogram (shared with merging)."""
    ordered = sorted(values)
    stats = {
        f"{name}.count": float(count),
        f"{name}.sum": float(total),
        f"{name}.mean": (total / count) if count else 0.0,
    }
    for q in SNAPSHOT_QUANTILES:
        stats[f"{name}.p{q}"] = percentile(ordered, q)
    return stats


def _prometheus_name(name: str) -> str:
    """``engine.tuples_evaluated`` -> ``repro_engine_tuples_evaluated``."""
    sanitized = "".join(ch if ch.isalnum() else "_" for ch in name)
    return f"repro_{sanitized}"


class MetricsRegistry:
    """Get-or-create registry of named instruments with one lock.

    All instruments of a registry share a single lock: recording is one
    uncontended acquisition, and a snapshot taken from another thread
    never sees a torn update.  Names are dotted
    (``layer.metric``, e.g. ``serve.queue_wait_seconds``); asking for an
    existing name returns the existing instrument, asking with a
    conflicting type raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: "Dict[str, Counter]" = {}
        self._gauges: "Dict[str, Gauge]" = {}
        self._histograms: "Dict[str, Histogram]" = {}

    # -- get-or-create -------------------------------------------------
    def _check_free(self, name: str, *stores) -> None:
        for store in stores:
            if name in store:
                raise ValueError(
                    f"metric {name!r} already registered with another type")

    def counter(self, name: str) -> Counter:
        with self._lock:
            existing = self._counters.get(name)
            if existing is not None:
                return existing
            self._check_free(name, self._gauges, self._histograms)
            instrument = Counter(name, self._lock)
            self._counters[name] = instrument
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            existing = self._gauges.get(name)
            if existing is not None:
                return existing
            self._check_free(name, self._counters, self._histograms)
            instrument = Gauge(name, self._lock)
            self._gauges[name] = instrument
            return instrument

    def histogram(self, name: str, window: int = 2048) -> Histogram:
        with self._lock:
            existing = self._histograms.get(name)
            if existing is not None:
                return existing
            self._check_free(name, self._counters, self._gauges)
            instrument = Histogram(name, self._lock, window=window)
            self._histograms[name] = instrument
            return instrument

    # -- exposition ----------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """Flat ``{name: float}`` view; histograms expand to
        ``name.count/.sum/.mean/.p50/.p95/.p99``."""
        with self._lock:
            counters = {name: c._value for name, c in self._counters.items()}
            gauges = {name: g._value for name, g in self._gauges.items()}
            histograms = [(name, list(h._values), h.count, h.sum)
                          for name, h in self._histograms.items()]
        snap: Dict[str, float] = {}
        snap.update(counters)
        snap.update(gauges)
        for name, values, count, total in histograms:
            snap.update(_histogram_stats(name, values, count, total))
        return snap

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The snapshot as sorted JSON (the CLI's shutdown printout)."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    # -- cross-process state shipping ----------------------------------
    def state(self) -> Dict[str, object]:
        """The registry's full raw state as picklable plain containers.

        Unlike :meth:`snapshot`, histograms keep their *raw reservoir
        values* (plus lifetime count/sum and window), so a registry
        rebuilt from this state via :meth:`from_state` pools correctly
        under :func:`merged_snapshot` — percentiles over the union of
        observations, never a mean of pre-flattened percentiles.  This is
        how per-shard worker processes ship their ``engine.*`` registries
        back to the scatter front door on each gather.
        """
        with self._lock:
            return {
                "counters": {name: c._value
                             for name, c in self._counters.items()},
                "gauges": {name: g._value
                           for name, g in self._gauges.items()},
                "histograms": {
                    name: {"values": list(h._values), "count": h.count,
                           "sum": h.sum, "window": h.window}
                    for name, h in self._histograms.items()
                },
            }

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "MetricsRegistry":
        """Rebuild a registry replica from a :meth:`state` mapping."""
        registry = cls()
        for name, value in dict(state.get("counters", {})).items():
            registry.counter(name)._value = float(value)
        for name, value in dict(state.get("gauges", {})).items():
            registry.gauge(name).set(float(value))
        for name, payload in dict(state.get("histograms", {})).items():
            hist = registry.histogram(name,
                                      window=int(payload.get("window", 2048)))
            for value in payload.get("values", []):
                hist._values.append(float(value))
            hist.count = int(payload.get("count", len(payload.get("values", []))))
            hist.sum = float(payload.get("sum", 0.0))
        return registry

    def render_prometheus(self) -> str:
        """Prometheus text exposition (counters, gauges, summaries)."""
        with self._lock:
            counters = sorted((n, c._value) for n, c in self._counters.items())
            gauges = sorted((n, g._value) for n, g in self._gauges.items())
            histograms = sorted(
                (n, list(h._values), h.count, h.sum)
                for n, h in self._histograms.items())
        lines: List[str] = []
        for name, value in counters:
            prom = _prometheus_name(name)
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {value:g}")
        for name, value in gauges:
            prom = _prometheus_name(name)
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {value:g}")
        for name, values, count, total in histograms:
            prom = _prometheus_name(name)
            lines.append(f"# TYPE {prom} summary")
            ordered = sorted(values)
            for q in SNAPSHOT_QUANTILES:
                lines.append(f'{prom}{{quantile="0.{q}"}} '
                             f"{percentile(ordered, q):g}")
            lines.append(f"{prom}_sum {total:g}")
            lines.append(f"{prom}_count {count:g}")
        return "\n".join(lines) + ("\n" if lines else "")


def merged_snapshot(registries: Iterable[MetricsRegistry]) -> Dict[str, float]:
    """One flat snapshot over many registries.

    Counters and gauges sharing a name are summed (the scatter layer
    merges each shard engine's ``engine.*`` counters this way);
    histograms sharing a name pool their reservoirs and lifetime totals,
    so merged percentiles are taken over the union of observations —
    never a mean of per-registry percentiles.
    """
    sums: Dict[str, float] = {}
    pooled: Dict[str, List[float]] = {}
    counts: Dict[str, float] = {}
    totals: Dict[str, float] = {}
    for registry in registries:
        with registry._lock:
            for name, counter in registry._counters.items():
                sums[name] = sums.get(name, 0.0) + counter._value
            for name, gauge in registry._gauges.items():
                sums[name] = sums.get(name, 0.0) + gauge._value
            for name, hist in registry._histograms.items():
                pooled.setdefault(name, []).extend(hist._values)
                counts[name] = counts.get(name, 0.0) + hist.count
                totals[name] = totals.get(name, 0.0) + hist.sum
    snap = dict(sums)
    for name, values in pooled.items():
        snap.update(_histogram_stats(name, values, int(counts[name]),
                                     totals[name]))
    return snap
