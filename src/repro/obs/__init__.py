"""Observability for the whole stack: metrics, traces, EXPLAIN ANALYZE.

The fifth layer, orthogonal to the other four.  Every front door
(:class:`~repro.engine.Executor`,
:class:`~repro.shard.ScatterGatherExecutor`,
:class:`~repro.serve.QueryService`) publishes into a
:class:`MetricsRegistry` of namespaced counters / gauges / reservoir
histograms (``engine.*``, ``shard.*``, ``serve.*``) and — when given an
enabled :class:`Tracer` — emits per-request span trees into a ring
buffer with a configurable slow-query log.  Tracing is off by default
and *cheap* when off: the disabled tracer is the no-op
:data:`NULL_TRACER` / :data:`NULL_SPAN` singleton pair, adding zero
allocations to the hot path.  ``explain_analyze`` on either executor
(and the ``analyze`` CLI command) runs one query traced and renders the
span tree with estimated cost vs. actual tuples evaluated per backend.

See ``docs/observability.md`` for the metric names and span schema.
"""

from repro.obs.explain import (
    analyze_with,
    estimated_vs_actual,
    misestimation_report,
    render_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merged_snapshot,
    percentile,
)
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullSpan,
    NullTracer,
    Span,
    Trace,
    Tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullSpan",
    "NullTracer",
    "Span",
    "Trace",
    "Tracer",
    "analyze_with",
    "estimated_vs_actual",
    "merged_snapshot",
    "misestimation_report",
    "percentile",
    "render_trace",
]
