"""Per-request span trees with a disabled-by-default no-op fast path.

A :class:`Tracer` produces one :class:`Trace` per front-door request — a
tree of :class:`Span` nodes covering queue wait, batch drain, planning
(with cost estimates), per-shard scatter legs, the fused sweep's
attributed share, and the gather.  Completed traces land in a bounded
ring buffer; traces slower than the tracer's ``slow_threshold``
additionally land in the slow-query log, so the last N requests and the
recent outliers are always inspectable without any sampling
infrastructure.

The hot-path contract is the null-object pattern: a disabled tracer is
:data:`NULL_TRACER`, whose :meth:`~NullTracer.trace` returns the shared
:data:`NULL_SPAN` singleton.  Every span operation on it —
``child`` / ``set`` / ``annotate`` / ``finish`` — returns the singleton
itself and allocates **nothing** (the instrumentation API is positional
exactly so no kwargs dict is built), and ``bool(NULL_SPAN)`` is False so
call sites can guard work that only matters when tracing
(``if span: span.set("shards", rendering)``).  Tests pin the
zero-allocation property with ``sys.getallocatedblocks``.

Spans are timed by the owning trace's injected clock, so a service
driven by a fake clock in tests produces spans in that same timebase and
queue-wait spans (explicit ``start=enqueued_at``) line up with engine
spans on one axis.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional


class Span:
    """One timed, attributed node of a trace tree.

    Spans are created through :meth:`Tracer.trace` (a root) or
    :meth:`child`; attributes are attached with the positional
    :meth:`set` (the hot-path form — no kwargs dict) and the span is
    closed with :meth:`finish` or by leaving it as a context manager.
    Finishing the *root* span completes the trace and records it with
    the tracer.
    """

    __slots__ = ("name", "trace", "parent", "start", "end", "attrs")

    def __init__(self, name: str, trace: "Trace",
                 parent: Optional["Span"] = None,
                 start: Optional[float] = None) -> None:
        self.name = name
        self.trace = trace
        self.parent = parent
        self.start = trace.clock() if start is None else float(start)
        self.end: Optional[float] = None
        self.attrs: Dict[str, object] = {}

    def __bool__(self) -> bool:
        return True

    def set(self, key: str, value) -> "Span":
        """Attach one attribute; returns ``self`` for chaining."""
        self.attrs[key] = value
        return self

    def annotate(self, **attrs) -> "Span":
        """Attach several attributes at once (not for hot paths)."""
        self.attrs.update(attrs)
        return self

    def child(self, name: str, start: Optional[float] = None) -> "Span":
        """Open a child span (``start`` overrides the clock reading)."""
        span = Span(name, self.trace, parent=self, start=start)
        self.trace.spans.append(span)
        return span

    def finish(self, end: Optional[float] = None) -> "Span":
        """Close the span (idempotent); closing a root records the trace."""
        if self.end is None:
            self.end = self.trace.clock() if end is None else float(end)
            if self.parent is None:
                self.trace._complete()
        return self

    @property
    def duration(self) -> float:
        """Seconds from start to finish (to "now" while still open)."""
        end = self.trace.clock() if self.end is None else self.end
        return end - self.start

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.finish()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.end is None else f"{self.duration * 1e3:.3f}ms"
        return f"<Span {self.name} {state} {self.attrs}>"


class NullSpan:
    """The shared no-op span: every operation returns the singleton.

    ``__slots__ = ()`` and the class-level ``attrs`` mean no instance
    dict and no per-call allocation; ``bool()`` is False so guarded
    attribute rendering is skipped entirely when tracing is off.
    """

    __slots__ = ()

    name = "null"
    parent = None
    start = 0.0
    end = 0.0
    duration = 0.0
    attrs: Dict[str, object] = {}

    def __bool__(self) -> bool:
        return False

    def set(self, key: str, value) -> "NullSpan":
        return self

    def annotate(self, **attrs) -> "NullSpan":
        return self

    def child(self, name: str, start: Optional[float] = None) -> "NullSpan":
        return self

    def finish(self, end: Optional[float] = None) -> "NullSpan":
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: The process-wide no-op span; identity-compared in tests.
NULL_SPAN = NullSpan()


class Trace:
    """One request's span tree: an append-only list of spans.

    Parallel scatter legs append spans from pool threads; ``list.append``
    is atomic under the GIL and the list only ever grows, so no lock is
    needed (a lock here would sit on the traced hot path of every span).
    Spans themselves are single-writer — the thread that runs the leg —
    and readers (``children_of`` / ``find`` / rendering) run after the
    legs complete.
    """

    __slots__ = ("tracer", "clock", "spans", "root")

    def __init__(self, tracer: "Tracer", name: str,
                 start: Optional[float] = None) -> None:
        self.tracer = tracer
        self.clock = tracer.clock
        root = Span(name, self, parent=None, start=start)
        self.spans: List[Span] = [root]
        self.root = root

    def add_span(self, name: str, parent: Optional[Span],
                 start: Optional[float] = None) -> Span:
        span = Span(name, self, parent=parent, start=start)
        self.spans.append(span)
        return span

    def children_of(self, span: Span) -> List[Span]:
        """Direct children in creation order (creation order is stable:
        the list only ever appends)."""
        return [s for s in self.spans if s.parent is span]

    def find(self, name: str) -> List[Span]:
        """Every span named ``name``, in creation order."""
        return [s for s in self.spans if s.name == name]

    @property
    def duration(self) -> float:
        return self.root.duration

    def _complete(self) -> None:
        self.tracer._record(self)


class Tracer:
    """Factory and sink of traces: ring buffer + slow-query log.

    Parameters
    ----------
    ring_size:
        How many completed traces the ring buffer retains (oldest out).
    slow_threshold:
        Root-span duration (seconds) at or above which a completed trace
        is *also* kept in the slow-query log; ``None`` disables the log.
    slow_log_size:
        Bound of the slow-query log.
    clock:
        Time source for every span of every trace this tracer produces.
        Inject the service's clock so queue-wait spans (timed by
        ``enqueued_at``) share the engine spans' timebase.
    """

    enabled = True

    def __init__(self, ring_size: int = 256,
                 slow_threshold: Optional[float] = None,
                 slow_log_size: int = 64,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        if ring_size < 1:
            raise ValueError(f"ring_size must be >= 1, got {ring_size}")
        if slow_log_size < 1:
            raise ValueError(
                f"slow_log_size must be >= 1, got {slow_log_size}")
        if slow_threshold is not None and slow_threshold < 0:
            raise ValueError("slow_threshold must be >= 0 or None")
        self.clock = clock
        self.slow_threshold = slow_threshold
        self._ring: Deque[Trace] = deque(maxlen=ring_size)
        self._slow: Deque[Trace] = deque(maxlen=slow_log_size)
        self._lock = threading.Lock()
        self.traces_recorded = 0
        self.slow_traces = 0

    def trace(self, name: str, start: Optional[float] = None) -> Span:
        """Open a new trace; returns its root span."""
        return Trace(self, name, start=start).root

    def _record(self, trace: Trace) -> None:
        with self._lock:
            self._ring.append(trace)
            self.traces_recorded += 1
            if (self.slow_threshold is not None
                    and trace.duration >= self.slow_threshold):
                self._slow.append(trace)
                self.slow_traces += 1

    def recent(self) -> List[Trace]:
        """Completed traces still in the ring buffer, oldest first."""
        with self._lock:
            return list(self._ring)

    def slow_queries(self) -> List[Trace]:
        """Traces at or above ``slow_threshold``, oldest first."""
        with self._lock:
            return list(self._slow)


class NullTracer:
    """The disabled tracer: ``trace`` hands back :data:`NULL_SPAN`."""

    enabled = False
    slow_threshold = None

    def trace(self, name: str, start: Optional[float] = None) -> NullSpan:
        return NULL_SPAN

    def recent(self) -> List[Trace]:
        return []

    def slow_queries(self) -> List[Trace]:
        return []


#: The process-wide disabled tracer; every layer defaults to it.
NULL_TRACER = NullTracer()
