"""EXPLAIN ANALYZE rendering: span trees with estimated vs. actual work.

:func:`render_trace` turns one completed :class:`~repro.obs.trace.Trace`
into the text the ``analyze`` CLI command prints: the span tree indented
by depth with per-span durations and attributes, followed by a
per-backend table of the planner's estimated cost next to the tuples the
backend actually evaluated — the feedback loop that keeps the cost model
honest.  :func:`analyze_with` is the shared ``explain_analyze``
implementation of both executor front doors: run the query once with a
private tracer (bypassing the result cache, so the plan and execution
really happen) and render what happened.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.obs.trace import Span, Trace, Tracer

#: Span names whose ``tuples_evaluated`` attribute is actual backend work.
_WORK_SPANS = ("engine.run", "engine.fused_sweep", "engine.run_batch")


def _format_attr(value) -> str:
    """Render one attribute value; hot paths store these *structured*.

    Instrumentation sites attach tuples (per-backend ``(name, cost)``
    estimate pairs, per-member attributed shares) instead of formatting
    strings while tracing — all float formatting happens here, at render
    time, where it is off the query's critical path.
    """
    if isinstance(value, float):
        return f"{value:g}"
    if isinstance(value, (tuple, list)):
        if value and all(isinstance(item, tuple) and len(item) == 2
                         for item in value):
            # Pair sequences: (backend, cost) estimates, (shard, reason)
            # prune decisions.
            return "|".join(f"{first}:{_format_attr(second)}"
                            for first, second in value)
        return ",".join(_format_attr(item) for item in value)
    return str(value)


def _span_line(span: Span, depth: int) -> str:
    duration_ms = span.duration * 1e3
    attrs = " ".join(f"{key}={_format_attr(span.attrs[key])}"
                     for key in sorted(span.attrs))
    line = f"{'  ' * depth}{span.name}  {duration_ms:.3f} ms"
    return f"{line}  [{attrs}]" if attrs else line


def _walk(trace: Trace, span: Span, depth: int, lines: List[str]) -> None:
    lines.append(_span_line(span, depth))
    for child in trace.children_of(span):
        _walk(trace, child, depth + 1, lines)


def estimated_vs_actual(trace: Trace) -> Dict[str, Tuple[float, float]]:
    """Per-backend ``(estimated cost, actual tuples evaluated)`` totals.

    Estimates come from plan spans (``estimated_cost`` attributes, one
    per planned query); actuals from run / fused-sweep spans.  A fused
    sweep's actual is its attributed total — each shared tuple counted
    once — so an actual far below the summed solo estimates is the
    fusion win, not a misestimate.
    """
    totals: Dict[str, List[float]] = {}
    for span in list(trace.spans):
        backend = span.attrs.get("backend")
        if backend is None:
            continue
        entry = totals.setdefault(str(backend), [0.0, 0.0])
        if span.name.endswith(".plan"):
            estimated = span.attrs.get("estimated_cost")
            if estimated is not None:
                entry[0] += float(estimated)
        elif span.name in _WORK_SPANS:
            entry[1] += float(span.attrs.get("tuples_evaluated", 0.0))
    return {backend: (est, actual)
            for backend, (est, actual) in totals.items()
            if est or actual}


def render_trace(trace: Trace, result=None) -> str:
    """The ``analyze`` text: span tree + estimated-vs-actual table."""
    lines: List[str] = []
    _walk(trace, trace.root, 0, lines)
    if result is not None:
        backend = getattr(result, "extra", {}).get("backend", "?")
        rows = len(getattr(result, "tids", ()))
        lines.append(f"returned {rows} rows via {backend}")
    table = estimated_vs_actual(trace)
    if table:
        lines.append("estimated cost vs actual tuples evaluated:")
        width = max(len(name) for name in table)
        for backend in sorted(table):
            estimated, actual = table[backend]
            ratio = (actual / estimated) if estimated else float("inf")
            lines.append(f"  {backend.ljust(width)}  "
                         f"estimated={estimated:.1f}  actual={actual:.0f}  "
                         f"actual/estimated={ratio:.2f}")
    return "\n".join(lines)


def analyze_with(front_door, query, root_name: str) -> str:
    """Run ``query`` traced through ``front_door`` and render the trace.

    The shared body of ``Executor.explain_analyze`` and
    ``ScatterGatherExecutor.explain_analyze``: a private always-on tracer
    (the front door's own tracer may be the null object), the result
    cache bypassed so planning and execution genuinely run, and the
    render of the single resulting trace returned.
    """
    tracer = Tracer(ring_size=1)
    root = tracer.trace(root_name)
    result = front_door.execute(query, parent_span=root,
                                use_result_cache=False)
    root.finish()
    return render_trace(root.trace, result=result)


def misestimation_report(snapshot: Mapping[str, float]) -> str:
    """Summarize the per-backend cost-feedback counters of a snapshot.

    Reads the ``planner.*`` counters the executor maintains
    (``costed_queries`` / ``estimated_cost_total`` /
    ``actual_tuples_total`` / ``misestimates`` per backend) and renders
    one line per backend — the view ``calibrate_cost_model.py --metrics``
    prints so an operator can see *which* backend's constants drift.
    """
    prefix = "planner.costed_queries."
    backends = sorted(name[len(prefix):] for name in snapshot
                      if name.startswith(prefix))
    if not backends:
        return "no cost-feedback counters in snapshot"
    lines = ["per-backend cost feedback (from metrics snapshot):"]
    for backend in backends:
        costed = snapshot.get(f"planner.costed_queries.{backend}", 0.0)
        estimated = snapshot.get(
            f"planner.estimated_cost_total.{backend}", 0.0)
        actual = snapshot.get(f"planner.actual_tuples_total.{backend}", 0.0)
        wrong = snapshot.get(f"planner.misestimates.{backend}", 0.0)
        mean_ratio = (actual / estimated) if estimated else 0.0
        lines.append(
            f"  {backend}: {costed:.0f} costed queries, "
            f"estimated={estimated:.1f} actual={actual:.0f} "
            f"(actual/estimated={mean_ratio:.2f}), "
            f"{wrong:.0f} misestimates (>4x off)")
    return "\n".join(lines)
