"""The wire protocol: JSON encodings of queries, results, and errors.

Everything that crosses the HTTP/websocket boundary is encoded here, in
one place, so the server and the async client cannot drift apart:

* **predicates** — a plain ``{dim: value}`` object (conditions are
  equality over coded integer values, exactly :class:`~repro.query.Predicate`);
* **ranking functions** — either structurally (``linear``,
  ``squared_distance``, ``manhattan_distance``, ``constrained``, and full
  ``expression`` trees) or by registered name (``{"kind": "ref",
  "name": ...}`` against the server's :class:`FunctionRegistry`);
* **queries** — ``topk`` and ``skyline`` envelopes mirroring
  :class:`~repro.query.TopKQuery` / :class:`~repro.query.SkylineQuery`;
* **results** — every field of :class:`~repro.query.QueryResult` /
  :class:`~repro.skyline.engine.SkylineResult` including the engine's
  full ``extra`` plan metadata, plus a top-level ``degraded`` flag
  mirroring the fault layer's ``extra["degraded"]`` contract;
* **errors** — a typed envelope (``type`` / ``status`` / ``message`` /
  optional ``retry_after``) that the client maps back to the *same*
  exception classes the in-process serving layer raises, so remote
  callers can ``except RequestTimeoutError`` exactly like local ones.

Bit-identical round trips are a hard requirement (the wire-parity suite
enforces them): Python's ``json`` emits floats via ``repr``, which
round-trips every IEEE double exactly, so scores, weights, and targets
survive encode → decode unchanged.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import QueryError, ReproError
from repro.functions.base import FunctionShape, RankingFunction
from repro.functions.distance import (
    ManhattanDistanceFunction,
    SquaredDistanceFunction,
)
from repro.functions.expression import (
    Abs,
    Add,
    Const,
    ConstrainedFunction,
    Expr,
    ExpressionFunction,
    Mul,
    Pow,
    Sub,
    Var,
)
from repro.functions.linear import LinearFunction
from repro.query import Predicate, QueryResult, SkylineQuery, TopKQuery
from repro.serve.batcher import DEFAULT_PRIORITY, PRIORITY_CLASSES
from repro.serve.errors import (
    RequestTimeoutError,
    ServeError,
    ServiceClosedError,
    ServiceOverloadedError,
    ShardUnavailableError,
)
from repro.skyline.engine import SkylineResult

PROTOCOL_VERSION = 1


def decode_priority(value, default: str = DEFAULT_PRIORITY) -> str:
    """Validate a request's priority class (400 on an unknown name)."""
    if value is None:
        return default
    name = str(value)
    if name not in PRIORITY_CLASSES:
        raise ProtocolError(
            f"unknown priority class {name!r}; expected one of "
            f"{', '.join(PRIORITY_CLASSES)}")
    return name


class ProtocolError(ReproError):
    """A request (or response) violates the wire protocol."""


class RateLimitedError(ReproError):
    """The per-client token bucket is exhausted (HTTP 429).

    ``retry_after`` is the seconds until the bucket refills enough to
    admit one request — surfaced as the ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after: Optional[float] = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class RemoteServerError(ReproError):
    """The server reported a failure with no richer local type (HTTP 500)."""

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


# ----------------------------------------------------------------------
# predicates
# ----------------------------------------------------------------------
def encode_predicate(predicate: Predicate) -> Dict[str, int]:
    """``Predicate`` → ``{dim: coded value}``."""
    return {dim: int(value) for dim, value in predicate.conditions}


def decode_predicate(obj) -> Predicate:
    if obj is None:
        return Predicate.of()
    if not isinstance(obj, Mapping):
        raise ProtocolError("predicate must be a {dim: value} object")
    conditions: Dict[str, int] = {}
    for dim, value in obj.items():
        if not isinstance(dim, str):
            raise ProtocolError("predicate dimensions must be strings")
        if isinstance(value, bool) or not isinstance(value, int):
            raise ProtocolError(
                f"predicate value for {dim!r} must be an integer code")
        conditions[dim] = value
    return Predicate.of(conditions)


# ----------------------------------------------------------------------
# ranking functions
# ----------------------------------------------------------------------
class FunctionRegistry:
    """Server-side names for ranking functions (``{"kind": "ref"}``).

    A deployment registers its blessed scoring functions once; clients
    then rank by name instead of shipping weights — the thin-web-layer
    shape of the slicer servers this tier is modeled on.
    """

    def __init__(self) -> None:
        self._functions: Dict[str, RankingFunction] = {}

    def register(self, name: str, function: RankingFunction) -> None:
        if not isinstance(name, str) or not name:
            raise ProtocolError("function names must be non-empty strings")
        self._functions[name] = function

    def get(self, name: str) -> RankingFunction:
        function = self._functions.get(name)
        if function is None:
            raise ProtocolError(
                f"no ranking function registered under {name!r} "
                f"(known: {sorted(self._functions) or 'none'})")
        return function

    def names(self) -> List[str]:
        return sorted(self._functions)


def _encode_expr(expr: Expr) -> dict:
    if isinstance(expr, Var):
        return {"op": "var", "name": expr.name}
    if isinstance(expr, Const):
        return {"op": "const", "value": expr.value}
    if isinstance(expr, Add):
        return {"op": "add", "left": _encode_expr(expr.left),
                "right": _encode_expr(expr.right)}
    if isinstance(expr, Sub):
        return {"op": "sub", "left": _encode_expr(expr.left),
                "right": _encode_expr(expr.right)}
    if isinstance(expr, Mul):
        return {"op": "mul", "left": _encode_expr(expr.left),
                "right": _encode_expr(expr.right)}
    if isinstance(expr, Pow):
        return {"op": "pow", "base": _encode_expr(expr.base),
                "exponent": int(expr.exponent)}
    if isinstance(expr, Abs):
        return {"op": "abs", "inner": _encode_expr(expr.inner)}
    raise ProtocolError(f"cannot encode expression node {type(expr).__name__}")


def _decode_expr(obj) -> Expr:
    if not isinstance(obj, Mapping) or "op" not in obj:
        raise ProtocolError("expression nodes must be objects with an 'op'")
    op = obj["op"]
    if op == "var":
        return Var(str(obj["name"]))
    if op == "const":
        return Const(float(obj["value"]))
    if op in ("add", "sub", "mul"):
        node = {"add": Add, "sub": Sub, "mul": Mul}[op]
        return node(_decode_expr(obj["left"]), _decode_expr(obj["right"]))
    if op == "pow":
        return Pow(_decode_expr(obj["base"]), int(obj["exponent"]))
    if op == "abs":
        return Abs(_decode_expr(obj["inner"]))
    raise ProtocolError(f"unknown expression op {op!r}")


def encode_function(function: RankingFunction) -> dict:
    """A structural encoding of ``function`` (see :func:`decode_function`).

    Linear subclasses (including the weighted average) encode as plain
    ``linear`` over their stored weights, which evaluates bit-identically.
    A bare string encodes as a ``ref`` against the server's registry, so
    clients may put a registered name where a query takes a function.
    """
    if isinstance(function, str):
        return {"kind": "ref", "name": function}
    if isinstance(function, LinearFunction):
        return {"kind": "linear", "dims": list(function.dims),
                "weights": list(function.weights),
                "constant": function.constant}
    if isinstance(function, SquaredDistanceFunction):
        return {"kind": "squared_distance", "dims": list(function.dims),
                "targets": list(function.targets),
                "weights": list(function.weights)}
    if isinstance(function, ManhattanDistanceFunction):
        return {"kind": "manhattan_distance", "dims": list(function.dims),
                "targets": list(function.targets),
                "weights": list(function.weights)}
    if isinstance(function, ConstrainedFunction):
        return {"kind": "constrained",
                "base": encode_function(function.base),
                "dim": function.constrained_dim,
                "low": function.window.low, "high": function.window.high}
    if isinstance(function, ExpressionFunction):
        return {"kind": "expression", "expr": _encode_expr(function.expr),
                "dims": list(function.dims),
                "shape": function.shape.name.lower()}
    raise ProtocolError(
        f"cannot encode ranking function {type(function).__name__}; "
        f"register it by name and send a 'ref' instead")


def decode_function(obj, registry: Optional[FunctionRegistry] = None
                    ) -> RankingFunction:
    if not isinstance(obj, Mapping) or "kind" not in obj:
        raise ProtocolError("function must be an object with a 'kind'")
    kind = obj["kind"]
    try:
        if kind == "ref":
            if registry is None:
                raise ProtocolError(
                    "this endpoint has no function registry; send the "
                    "function structurally")
            return registry.get(str(obj["name"]))
        if kind == "linear":
            return LinearFunction(list(obj["dims"]), list(obj["weights"]),
                                  float(obj.get("constant", 0.0)))
        if kind == "squared_distance":
            return SquaredDistanceFunction(list(obj["dims"]),
                                           list(obj["targets"]),
                                           obj.get("weights"))
        if kind == "manhattan_distance":
            return ManhattanDistanceFunction(list(obj["dims"]),
                                             list(obj["targets"]),
                                             obj.get("weights"))
        if kind == "constrained":
            return ConstrainedFunction(decode_function(obj["base"], registry),
                                       str(obj["dim"]),
                                       float(obj["low"]), float(obj["high"]))
        if kind == "expression":
            shape_name = str(obj.get("shape", "general")).upper()
            try:
                shape = FunctionShape[shape_name]
            except KeyError:
                raise ProtocolError(f"unknown function shape {shape_name!r}")
            dims = obj.get("dims")
            return ExpressionFunction(_decode_expr(obj["expr"]),
                                      dims=list(dims) if dims else None,
                                      shape=shape)
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed {kind!r} function: {exc}") from exc
    raise ProtocolError(f"unknown function kind {kind!r}")


# ----------------------------------------------------------------------
# queries
# ----------------------------------------------------------------------
def encode_query(query) -> dict:
    if isinstance(query, TopKQuery):
        return {"type": "topk",
                "predicate": encode_predicate(query.predicate),
                "function": encode_function(query.function),
                "k": int(query.k)}
    if isinstance(query, SkylineQuery):
        return {"type": "skyline",
                "predicate": encode_predicate(query.predicate),
                "dims": list(query.preference_dims),
                "targets": (list(query.targets)
                            if query.targets is not None else None)}
    raise ProtocolError(f"cannot encode query {type(query).__name__}")


def decode_query(obj, registry: Optional[FunctionRegistry] = None):
    if not isinstance(obj, Mapping) or "type" not in obj:
        raise ProtocolError("query must be an object with a 'type'")
    kind = obj["type"]
    try:
        if kind == "topk":
            return TopKQuery(decode_predicate(obj.get("predicate")),
                             decode_function(obj["function"], registry),
                             int(obj["k"]))
        if kind == "skyline":
            targets = obj.get("targets")
            return SkylineQuery(
                decode_predicate(obj.get("predicate")),
                tuple(str(d) for d in obj["dims"]),
                targets=(tuple(float(t) for t in targets)
                         if targets is not None else None))
    except (ProtocolError, QueryError):
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed {kind!r} query: {exc}") from exc
    raise ProtocolError(f"unknown query type {kind!r}")


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
def _jsonable(value):
    """Make an ``extra`` value JSON-safe (tuples become lists)."""
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def is_degraded(result) -> bool:
    """Whether the fault layer marked ``result`` as a partial answer."""
    return bool(result.extra.get("degraded"))


def encode_result(result) -> dict:
    """``QueryResult`` / ``SkylineResult`` → response-envelope object."""
    if isinstance(result, QueryResult):
        return {"result_kind": "topk",
                "tids": list(result.tids), "scores": list(result.scores),
                "disk_accesses": int(result.disk_accesses),
                "states_generated": int(result.states_generated),
                "peak_heap_size": int(result.peak_heap_size),
                "tuples_evaluated": int(result.tuples_evaluated),
                "elapsed_seconds": result.elapsed_seconds,
                "extra": _jsonable(result.extra),
                "degraded": is_degraded(result)}
    if isinstance(result, SkylineResult):
        return {"result_kind": "skyline",
                "tids": list(result.tids),
                "disk_accesses": int(result.disk_accesses),
                "signature_accesses": int(result.signature_accesses),
                "peak_heap_size": int(result.peak_heap_size),
                "nodes_expanded": int(result.nodes_expanded),
                "elapsed_seconds": result.elapsed_seconds,
                "extra": _jsonable(result.extra),
                "degraded": is_degraded(result)}
    raise ProtocolError(f"cannot encode result {type(result).__name__}")


def decode_result(obj):
    if not isinstance(obj, Mapping) or "result_kind" not in obj:
        raise ProtocolError("result must be an object with a 'result_kind'")
    kind = obj["result_kind"]
    if kind == "topk":
        return QueryResult(
            tids=tuple(int(t) for t in obj["tids"]),
            scores=tuple(float(s) for s in obj["scores"]),
            disk_accesses=int(obj.get("disk_accesses", 0)),
            states_generated=int(obj.get("states_generated", 0)),
            peak_heap_size=int(obj.get("peak_heap_size", 0)),
            tuples_evaluated=int(obj.get("tuples_evaluated", 0)),
            elapsed_seconds=float(obj.get("elapsed_seconds", 0.0)),
            extra=dict(obj.get("extra") or {}))
    if kind == "skyline":
        return SkylineResult(
            tids=tuple(int(t) for t in obj["tids"]),
            disk_accesses=int(obj.get("disk_accesses", 0)),
            signature_accesses=int(obj.get("signature_accesses", 0)),
            peak_heap_size=int(obj.get("peak_heap_size", 0)),
            nodes_expanded=int(obj.get("nodes_expanded", 0)),
            elapsed_seconds=float(obj.get("elapsed_seconds", 0.0)),
            extra=dict(obj.get("extra") or {}))
    raise ProtocolError(f"unknown result kind {kind!r}")


# ----------------------------------------------------------------------
# errors  ↔  HTTP status codes
# ----------------------------------------------------------------------
#: Ordered (class, status) pairs; the first ``isinstance`` match wins, so
#: subclasses must precede their bases.  This is the table
#: ``docs/network_serving.md`` documents.
ERROR_STATUS: Tuple[Tuple[type, int], ...] = (
    (RateLimitedError, 429),
    (ServiceOverloadedError, 503),
    (ShardUnavailableError, 503),
    (RequestTimeoutError, 504),
    (ServiceClosedError, 503),
    (ProtocolError, 400),
    (QueryError, 400),
)

_ERROR_TYPES: Dict[str, Callable[..., Exception]] = {
    cls.__name__: cls for cls, _ in ERROR_STATUS
}


def status_of(exc: Exception) -> int:
    """HTTP status for ``exc`` (500 for anything unmapped)."""
    for cls, status in ERROR_STATUS:
        if isinstance(exc, cls):
            return status
    return 500


def retry_after_of(exc: Exception) -> Optional[float]:
    value = getattr(exc, "retry_after", None)
    return float(value) if value is not None else None


def encode_error(exc: Exception) -> dict:
    """``exc`` → the ``{"error": ...}`` envelope body."""
    payload: Dict[str, object] = {
        "type": type(exc).__name__,
        "status": status_of(exc),
        "message": str(exc),
    }
    retry_after = retry_after_of(exc)
    if retry_after is not None:
        payload["retry_after"] = retry_after
    return {"error": payload}


def decode_error(body: Mapping, status: int) -> Exception:
    """Rebuild the typed exception a response envelope describes.

    Types the client knows (the :data:`ERROR_STATUS` table) come back as
    themselves — ``except RequestTimeoutError`` works identically against
    the wire and in process.  Anything else degrades to
    :class:`RemoteServerError` carrying the server's message.
    """
    payload = body.get("error") if isinstance(body, Mapping) else None
    if not isinstance(payload, Mapping):
        return RemoteServerError(f"HTTP {status} with no error envelope")
    name = str(payload.get("type", ""))
    message = str(payload.get("message", f"HTTP {status}"))
    retry_after = payload.get("retry_after")
    cls = _ERROR_TYPES.get(name)
    if cls is None:
        return RemoteServerError(f"{name or 'unknown error'}: {message}")
    if cls in (RateLimitedError, ServiceOverloadedError):
        return cls(message, retry_after=(float(retry_after)
                                         if retry_after is not None else None))
    return cls(message)


__all__ = [
    "ERROR_STATUS",
    "FunctionRegistry",
    "PRIORITY_CLASSES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RateLimitedError",
    "RemoteServerError",
    "decode_error",
    "decode_function",
    "decode_predicate",
    "decode_priority",
    "decode_query",
    "decode_result",
    "encode_error",
    "encode_function",
    "encode_predicate",
    "encode_query",
    "encode_result",
    "is_degraded",
    "retry_after_of",
    "status_of",
]
