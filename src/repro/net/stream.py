"""The streaming frame contract shared by the server and the client.

A streamed query is a sequence of newline-delimited JSON frames (over a
chunked HTTP response or websocket messages):

* ``{"frame": "prefix", "start": r, "entries": [[tid, score], ...]}`` —
  ranks ``r .. r+len(entries)-1`` of the final answer, already *proven*
  (the engine emits a prefix only once no unseen tuple can change it —
  see :meth:`repro.cube.query.TopKAccumulator.verified_count`); frames
  arrive in rank order with no gaps or overlaps;
* ``{"frame": "final", "result": {...}}`` — exactly one, last, carrying
  the full result envelope of :func:`repro.net.protocol.encode_result`;
  its leading ``(tid, score)`` pairs repeat every streamed prefix
  bit-identically (the wire-parity suite enforces this), so a client
  may simply keep the final frame and discard the prefixes;
* ``{"frame": "error", "error": {...}}`` — terminal failure, same typed
  envelope as a non-streaming error response.

:class:`StreamAssembler` is the client-side consistency check: it folds
frames in arrival order and verifies the prefix/final agreement instead
of trusting it.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Tuple

from repro.net.protocol import (
    ProtocolError,
    decode_error,
    decode_result,
    encode_error,
    encode_result,
)


def prefix_frame(start: int, entries) -> dict:
    return {"frame": "prefix", "start": int(start),
            "entries": [[int(tid), float(score)] for tid, score in entries]}


def final_frame(result) -> dict:
    return {"frame": "final", "result": encode_result(result)}


def error_frame(exc: Exception) -> dict:
    return {"frame": "error", "error": encode_error(exc)["error"]}


class StreamAssembler:
    """Folds a frame sequence back into ``(result, prefix pairs)``.

    Feeds on decoded JSON objects; :meth:`feed` returns ``True`` when the
    stream is complete.  A ``final`` frame whose leading pairs disagree
    with the streamed prefixes — or gapped/overlapping prefixes — raise
    :class:`~repro.net.protocol.ProtocolError`: a server bug surfaced
    loudly rather than silently served.
    """

    def __init__(self) -> None:
        self.pairs: List[Tuple[int, float]] = []
        self.result = None
        self.error: Optional[Exception] = None
        self.done = False

    def feed(self, frame: Mapping) -> bool:
        if self.done:
            raise ProtocolError("frame after the stream completed")
        if not isinstance(frame, Mapping) or "frame" not in frame:
            raise ProtocolError("stream frames must be objects with 'frame'")
        kind = frame["frame"]
        if kind == "prefix":
            start = int(frame["start"])
            if start != len(self.pairs):
                raise ProtocolError(
                    f"prefix frame starts at rank {start}, expected "
                    f"{len(self.pairs)} (gap or overlap)")
            for entry in frame["entries"]:
                tid, score = entry
                self.pairs.append((int(tid), float(score)))
            return False
        if kind == "final":
            result = decode_result(frame["result"])
            got = tuple(zip(result.tids, result.scores))[:len(self.pairs)]
            if got != tuple(self.pairs):
                raise ProtocolError(
                    "final frame disagrees with the streamed prefixes")
            self.result = result
            self.done = True
            return True
        if kind == "error":
            self.error = decode_error({"error": frame["error"]},
                                      int(frame["error"].get("status", 500)))
            self.done = True
            return True
        raise ProtocolError(f"unknown frame kind {kind!r}")


__all__ = ["StreamAssembler", "error_frame", "final_frame", "prefix_frame"]
