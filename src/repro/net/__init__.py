"""repro.net — the HTTP/websocket serving tier over ``repro.serve``.

The network front door of the ranking-cube engine: JSON queries in,
full result envelopes (plan metadata included) out, with priority-class
fair-share admission, per-client token-bucket rate limits, and streamed
verified top-k prefixes.  See ``docs/network_serving.md``.
"""

from repro.net.admission import AdmissionController, FairShareScheduler
from repro.net.client import AsyncQueryClient, WebSocketSession
from repro.net.protocol import (
    PROTOCOL_VERSION,
    FunctionRegistry,
    ProtocolError,
    RateLimitedError,
    RemoteServerError,
    decode_error,
    decode_function,
    decode_query,
    decode_result,
    encode_error,
    encode_function,
    encode_query,
    encode_result,
    status_of,
)
from repro.net.ratelimit import TokenBucket, TokenBucketLimiter
from repro.net.server import NetConfig, QueryServer
from repro.net.stream import StreamAssembler

__all__ = [
    "PROTOCOL_VERSION",
    "AdmissionController",
    "AsyncQueryClient",
    "FairShareScheduler",
    "FunctionRegistry",
    "NetConfig",
    "ProtocolError",
    "QueryServer",
    "RateLimitedError",
    "RemoteServerError",
    "StreamAssembler",
    "TokenBucket",
    "TokenBucketLimiter",
    "WebSocketSession",
    "decode_error",
    "decode_function",
    "decode_query",
    "decode_result",
    "encode_error",
    "encode_function",
    "encode_query",
    "encode_result",
    "status_of",
]
