"""Weighted fair-share admission for the HTTP tier.

The serving layer's micro-batcher already drains priority *classes* by
weighted round-robin; this module adds the missing axis for a shared
front door: fairness **across clients**.  Requests queue per
``(priority class, client id)``; the scheduler picks the next class by
the same smooth weighted round-robin as the batcher
(:data:`~repro.serve.batcher.DEFAULT_CLASS_WEIGHTS`), then round-robins
the clients inside it — so one chatty batch client cannot starve its
peers, and interactive traffic overtakes background backlogs without
ever fully starving them.

:class:`AdmissionController` is the asyncio pump: a fixed pool of
``concurrency`` workers pulls tickets in fair-share order and forwards
them into :meth:`QueryService.submit` / ``submit_many``.  The pool is
deliberately the bottleneck — under saturating load the backlog forms
*here*, where ordering is priority-aware, rather than inside a kernel
socket buffer where it is strictly FIFO.  Capacity overflow raises
:class:`~repro.serve.errors.ServiceOverloadedError` with a
``retry_after`` hint computed from the controller's own queue depth and
drain rate (satellite of this PR: same contract as the service's).
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.serve.batcher import (
    DEFAULT_CLASS_WEIGHTS,
    DEFAULT_PRIORITY,
    PRIORITY_CLASSES,
)
from repro.serve.errors import (
    RequestTimeoutError,
    ServiceClosedError,
    ServiceOverloadedError,
)

_UNSET = object()


@dataclass
class Ticket:
    """One admitted unit of work waiting for a fair-share slot."""

    query: object
    future: "asyncio.Future"
    client_id: str
    priority: str
    enqueued_at: float
    timeout: Optional[float] = None
    #: ``True`` when ``query`` is a list destined for ``submit_many``.
    many: bool = field(default=False)
    allow_partial: Optional[bool] = field(default=None)


class _ClassQueue:
    """Round-robin of per-client FIFO queues inside one priority class."""

    def __init__(self) -> None:
        self._clients: "OrderedDict[str, Deque[Ticket]]" = OrderedDict()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def push(self, ticket: Ticket) -> None:
        queue = self._clients.get(ticket.client_id)
        if queue is None:
            queue = deque()
            self._clients[ticket.client_id] = queue
        queue.append(ticket)
        self._size += 1

    def pop(self) -> Ticket:
        if not self._size:
            raise IndexError("pop from an empty class queue")
        client_id, queue = next(iter(self._clients.items()))
        ticket = queue.popleft()
        self._size -= 1
        if queue:
            # The client goes to the back of the rotation: one ticket
            # per turn, however deep its personal backlog.
            self._clients.move_to_end(client_id)
        else:
            del self._clients[client_id]
        return ticket

    def drain(self) -> List[Ticket]:
        tickets = [t for q in self._clients.values() for t in q]
        self._clients.clear()
        self._size = 0
        return tickets


class FairShareScheduler:
    """Synchronous fair-share order over ``(class, client)`` queues.

    Smooth weighted round-robin across priority classes (identical math
    to the batcher's drain — one scheduling dialect across layers),
    plain round-robin across clients within a class, FIFO per client.
    """

    def __init__(self, weights: Optional[Dict[str, float]] = None) -> None:
        self.weights = dict(DEFAULT_CLASS_WEIGHTS)
        if weights:
            self.weights.update(weights)
        self._classes: Dict[str, _ClassQueue] = {
            name: _ClassQueue() for name in PRIORITY_CLASSES}
        self._credits: Dict[str, float] = {
            name: 0.0 for name in PRIORITY_CLASSES}

    def __len__(self) -> int:
        return sum(len(q) for q in self._classes.values())

    def pending_by_class(self) -> Dict[str, int]:
        return {name: len(queue) for name, queue in self._classes.items()}

    def push(self, ticket: Ticket) -> None:
        queue = self._classes.get(ticket.priority)
        if queue is None:
            raise ValueError(
                f"unknown priority class {ticket.priority!r}; expected one "
                f"of {PRIORITY_CLASSES}")
        queue.push(ticket)

    def pop(self) -> Optional[Ticket]:
        active = [name for name in PRIORITY_CLASSES if self._classes[name]]
        if not active:
            return None
        if len(active) == 1:
            return self._classes[active[0]].pop()
        total = sum(self.weights[name] for name in active)
        for name in active:
            self._credits[name] += self.weights[name]
        best = max(active, key=lambda name: self._credits[name])
        self._credits[best] -= total
        return self._classes[best].pop()

    def drain(self) -> List[Ticket]:
        tickets: List[Ticket] = []
        for queue in self._classes.values():
            tickets.extend(queue.drain())
        return tickets


class AdmissionController:
    """The asyncio pump from the fair-share queue into a ``QueryService``.

    Parameters
    ----------
    service:
        The :class:`~repro.serve.service.QueryService` to forward into.
    weights:
        Per-class overrides of the default fair-share weights.
    max_pending:
        Queue capacity across all classes; overflow raises
        :class:`ServiceOverloadedError` (HTTP 503) with a drain-rate
        ``retry_after`` hint.
    concurrency:
        Worker-slot count — how many tickets may be inside the service
        concurrently.  Smaller values make fairness bite sooner.
    clock:
        Monotonic time source (injected by tests).
    """

    def __init__(self, service, *, weights: Optional[Dict[str, float]] = None,
                 max_pending: int = 1024, concurrency: int = 8,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if max_pending <= 0:
            raise ValueError("max_pending must be positive")
        if concurrency <= 0:
            raise ValueError("concurrency must be positive")
        self.service = service
        self.scheduler = FairShareScheduler(weights)
        self.max_pending = int(max_pending)
        self.concurrency = int(concurrency)
        self._clock = clock
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._workers: List[asyncio.Task] = []
        self._available: Optional[asyncio.Semaphore] = None
        self._closing = False
        self._completed = 0
        self._started_at = clock()

    async def start(self) -> "AdmissionController":
        if self._loop is not None:
            raise RuntimeError("AdmissionController is already started")
        self._loop = asyncio.get_running_loop()
        self._available = asyncio.Semaphore(0)
        self._started_at = self._clock()
        self._workers = [self._loop.create_task(self._work())
                         for _ in range(self.concurrency)]
        return self

    async def close(self) -> None:
        if self._loop is None:
            return
        self._closing = True
        for task in self._workers:
            task.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        for ticket in self.scheduler.drain():
            if not ticket.future.done():
                ticket.future.set_exception(ServiceClosedError(
                    "server shut down before this request was scheduled"))

    def pending_by_class(self) -> Dict[str, int]:
        return self.scheduler.pending_by_class()

    def retry_after_hint(self) -> Optional[float]:
        """``queue depth / drain rate`` over this controller's lifetime."""
        elapsed = max(self._clock() - self._started_at, 1e-9)
        rate = self._completed / elapsed
        if rate <= 0.0:
            return None
        return min(max(len(self.scheduler) / rate, 0.05), 60.0)

    def _require_running(self) -> None:
        if self._loop is None or self._closing:
            raise ServiceClosedError("admission controller is not running")

    async def submit(self, query, *, client_id: str,
                     priority: str = DEFAULT_PRIORITY,
                     timeout: Optional[float] = None,
                     allow_partial: Optional[bool] = None,
                     many: bool = False):
        """Queue one request (or one ``many`` batch) and await its result.

        ``timeout`` spans queue wait *and* service execution: the
        remaining budget at scheduling time is what rides into the
        service as its submit timeout.
        """
        self._require_running()
        if len(self.scheduler) >= self.max_pending:
            raise ServiceOverloadedError(
                f"admission queue at its high-water mark "
                f"({self.max_pending} pending); retry later",
                retry_after=self.retry_after_hint())
        ticket = Ticket(query=query, future=self._loop.create_future(),
                        client_id=client_id, priority=priority,
                        enqueued_at=self._clock(), timeout=timeout,
                        many=many, allow_partial=allow_partial)
        self.scheduler.push(ticket)
        self._available.release()
        if timeout is None:
            return await ticket.future
        try:
            return await asyncio.wait_for(asyncio.shield(ticket.future),
                                          timeout)
        except asyncio.TimeoutError:
            ticket.future.cancel()
            raise RequestTimeoutError(
                f"request timed out after {float(timeout):.4g}s in the "
                f"admission queue") from None
        except asyncio.CancelledError:
            ticket.future.cancel()
            raise

    async def _work(self) -> None:
        while True:
            await self._available.acquire()
            ticket = self.scheduler.pop()
            if ticket is None:  # drained by close() between release/acquire
                continue
            if ticket.future.done():  # abandoned while queued
                continue
            self._completed += 1
            try:
                result = await self._run(ticket)
            except asyncio.CancelledError:
                # Worker cancelled mid-flight (controller close): resolve
                # the waiter instead of stranding it.
                if not ticket.future.done():
                    ticket.future.set_exception(ServiceClosedError(
                        "server shut down while this request was in flight"))
                raise
            except Exception as exc:
                if not ticket.future.done():
                    ticket.future.set_exception(exc)
            else:
                if not ticket.future.done():
                    ticket.future.set_result(result)

    async def _run(self, ticket: Ticket):
        remaining: Optional[float] = None
        if ticket.timeout is not None:
            remaining = max(
                ticket.timeout - (self._clock() - ticket.enqueued_at), 0.001)
        if ticket.many:
            return await self.service.submit_many(
                ticket.query, timeout=remaining, priority=ticket.priority,
                allow_partial=ticket.allow_partial)
        return await self.service.submit(
            ticket.query, timeout=remaining, priority=ticket.priority,
            allow_partial=ticket.allow_partial)


__all__ = ["AdmissionController", "FairShareScheduler", "Ticket"]
