"""Per-client token-bucket rate limiting for the HTTP tier.

One :class:`TokenBucket` per client id, refilled continuously at
``rate`` tokens/second up to a ``burst`` ceiling.  A request costs one
token; when the bucket cannot cover it the limiter answers with the
exact time until it can — the principled ``Retry-After`` the 429
response carries (distinct from the queue-full 503, which hints from
queue depth and drain rate instead; see
:meth:`~repro.serve.errors.ServiceOverloadedError`).

The limiter is synchronous and clock-injected (no asyncio here): the
server calls it inline on the event loop, tests drive it with a fake
clock.  Unknown clients lazily get a bucket with the default parameters;
:meth:`TokenBucketLimiter.configure` pins per-client overrides (a paying
tier, an abusive batch job).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple


class TokenBucket:
    """One client's budget: ``burst`` capacity refilled at ``rate``/s."""

    __slots__ = ("rate", "burst", "tokens", "updated_at")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated_at = now

    def _refill(self, now: float) -> None:
        elapsed = now - self.updated_at
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated_at = now

    def take(self, now: float, cost: float = 1.0) -> Tuple[bool, float]:
        """Try to spend ``cost`` tokens; return ``(allowed, retry_after)``.

        On denial the bucket is left untouched and ``retry_after`` is the
        seconds until the deficit refills; on success it is ``0.0``.
        """
        self._refill(now)
        if self.tokens >= cost:
            self.tokens -= cost
            return True, 0.0
        return False, (cost - self.tokens) / self.rate


class TokenBucketLimiter:
    """Buckets keyed by client id, with per-client overrides.

    Parameters
    ----------
    rate / burst:
        Defaults for clients without an override.  ``rate=None`` turns
        the limiter off entirely (every request admitted), the default —
        serving deployments opt in through
        :class:`~repro.net.server.NetConfig`.
    clock:
        Monotonic time source (injected by tests).
    """

    def __init__(self, rate: Optional[float] = None, burst: float = 10.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.rate = rate
        self.burst = float(burst)
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._overrides: Dict[str, Tuple[float, float]] = {}

    @property
    def enabled(self) -> bool:
        return self.rate is not None or bool(self._overrides)

    def configure(self, client_id: str, rate: float, burst: float) -> None:
        """Pin ``client_id`` to its own ``rate``/``burst`` (resets its bucket)."""
        self._overrides[client_id] = (float(rate), float(burst))
        self._buckets.pop(client_id, None)

    def _bucket_for(self, client_id: str) -> Optional[TokenBucket]:
        bucket = self._buckets.get(client_id)
        if bucket is not None:
            return bucket
        override = self._overrides.get(client_id)
        if override is not None:
            rate, burst = override
        elif self.rate is not None:
            rate, burst = self.rate, self.burst
        else:
            return None
        bucket = TokenBucket(rate, burst, self._clock())
        self._buckets[client_id] = bucket
        return bucket

    def check(self, client_id: str, cost: float = 1.0) -> Tuple[bool, float]:
        """Admit or reject one request from ``client_id``.

        Returns ``(allowed, retry_after)``; clients with no default and
        no override are always admitted.
        """
        bucket = self._bucket_for(client_id)
        if bucket is None:
            return True, 0.0
        return bucket.take(self._clock(), cost)


__all__ = ["TokenBucket", "TokenBucketLimiter"]
