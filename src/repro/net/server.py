"""The HTTP/1.1 + websocket front door over a :class:`QueryService`.

Stdlib-asyncio only — requests are parsed straight off the stream reader
(the repo bakes in no web framework), in the thin-web-layer shape of the
slicer servers: translate the wire request into an engine call, return
structured JSON carrying the engine's full plan metadata.

Routes
------
* ``POST /v1/query`` — one query through rate limiting and fair-share
  admission; ``{"result": ...}`` on 200, typed error envelopes otherwise.
* ``POST /v1/query/batch`` — ``{"queries": [...]}`` through
  ``submit_many`` (one micro-batch candidate); ``{"results": [...]}``.
* ``POST /v1/query/stream`` — chunked NDJSON stream of verified top-k
  prefix frames and one final frame (see :mod:`repro.net.stream`).
* ``GET /v1/ws`` — RFC 6455 websocket; each text message is a request
  envelope with a client-chosen ``id``, answered by id-tagged frames, so
  one socket multiplexes queries and streams concurrently.
* ``GET /healthz`` — liveness (200 as long as the loop serves).
* ``GET /metrics`` — Prometheus text exposition of the shared registry.
* ``GET /v1/stats`` — the service's merged stats snapshot as JSON.
* ``GET /v1/functions`` — names in the server's function registry.

Request headers ``X-Client-Id`` and ``X-Priority`` (or body fields
``client_id`` / ``priority``, which win) select the token bucket and the
admission class.  Failures map to typed status codes via
:data:`repro.net.protocol.ERROR_STATUS` — 429 with ``Retry-After`` for
an exhausted token bucket, 503 with ``Retry-After`` for a full admission
queue, 504 for deadline misses, 400 for malformed requests — and
degraded (partial) answers are flagged in the response envelope.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.net.admission import AdmissionController
from repro.net.protocol import (
    PROTOCOL_VERSION,
    FunctionRegistry,
    ProtocolError,
    RateLimitedError,
    decode_priority,
    decode_query,
    encode_error,
    encode_result,
    retry_after_of,
    status_of,
)
from repro.net.ratelimit import TokenBucketLimiter
from repro.net.stream import error_frame, final_frame, prefix_frame
from repro.serve.batcher import DEFAULT_PRIORITY

_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable",
            504: "Gateway Timeout"}


@dataclass(frozen=True)
class NetConfig:
    """Tunables of the HTTP tier."""

    host: str = "127.0.0.1"
    port: int = 0  # 0: ephemeral, read the bound port off ``server.port``
    #: Admission queue capacity (503 + Retry-After beyond it).
    max_pending: int = 1024
    #: Fair-share worker slots — how many requests may be inside the
    #: QueryService at once; the backlog beyond them queues *here*, in
    #: priority order, instead of FIFO in a socket buffer.
    concurrency: int = 8
    #: Per-class weight overrides (merged over the serve defaults).
    class_weights: Mapping[str, float] = field(default_factory=dict)
    #: Default token-bucket rate (requests/second) and burst per client;
    #: ``rate=None`` disables rate limiting for clients without explicit
    #: overrides (``TokenBucketLimiter.configure``).
    rate: Optional[float] = None
    burst: float = 10.0
    #: Server-side timeout (seconds) applied when a request names none.
    default_timeout: Optional[float] = None
    #: Client id assumed when neither header nor body names one.
    default_client_id: str = "anonymous"
    max_body_bytes: int = 8 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.max_pending <= 0:
            raise ValueError("max_pending must be positive")
        if self.concurrency <= 0:
            raise ValueError("concurrency must be positive")
        if self.max_body_bytes <= 0:
            raise ValueError("max_body_bytes must be positive")


class QueryServer:
    """Serve a :class:`~repro.serve.service.QueryService` over a socket.

    Usage::

        async with QueryService(engine) as service:
            async with QueryServer(service, NetConfig(port=0)) as server:
                ...  # server.port is the bound port

    ``functions`` (a :class:`~repro.net.protocol.FunctionRegistry`) lets
    clients rank by registered name; structural function encodings work
    without one.  ``metrics`` defaults to the service's registry so one
    scrape covers ``net.*``, ``serve.*``, and the engine.
    """

    def __init__(self, service, config: Optional[NetConfig] = None, *,
                 functions: Optional[FunctionRegistry] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.service = service
        self.config = config or NetConfig()
        self.functions = functions
        self._clock = clock
        self.metrics = service.metrics
        self.admission = AdmissionController(
            service, weights=dict(self.config.class_weights),
            max_pending=self.config.max_pending,
            concurrency=self.config.concurrency, clock=clock)
        self.limiter = TokenBucketLimiter(self.config.rate, self.config.burst,
                                          clock=clock)
        self._server: Optional[asyncio.base_events.Server] = None
        self._m_requests = self.metrics.counter("net.requests")
        self._m_rate_limited = self.metrics.counter("net.rate_limited")
        self._m_errors = self.metrics.counter("net.errors")
        self._m_streams = self.metrics.counter("net.streams")
        self._m_stream_frames = self.metrics.counter("net.stream_frames")
        self._m_active = self.metrics.gauge("net.active_connections")
        self._m_ws_messages = self.metrics.counter("net.ws_messages")
        self._class_latency: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "QueryServer":
        if self._server is not None:
            raise RuntimeError("QueryServer is already started")
        await self.admission.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        return self

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``port=0`` ephemeral binds)."""
        if self._server is None:
            raise RuntimeError("QueryServer is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        return self.config.host

    async def close(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        await self.admission.close()

    async def __aenter__(self) -> "QueryServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # metrics helpers
    # ------------------------------------------------------------------
    def _observe_latency(self, priority: str, seconds: float) -> None:
        histogram = self._class_latency.get(priority)
        if histogram is None:
            histogram = self.metrics.histogram(
                f"net.latency_seconds.{priority}")
            self._class_latency[priority] = histogram
        histogram.observe(seconds)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._m_active.inc(1.0)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except (asyncio.IncompleteReadError, ConnectionError):
                    return
                if request is None:
                    return
                method, path, headers, body = request
                if (path == "/v1/ws"
                        and "websocket" in headers.get("upgrade", "").lower()):
                    await self._serve_websocket(reader, writer, headers)
                    return
                keep_alive = headers.get("connection", "").lower() != "close"
                done = await self._dispatch_http(method, path, headers, body,
                                                 writer, keep_alive)
                if not done or not keep_alive:
                    return
        finally:
            self._m_active.inc(-1.0)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("latin-1").split(None, 2)
        except ValueError:
            raise ProtocolError("malformed request line")
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        if length > self.config.max_body_bytes:
            raise ProtocolError(
                f"request body of {length} bytes exceeds the "
                f"{self.config.max_body_bytes}-byte limit")
        body = await reader.readexactly(length) if length else b""
        path = target.split("?", 1)[0]
        return method.upper(), path, headers, body

    @staticmethod
    def _error_headers(exc: Exception) -> Dict[str, str]:
        retry_after = retry_after_of(exc)
        if retry_after is None:
            return {}
        # Retry-After is integer delta-seconds on the wire; the exact
        # float rides in the JSON envelope.
        return {"Retry-After": str(max(int(math.ceil(retry_after)), 1))}

    async def _send_json(self, writer: asyncio.StreamWriter, status: int,
                         payload: dict, *, keep_alive: bool = True,
                         extra_headers: Optional[Dict[str, str]] = None,
                         content_type: str = "application/json") -> None:
        body = json.dumps(payload).encode("utf-8")
        await self._send_raw(writer, status, body, content_type,
                             keep_alive=keep_alive,
                             extra_headers=extra_headers)

    async def _send_raw(self, writer: asyncio.StreamWriter, status: int,
                        body: bytes, content_type: str, *,
                        keep_alive: bool = True,
                        extra_headers: Optional[Dict[str, str]] = None
                        ) -> None:
        reason = _REASONS.get(status, "OK")
        lines = [f"HTTP/1.1 {status} {reason}",
                 f"Content-Type: {content_type}",
                 f"Content-Length: {len(body)}",
                 f"Connection: {'keep-alive' if keep_alive else 'close'}"]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # HTTP routing
    # ------------------------------------------------------------------
    async def _dispatch_http(self, method: str, path: str,
                             headers: Dict[str, str], body: bytes,
                             writer: asyncio.StreamWriter,
                             keep_alive: bool) -> bool:
        """Route one request; returns False when the connection was taken
        over (streaming) and the keep-alive loop must stop."""
        self._m_requests.inc()
        try:
            if path == "/healthz":
                await self._send_json(writer, 200, {
                    "status": "ok", "protocol_version": PROTOCOL_VERSION,
                    "pending": float(len(self.service.batcher))},
                    keep_alive=keep_alive)
                return True
            if path == "/metrics":
                text = self.metrics.render_prometheus()
                await self._send_raw(writer, 200, text.encode("utf-8"),
                                     "text/plain; version=0.0.4",
                                     keep_alive=keep_alive)
                return True
            if path == "/v1/stats":
                snap = dict(self.service.stats_snapshot())
                for name, depth in self.admission.pending_by_class().items():
                    snap[f"net_pending_{name}"] = float(depth)
                await self._send_json(writer, 200, snap,
                                      keep_alive=keep_alive)
                return True
            if path == "/v1/functions":
                names = self.functions.names() if self.functions else []
                await self._send_json(writer, 200, {"functions": names},
                                      keep_alive=keep_alive)
                return True
            if path in ("/v1/query", "/v1/query/batch", "/v1/query/stream"):
                if method != "POST":
                    await self._send_json(
                        writer, 405,
                        encode_error(ProtocolError(f"{path} requires POST")),
                        keep_alive=keep_alive)
                    return True
                return await self._serve_query(path, headers, body, writer,
                                               keep_alive)
            await self._send_json(
                writer, 404,
                encode_error(ProtocolError(f"unknown path {path!r}")),
                keep_alive=keep_alive)
            return True
        except Exception as exc:  # noqa: BLE001 — typed at the boundary
            self._m_errors.inc()
            status = status_of(exc)
            await self._send_json(writer, status, encode_error(exc),
                                  keep_alive=keep_alive,
                                  extra_headers=self._error_headers(exc))
            return True

    def _request_context(self, headers: Dict[str, str], envelope: Mapping
                         ) -> Tuple[str, str, Optional[float], Optional[bool]]:
        """(client_id, priority, timeout, allow_partial) of one request."""
        client_id = str(envelope.get("client_id")
                        or headers.get("x-client-id")
                        or self.config.default_client_id)
        priority = decode_priority(envelope.get("priority")
                                   or headers.get("x-priority"),
                                   default=DEFAULT_PRIORITY)
        timeout = envelope.get("timeout", self.config.default_timeout)
        if timeout is not None:
            timeout = float(timeout)
            if timeout <= 0:
                raise ProtocolError("timeout must be positive")
        allow_partial = envelope.get("allow_partial")
        if allow_partial is not None:
            allow_partial = bool(allow_partial)
        return client_id, priority, timeout, allow_partial

    def _check_rate(self, client_id: str) -> None:
        allowed, retry_after = self.limiter.check(client_id)
        if not allowed:
            self._m_rate_limited.inc()
            raise RateLimitedError(
                f"client {client_id!r} exceeded its request rate",
                retry_after=retry_after)

    def _parse_envelope(self, body: bytes) -> Mapping:
        try:
            envelope = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}")
        if not isinstance(envelope, Mapping):
            raise ProtocolError("request body must be a JSON object")
        return envelope

    async def _serve_query(self, path: str, headers: Dict[str, str],
                           body: bytes, writer: asyncio.StreamWriter,
                           keep_alive: bool) -> bool:
        envelope = self._parse_envelope(body)
        client_id, priority, timeout, allow_partial = \
            self._request_context(headers, envelope)
        started = self._clock()
        try:
            self._check_rate(client_id)
            if path == "/v1/query/stream":
                query = decode_query(envelope.get("query"), self.functions)
                await self._serve_stream(query, priority, timeout, writer)
                return False  # connection taken over; loop must not reuse it
            if path == "/v1/query/batch":
                raw = envelope.get("queries")
                if not isinstance(raw, (list, tuple)):
                    raise ProtocolError("'queries' must be a JSON array")
                queries = [decode_query(q, self.functions) for q in raw]
                results = await self.admission.submit(
                    queries, client_id=client_id, priority=priority,
                    timeout=timeout, allow_partial=allow_partial, many=True)
                payload = {"results": [encode_result(r) for r in results]}
            else:
                query = decode_query(envelope.get("query"), self.functions)
                result = await self.admission.submit(
                    query, client_id=client_id, priority=priority,
                    timeout=timeout, allow_partial=allow_partial)
                payload = {"result": encode_result(result)}
        finally:
            self._observe_latency(priority, self._clock() - started)
        await self._send_json(writer, 200, payload, keep_alive=keep_alive)
        return True

    async def _serve_stream(self, query, priority: str,
                            timeout: Optional[float],
                            writer: asyncio.StreamWriter) -> None:
        """Chunked NDJSON: one frame per chunk, flushed as verified."""
        self._m_streams.inc()
        head = ("HTTP/1.1 200 OK\r\n"
                "Content-Type: application/x-ndjson\r\n"
                "Transfer-Encoding: chunked\r\n"
                "Connection: close\r\n\r\n").encode("latin-1")
        writer.write(head)
        await writer.drain()

        async def send_frame(frame: dict) -> None:
            data = (json.dumps(frame) + "\n").encode("utf-8")
            writer.write(f"{len(data):x}\r\n".encode("latin-1")
                         + data + b"\r\n")
            self._m_stream_frames.inc()
            await writer.drain()

        try:
            async for frame in self.service.submit_stream(
                    query, timeout=timeout, priority=priority):
                if frame[0] == "prefix":
                    await send_frame(prefix_frame(frame[1], frame[2]))
                else:
                    await send_frame(final_frame(frame[1]))
        except (ConnectionError, OSError):
            return  # client went away mid-stream
        except Exception as exc:  # noqa: BLE001 — typed on the wire
            self._m_errors.inc()
            try:
                await send_frame(error_frame(exc))
            except (ConnectionError, OSError):
                return
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    # ------------------------------------------------------------------
    # websocket
    # ------------------------------------------------------------------
    async def _serve_websocket(self, reader: asyncio.StreamReader,
                               writer: asyncio.StreamWriter,
                               headers: Dict[str, str]) -> None:
        key = headers.get("sec-websocket-key")
        if not key:
            await self._send_json(
                writer, 400,
                encode_error(ProtocolError("missing Sec-WebSocket-Key")),
                keep_alive=False)
            return
        accept = base64.b64encode(hashlib.sha1(
            (key + _WS_GUID).encode("latin-1")).digest()).decode("latin-1")
        writer.write(("HTTP/1.1 101 Switching Protocols\r\n"
                      "Upgrade: websocket\r\n"
                      "Connection: Upgrade\r\n"
                      f"Sec-WebSocket-Accept: {accept}\r\n\r\n"
                      ).encode("latin-1"))
        await writer.drain()
        send_lock = asyncio.Lock()
        tasks: set = set()
        default_client = headers.get("x-client-id",
                                     self.config.default_client_id)
        try:
            while True:
                message = await self._ws_read_message(reader, writer,
                                                      send_lock)
                if message is None:
                    break
                task = asyncio.get_running_loop().create_task(
                    self._ws_handle_message(message, writer, send_lock,
                                            default_client))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        finally:
            for task in list(tasks):
                task.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)

    async def _ws_read_message(self, reader, writer, send_lock
                               ) -> Optional[str]:
        """One text message (fragments reassembled); None on close."""
        parts = []
        while True:
            first = await reader.readexactly(2)
            fin = bool(first[0] & 0x80)
            opcode = first[0] & 0x0F
            masked = bool(first[1] & 0x80)
            length = first[1] & 0x7F
            if length == 126:
                length = int.from_bytes(await reader.readexactly(2), "big")
            elif length == 127:
                length = int.from_bytes(await reader.readexactly(8), "big")
            if length > self.config.max_body_bytes:
                raise ProtocolError("websocket message exceeds the body limit")
            mask = await reader.readexactly(4) if masked else b""
            payload = await reader.readexactly(length) if length else b""
            if masked:
                payload = bytes(b ^ mask[i % 4]
                                for i, b in enumerate(payload))
            if opcode == 0x8:  # close
                async with send_lock:
                    writer.write(self._ws_frame(0x8, payload[:2]))
                    await writer.drain()
                return None
            if opcode == 0x9:  # ping → pong
                async with send_lock:
                    writer.write(self._ws_frame(0xA, payload))
                    await writer.drain()
                continue
            if opcode == 0xA:  # unsolicited pong
                continue
            if opcode in (0x1, 0x2, 0x0):
                parts.append(payload)
                if fin:
                    return b"".join(parts).decode("utf-8")
                continue
            raise ProtocolError(f"unsupported websocket opcode {opcode}")

    @staticmethod
    def _ws_frame(opcode: int, payload: bytes) -> bytes:
        """One server→client frame (FIN set, unmasked)."""
        head = bytes([0x80 | opcode])
        length = len(payload)
        if length < 126:
            head += bytes([length])
        elif length < (1 << 16):
            head += bytes([126]) + length.to_bytes(2, "big")
        else:
            head += bytes([127]) + length.to_bytes(8, "big")
        return head + payload

    async def _ws_send(self, writer, send_lock, obj: dict) -> None:
        data = json.dumps(obj).encode("utf-8")
        async with send_lock:
            writer.write(self._ws_frame(0x1, data))
            await writer.drain()

    async def _ws_handle_message(self, message: str,
                                 writer: asyncio.StreamWriter,
                                 send_lock: asyncio.Lock,
                                 default_client: str) -> None:
        self._m_ws_messages.inc()
        request_id = None
        priority = DEFAULT_PRIORITY
        started = self._clock()
        try:
            try:
                envelope = json.loads(message)
            except json.JSONDecodeError as exc:
                raise ProtocolError(f"websocket message is not JSON: {exc}")
            if not isinstance(envelope, Mapping):
                raise ProtocolError("websocket message must be a JSON object")
            request_id = envelope.get("id")
            client_id, priority, timeout, allow_partial = \
                self._request_context({"x-client-id": default_client},
                                      envelope)
            self._check_rate(client_id)
            if envelope.get("stream"):
                self._m_streams.inc()
                query = decode_query(envelope.get("query"), self.functions)
                async for frame in self.service.submit_stream(
                        query, timeout=timeout, priority=priority):
                    if frame[0] == "prefix":
                        payload = prefix_frame(frame[1], frame[2])
                    else:
                        payload = final_frame(frame[1])
                    payload["id"] = request_id
                    self._m_stream_frames.inc()
                    await self._ws_send(writer, send_lock, payload)
            elif "queries" in envelope:
                raw = envelope.get("queries")
                if not isinstance(raw, (list, tuple)):
                    raise ProtocolError("'queries' must be a JSON array")
                queries = [decode_query(q, self.functions) for q in raw]
                results = await self.admission.submit(
                    queries, client_id=client_id, priority=priority,
                    timeout=timeout, allow_partial=allow_partial, many=True)
                await self._ws_send(writer, send_lock, {
                    "id": request_id, "frame": "batch",
                    "results": [encode_result(r) for r in results]})
            else:
                query = decode_query(envelope.get("query"), self.functions)
                result = await self.admission.submit(
                    query, client_id=client_id, priority=priority,
                    timeout=timeout, allow_partial=allow_partial)
                frame = final_frame(result)
                frame["id"] = request_id
                await self._ws_send(writer, send_lock, frame)
        except (ConnectionError, OSError, asyncio.CancelledError):
            raise
        except Exception as exc:  # noqa: BLE001 — typed on the wire
            self._m_errors.inc()
            frame = error_frame(exc)
            frame["id"] = request_id
            try:
                await self._ws_send(writer, send_lock, frame)
            except (ConnectionError, OSError):
                pass
        finally:
            self._observe_latency(priority, self._clock() - started)


__all__ = ["NetConfig", "QueryServer"]
