"""Asyncio client for the :mod:`repro.net` serving tier.

:class:`AsyncQueryClient` speaks the same hand-rolled HTTP/1.1 (and
RFC 6455 websocket) dialect as :class:`~repro.net.server.QueryServer`,
decodes result envelopes back into the engine's native
:class:`~repro.query.QueryResult` / ``SkylineResult`` objects, and
re-raises typed errors (:class:`~repro.net.protocol.RateLimitedError`,
:class:`~repro.serve.errors.ServiceOverloadedError`, ...) exactly as an
in-process caller of :meth:`QueryService.submit` would see them — so
tests and benchmarks can assert wire parity with ``==``, not "close
enough".
"""

from __future__ import annotations

import asyncio
import base64
import json
import os
from typing import AsyncIterator, List, Mapping, Optional, Sequence, Tuple

from repro.net.protocol import (
    ProtocolError,
    RemoteServerError,
    decode_error,
    decode_result,
    encode_query,
)
from repro.net.stream import StreamAssembler

_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"


class AsyncQueryClient:
    """One logical client (one ``client_id``) against one server.

    Plain request/response calls open short-lived connections (the
    server supports keep-alive, but independent connections keep the
    client trivially safe under ``asyncio.gather``); :meth:`stream`
    consumes a chunked NDJSON response; :meth:`websocket` yields a
    multiplexing session over a single upgraded socket.
    """

    def __init__(self, host: str, port: int, *,
                 client_id: Optional[str] = None,
                 priority: Optional[str] = None,
                 timeout: Optional[float] = None) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.priority = priority
        self.timeout = timeout

    # ------------------------------------------------------------------
    # low-level HTTP
    # ------------------------------------------------------------------
    async def _open(self) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        return await asyncio.open_connection(self.host, self.port)

    def _headers(self, body: bytes, extra: Optional[Mapping] = None) -> str:
        headers = {"Host": f"{self.host}:{self.port}",
                   "Content-Type": "application/json",
                   "Content-Length": str(len(body)),
                   "Connection": "close"}
        if self.client_id is not None:
            headers["X-Client-Id"] = self.client_id
        if self.priority is not None:
            headers["X-Priority"] = self.priority
        if extra:
            headers.update(extra)
        return "".join(f"{name}: {value}\r\n"
                       for name, value in headers.items())

    async def _request(self, method: str, path: str,
                       payload: Optional[Mapping] = None
                       ) -> Tuple[int, Mapping[str, str], bytes]:
        body = json.dumps(payload).encode("utf-8") if payload is not None \
            else b""
        reader, writer = await self._open()
        try:
            writer.write((f"{method} {path} HTTP/1.1\r\n"
                          + self._headers(body) + "\r\n").encode("latin-1")
                         + body)
            await writer.drain()
            status, headers = await self._read_head(reader)
            if headers.get("transfer-encoding", "").lower() == "chunked":
                chunks = [chunk async for chunk in self._iter_chunks(reader)]
                return status, headers, b"".join(chunks)
            length = int(headers.get("content-length", "0") or 0)
            data = await reader.readexactly(length) if length \
                else await reader.read()
            return status, headers, data
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_head(reader: asyncio.StreamReader
                         ) -> Tuple[int, Mapping[str, str]]:
        line = await reader.readline()
        if not line:
            raise RemoteServerError("server closed the connection "
                                    "before sending a status line")
        parts = line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ProtocolError(f"malformed status line {line!r}")
        status = int(parts[1])
        headers = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers

    @staticmethod
    async def _iter_chunks(reader: asyncio.StreamReader
                           ) -> AsyncIterator[bytes]:
        while True:
            size_line = await reader.readline()
            size = int(size_line.strip() or b"0", 16)
            if size == 0:
                await reader.readline()  # trailing CRLF of the last chunk
                return
            chunk = await reader.readexactly(size)
            await reader.readexactly(2)  # CRLF after each chunk
            yield chunk

    @staticmethod
    def _raise_for_status(status: int, body: bytes) -> None:
        if status < 400:
            return
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise RemoteServerError(
                f"HTTP {status} with an undecodable body", status=status)
        raise decode_error(payload, status)

    def _envelope(self, *, timeout: Optional[float],
                  priority: Optional[str],
                  allow_partial: Optional[bool]) -> dict:
        envelope: dict = {}
        effective_timeout = self.timeout if timeout is None else timeout
        if effective_timeout is not None:
            envelope["timeout"] = float(effective_timeout)
        effective_priority = priority or self.priority
        if effective_priority is not None:
            envelope["priority"] = effective_priority
        if self.client_id is not None:
            envelope["client_id"] = self.client_id
        if allow_partial is not None:
            envelope["allow_partial"] = bool(allow_partial)
        return envelope

    # ------------------------------------------------------------------
    # public surface
    # ------------------------------------------------------------------
    async def query(self, query, *, timeout: Optional[float] = None,
                    priority: Optional[str] = None,
                    allow_partial: Optional[bool] = None):
        """Submit one query; returns the decoded result object."""
        envelope = self._envelope(timeout=timeout, priority=priority,
                                  allow_partial=allow_partial)
        envelope["query"] = encode_query(query)
        status, _headers, body = await self._request("POST", "/v1/query",
                                                     envelope)
        self._raise_for_status(status, body)
        return decode_result(json.loads(body.decode("utf-8"))["result"])

    async def query_many(self, queries: Sequence, *,
                         timeout: Optional[float] = None,
                         priority: Optional[str] = None,
                         allow_partial: Optional[bool] = None) -> List:
        """Submit a batch through ``/v1/query/batch`` (one fused group
        candidate server-side); returns decoded results in order."""
        envelope = self._envelope(timeout=timeout, priority=priority,
                                  allow_partial=allow_partial)
        envelope["queries"] = [encode_query(q) for q in queries]
        status, _headers, body = await self._request(
            "POST", "/v1/query/batch", envelope)
        self._raise_for_status(status, body)
        return [decode_result(entry) for entry
                in json.loads(body.decode("utf-8"))["results"]]

    async def stream(self, query, *, timeout: Optional[float] = None,
                     priority: Optional[str] = None,
                     on_prefix=None):
        """Stream one query; returns ``(result, streamed_pairs)``.

        ``on_prefix(start, entries)`` is invoked per verified prefix
        frame as it arrives.  The assembled result is checked against
        the streamed prefixes (:class:`StreamAssembler`) and the typed
        error re-raised if the stream ends in an error frame.
        """
        envelope = self._envelope(timeout=timeout, priority=priority,
                                  allow_partial=None)
        envelope["query"] = encode_query(query)
        body = json.dumps(envelope).encode("utf-8")
        reader, writer = await self._open()
        assembler = StreamAssembler()
        try:
            writer.write(("POST /v1/query/stream HTTP/1.1\r\n"
                          + self._headers(body) + "\r\n").encode("latin-1")
                         + body)
            await writer.drain()
            status, headers = await self._read_head(reader)
            if status != 200:
                length = int(headers.get("content-length", "0") or 0)
                data = await reader.readexactly(length) if length \
                    else await reader.read()
                self._raise_for_status(status, data)
            buffer = b""
            async for chunk in self._iter_chunks(reader):
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if not line.strip():
                        continue
                    frame = json.loads(line.decode("utf-8"))
                    done = assembler.feed(frame)
                    if frame.get("frame") == "prefix" and on_prefix:
                        on_prefix(frame["start"], frame["entries"])
                    if done:
                        break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if assembler.error is not None:
            raise assembler.error
        if not assembler.done:
            raise RemoteServerError("stream ended without a final frame")
        return assembler.result, list(assembler.pairs)

    async def healthz(self) -> Mapping:
        status, _headers, body = await self._request("GET", "/healthz")
        self._raise_for_status(status, body)
        return json.loads(body.decode("utf-8"))

    async def metrics_text(self) -> str:
        status, _headers, body = await self._request("GET", "/metrics")
        self._raise_for_status(status, body)
        return body.decode("utf-8")

    async def stats(self) -> Mapping:
        status, _headers, body = await self._request("GET", "/v1/stats")
        self._raise_for_status(status, body)
        return json.loads(body.decode("utf-8"))

    async def functions(self) -> List[str]:
        status, _headers, body = await self._request("GET", "/v1/functions")
        self._raise_for_status(status, body)
        return list(json.loads(body.decode("utf-8"))["functions"])

    def websocket(self) -> "WebSocketSession":
        """``async with client.websocket() as ws: ...`` — one upgraded
        socket multiplexing queries and streams by request id."""
        return WebSocketSession(self)


class WebSocketSession:
    """A client-side RFC 6455 session against ``GET /v1/ws``."""

    def __init__(self, client: AsyncQueryClient) -> None:
        self._client = client
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._next_id = 0

    async def __aenter__(self) -> "WebSocketSession":
        client = self._client
        reader, writer = await client._open()
        key = base64.b64encode(os.urandom(16)).decode("latin-1")
        headers = {"Host": f"{client.host}:{client.port}",
                   "Upgrade": "websocket",
                   "Connection": "Upgrade",
                   "Sec-WebSocket-Key": key,
                   "Sec-WebSocket-Version": "13"}
        if client.client_id is not None:
            headers["X-Client-Id"] = client.client_id
        head = "GET /v1/ws HTTP/1.1\r\n" + "".join(
            f"{name}: {value}\r\n" for name, value in headers.items()) + "\r\n"
        writer.write(head.encode("latin-1"))
        await writer.drain()
        status, response_headers = await AsyncQueryClient._read_head(reader)
        if status != 101:
            length = int(response_headers.get("content-length", "0") or 0)
            body = await reader.readexactly(length) if length else b""
            writer.close()
            AsyncQueryClient._raise_for_status(status, body)
            raise RemoteServerError(f"websocket upgrade refused ({status})",
                                    status=status)
        self._reader, self._writer = reader, writer
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    async def close(self) -> None:
        if self._writer is None:
            return
        try:
            self._writer.write(self._frame(0x8, b""))
            await self._writer.drain()
        except (ConnectionError, OSError):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self._reader = self._writer = None

    # -- framing (client→server frames must be masked) ------------------
    @staticmethod
    def _frame(opcode: int, payload: bytes) -> bytes:
        head = bytes([0x80 | opcode])
        length = len(payload)
        if length < 126:
            head += bytes([0x80 | length])
        elif length < (1 << 16):
            head += bytes([0x80 | 126]) + length.to_bytes(2, "big")
        else:
            head += bytes([0x80 | 127]) + length.to_bytes(8, "big")
        mask = os.urandom(4)
        masked = bytes(b ^ mask[i % 4] for i, b in enumerate(payload))
        return head + mask + masked

    async def _send(self, obj: Mapping) -> None:
        if self._writer is None:
            raise RemoteServerError("websocket session is closed")
        self._writer.write(self._frame(0x1, json.dumps(obj).encode("utf-8")))
        await self._writer.drain()

    async def _recv(self) -> Optional[Mapping]:
        """Next JSON message; None when the server closes the socket."""
        reader, writer = self._reader, self._writer
        if reader is None:
            raise RemoteServerError("websocket session is closed")
        parts = []
        while True:
            try:
                first = await reader.readexactly(2)
            except (asyncio.IncompleteReadError, ConnectionError):
                return None
            fin = bool(first[0] & 0x80)
            opcode = first[0] & 0x0F
            masked = bool(first[1] & 0x80)
            length = first[1] & 0x7F
            if length == 126:
                length = int.from_bytes(await reader.readexactly(2), "big")
            elif length == 127:
                length = int.from_bytes(await reader.readexactly(8), "big")
            mask = await reader.readexactly(4) if masked else b""
            payload = await reader.readexactly(length) if length else b""
            if masked:
                payload = bytes(b ^ mask[i % 4]
                                for i, b in enumerate(payload))
            if opcode == 0x8:
                return None
            if opcode == 0x9:  # server ping → masked pong
                writer.write(self._frame(0xA, payload))
                await writer.drain()
                continue
            if opcode == 0xA:
                continue
            parts.append(payload)
            if fin:
                return json.loads(b"".join(parts).decode("utf-8"))

    def _fresh_id(self) -> int:
        self._next_id += 1
        return self._next_id

    # -- public calls ----------------------------------------------------
    async def query(self, query, *, timeout: Optional[float] = None,
                    priority: Optional[str] = None,
                    allow_partial: Optional[bool] = None):
        envelope = self._client._envelope(timeout=timeout, priority=priority,
                                          allow_partial=allow_partial)
        request_id = self._fresh_id()
        envelope.update({"id": request_id, "query": encode_query(query)})
        await self._send(envelope)
        frame = await self._await_frame(request_id)
        if frame["frame"] == "error":
            raise decode_error({"error": frame["error"]},
                               int(frame["error"].get("status", 500)))
        return decode_result(frame["result"])

    async def stream(self, query, *, timeout: Optional[float] = None,
                     priority: Optional[str] = None):
        """Stream over the socket; returns ``(result, streamed_pairs)``."""
        envelope = self._client._envelope(timeout=timeout, priority=priority,
                                          allow_partial=None)
        request_id = self._fresh_id()
        envelope.update({"id": request_id, "query": encode_query(query),
                         "stream": True})
        await self._send(envelope)
        assembler = StreamAssembler()
        while True:
            frame = await self._await_frame(request_id)
            if assembler.feed(frame):
                break
        if assembler.error is not None:
            raise assembler.error
        return assembler.result, list(assembler.pairs)

    async def _await_frame(self, request_id: int) -> Mapping:
        """Next frame tagged with ``request_id``.

        Single-waiter discipline: frames for other ids are an error here
        (interleave calls with ``asyncio.gather`` over *separate*
        sessions for true concurrency; in-session multiplexing is what
        the server supports, this minimal client consumes sequentially).
        """
        frame = await self._recv()
        if frame is None:
            raise RemoteServerError(
                "server closed the websocket mid-request")
        if frame.get("id") != request_id:
            raise ProtocolError(
                f"frame for request {frame.get('id')!r} while awaiting "
                f"{request_id!r}")
        return frame


__all__ = ["AsyncQueryClient", "WebSocketSession"]
