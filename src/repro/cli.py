"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list-experiments``
    Print every experiment id with its description.
``run-experiments [--only id,id,...] [--output report.md]``
    Run experiments and print (or write) a markdown report.
``demo [--shards N] [--scatter threads|processes] [--planner cost|static] [--chaos SEED] [--allow-partial]``
    Build a small ranking cube and run one query end to end — a smoke test
    that the installation works.  ``--shards N`` routes the same queries
    through the scatter/gather engine over N range shards instead;
    ``--scatter processes`` runs heavy shard legs in per-shard worker
    processes (shared-memory data, GIL-free scoring); ``--planner static``
    swaps the statistics-driven cost-based backend selection for the
    legacy (priority, name) order.  ``--chaos SEED`` plants seeded worker
    crashes and delays in the scatter legs (retries and per-shard circuit
    breakers recover; answers stay exact); ``--allow-partial`` degrades to
    the exact answer over surviving shards instead of failing when a shard
    stays down.
``serve [--shards N] [--scatter threads|processes] [--clients C] [--queries Q] [--linger MS] [--chaos SEED] [--allow-partial] [--http HOST:PORT] [--rate R]``
    Start an async :class:`~repro.serve.QueryService` over the engine and
    drive C concurrent clients of Q queries each through it, then print
    the merged metrics-registry snapshot (``serve.*`` + ``shard.*`` +
    ``engine.*`` counters, gauges, and latency percentiles) as JSON — a
    demo of the request queue + adaptive micro-batcher.  With ``--http``
    it instead binds a :class:`~repro.net.QueryServer` on HOST:PORT and
    serves JSON queries over HTTP/websocket until interrupted (``--rate``
    sets the default per-client token-bucket rate; see
    ``docs/network_serving.md``).
``analyze [--shards N] [--k K] [--direct]``
    EXPLAIN ANALYZE one top-k query: run it traced and render the span
    tree — queue wait, plan (with per-backend cost estimates), scatter
    legs, fused sweep, gather — with estimated cost vs. actual tuples
    per backend.  By default the query is served through a
    :class:`~repro.serve.QueryService` alongside fusable peer queries so
    the tree shows batching and the shared frontier sweep; ``--direct``
    calls ``explain_analyze`` on the engine itself instead.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional


def _cmd_list_experiments(_: argparse.Namespace) -> int:
    from repro.bench import ALL_EXPERIMENTS

    width = max(len(name) for name in ALL_EXPERIMENTS)
    for name, fn in sorted(ALL_EXPERIMENTS.items()):
        doc = (fn.__doc__ or "").strip().splitlines()[0] if fn.__doc__ else ""
        print(f"{name.ljust(width)}  {doc}")
    return 0


def _cmd_run_experiments(args: argparse.Namespace) -> int:
    from repro.bench import ALL_EXPERIMENTS
    from repro.bench.report import build_report, run_experiments

    only = args.only.split(",") if args.only else None

    def progress(name: str, seconds: float) -> None:
        print(f"[{name}] finished in {seconds:.1f}s", file=sys.stderr)

    try:
        results = run_experiments(ALL_EXPERIMENTS, only=only, progress=progress)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = build_report(results, title="Ranking-cube reproduction — measured series")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote {args.output}")
    else:
        print(report)
    return 0


def _fault_kwargs(args: argparse.Namespace) -> dict:
    """Scatter-engine fault kwargs for the ``--chaos`` / ``--allow-partial``
    flags: a seeded injector whose fault cap sits safely below the retry
    attempts, so the chaos demo provably converges to correct answers."""
    kwargs: dict = {"allow_partial": bool(getattr(args, "allow_partial",
                                                  False))}
    chaos = getattr(args, "chaos", None)
    if chaos is not None:
        from repro.fault import BreakerPolicy, FaultInjector, RetryPolicy

        kwargs["fault_injector"] = FaultInjector(
            seed=chaos,
            rates={"worker.crash.pre": 0.25, "worker.crash.post": 0.1,
                   "leg.delay": 0.1},
            max_faults=8, delay_seconds=0.002)
        kwargs["retry_policy"] = RetryPolicy(
            max_attempts=10, base_delay=0.002, cap_delay=0.02,
            jitter_seed=chaos)
        # The breaker threshold sits above the fault cap: with at most 8
        # injected faults no shard can ever see enough consecutive
        # failures to trip, so the chaos demo provably converges to
        # exact answers for any seed.
        kwargs["breaker_policy"] = BreakerPolicy(failure_threshold=10,
                                                 cooldown=1.0)
    return kwargs


def _print_fault_report(engine, injector) -> None:
    fired = {point: count for point, count in injector.fired.items() if count}
    print(f"chaos: injected {injector.total_fired} faults {fired}")
    snap = engine.metrics.snapshot()
    counters = {name: value for name, value in sorted(snap.items())
                if name.startswith(("fault.", "breaker.")) and value}
    print(f"fault counters: {counters}")


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.engine import Executor
    from repro.functions import LinearFunction
    from repro.query import Predicate, SkylineQuery, TopKQuery
    from repro.workloads import SyntheticSpec, generate_relation

    relation = generate_relation(SyntheticSpec(num_tuples=5000, num_selection_dims=3,
                                               num_ranking_dims=2, cardinality=10))
    num_shards = getattr(args, "shards", 0) or 0
    planner_mode = getattr(args, "planner", "cost")
    scatter = getattr(args, "scatter", "threads")
    close_engine = None
    if num_shards > 1:
        from repro.workloads import make_sharded_engine

        fault_kwargs = _fault_kwargs(args)
        _, executor = make_sharded_engine(relation, num_shards, range_dim="A1",
                                          scatter=scatter, block_size=200,
                                          planner_mode=planner_mode,
                                          **fault_kwargs)
        close_engine = executor.close
        print(f"engine: scatter/gather over {num_shards} range shards on A1 "
              f"({scatter})")
        if fault_kwargs.get("fault_injector") is not None:
            print(f"chaos: seed {args.chaos} — injected worker crashes and "
                  f"delays, recovered by retries/breakers")
    else:
        if getattr(args, "chaos", None) is not None:
            print("note: --chaos injects faults into scatter legs; it needs "
                  "--shards > 1 and is ignored unsharded", file=sys.stderr)
        executor = Executor.for_relation(relation, block_size=200,
                                         planner_mode=planner_mode)
    query = TopKQuery(Predicate.of(A1=1, A2=2),
                      LinearFunction(["N1", "N2"], [1.0, 1.0]), 5)
    result = executor.execute(query)
    print("top-5 for A1=1 and A2=2 order by N1+N2:")
    for tid, score in result.as_pairs():
        print(f"  tid={tid} score={score:.4f}")
    print(f"backend: {result.backend}")
    print(f"plan: {result.plan}")
    if num_shards <= 1:
        plan = executor.plan(query)
        costs = plan.details.get("cost_estimates")
        if costs:
            print(f"planner: {plan.mode} mode, candidate costs {costs}")
        else:
            print(f"planner: {plan.mode} mode")
    if num_shards > 1:
        print(f"shards consulted: {result.extra['shards_consulted']} "
              f"(pruned: {result.extra['shards_pruned']})")
        if "degraded" in result.extra:
            print(f"DEGRADED answer: shards_failed="
                  f"{result.extra['shards_failed']} "
                  f"completeness={result.extra['completeness']:.2f}")
    print(f"{result.disk_accesses} block accesses, "
          f"{result.states_generated} blocks examined")

    skyline = executor.execute(SkylineQuery(Predicate.of(A1=1), ("N1", "N2")))
    print(f"skyline for A1=1 over (N1, N2): {len(skyline)} points "
          f"via {skyline.backend}")
    if num_shards > 1 and getattr(executor, "fault_injector", None) is not None:
        _print_fault_report(executor, executor.fault_injector)
    if close_engine is not None:
        close_engine()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.engine import Executor
    from repro.serve import QueryService, ServiceConfig
    from repro.workloads import (
        SyntheticSpec,
        generate_relation,
        make_sharded_engine,
        serving_client_queries,
    )

    relation = generate_relation(SyntheticSpec(
        num_tuples=5000, num_selection_dims=3, num_ranking_dims=2,
        cardinality=10))
    if args.shards > 1:
        fault_kwargs = _fault_kwargs(args)
        manager, engine = make_sharded_engine(
            relation, args.shards, range_dim="A1", scatter=args.scatter,
            block_size=200, with_signature=False, with_skyline=False,
            **fault_kwargs)
        print(f"engine: scatter/gather over {args.shards} range shards on A1 "
              f"({args.scatter})")
        if fault_kwargs.get("fault_injector") is not None:
            print(f"chaos: seed {args.chaos} — serving through injected "
                  f"worker crashes and delays")
    else:
        manager = None
        if getattr(args, "chaos", None) is not None:
            print("note: --chaos injects faults into scatter legs; it needs "
                  "--shards > 1 and is ignored unsharded", file=sys.stderr)
        engine = Executor.for_relation(relation, block_size=200,
                                       with_signature=False,
                                       with_skyline=False)
        print("engine: unsharded")
    config = ServiceConfig(max_batch_size=64,
                           max_linger=args.linger / 1000.0)

    if getattr(args, "http", None):
        from repro.functions import LinearFunction
        from repro.net import FunctionRegistry, NetConfig, QueryServer

        host, _, port_text = args.http.rpartition(":")
        if not host or not port_text.isdigit():
            print(f"--http expects HOST:PORT, got {args.http!r}",
                  file=sys.stderr)
            return 2
        registry = FunctionRegistry()
        registry.register("sum_n1_n2", LinearFunction(["N1", "N2"],
                                                      [1.0, 1.0]))
        net_config = NetConfig(host=host, port=int(port_text),
                               rate=getattr(args, "rate", None))

        async def run_http() -> int:
            service = QueryService(engine, config, manager=manager,
                                   relation=relation)
            async with service:
                async with QueryServer(service, net_config,
                                       functions=registry) as server:
                    print(f"serving HTTP on {server.host}:{server.port} "
                          f"(POST /v1/query, /v1/query/batch, "
                          f"/v1/query/stream; GET /v1/ws, /healthz, "
                          f"/metrics, /v1/stats)")
                    try:
                        await asyncio.Event().wait()
                    except asyncio.CancelledError:
                        pass
            return 0

        try:
            return asyncio.run(run_http())
        except KeyboardInterrupt:
            print("shutting down")
            return 0

    clients = serving_client_queries(relation, num_clients=args.clients,
                                     per_client=args.queries)

    async def run() -> dict:
        service = QueryService(engine, config, manager=manager,
                               relation=relation)
        async with service:
            await asyncio.gather(*(service.submit_many(stream)
                                   for stream in clients))
            return service.metrics_snapshot()

    snap = asyncio.run(run())
    total = args.clients * args.queries
    print(f"served {total} queries from {args.clients} concurrent clients")
    if getattr(engine, "fault_injector", None) is not None:
        _print_fault_report(engine, engine.fault_injector)
    print("metrics (merged across serve, shards, engine):")
    print(json.dumps(snap, indent=2, sort_keys=True))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    import asyncio

    from repro.engine import Executor
    from repro.functions import LinearFunction
    from repro.query import Predicate, TopKQuery
    from repro.serve import QueryService, ServiceConfig
    from repro.workloads import SyntheticSpec, generate_relation, make_sharded_engine

    relation = generate_relation(SyntheticSpec(
        num_tuples=5000, num_selection_dims=3, num_ranking_dims=2,
        cardinality=10))
    function = LinearFunction(["N1", "N2"], [1.0, 1.0])
    target = TopKQuery(Predicate.of(A1=1, A2=2), function, args.k)
    if args.shards > 1:
        manager, engine = make_sharded_engine(
            relation, args.shards, range_dim="A1", block_size=200,
            with_signature=False, with_skyline=False)
        print(f"engine: scatter/gather over {args.shards} range shards on A1")
    else:
        manager = None
        engine = Executor.for_relation(relation, block_size=200,
                                       with_signature=False,
                                       with_skyline=False)
        print("engine: unsharded")
    print(f"query: top-{args.k} for A1=1 and A2=2 order by N1+N2")
    if args.direct:
        print(engine.explain_analyze(target))
        return 0

    # Serve the analyzed query alongside same-function peers so the trace
    # shows the micro-batcher's queue wait and the fused frontier sweep.
    peers = [TopKQuery(Predicate.of(A1=value), function, 3)
             for value in (0, 1, 2)]
    config = ServiceConfig(max_batch_size=16, max_linger=0.05)

    async def run() -> str:
        service = QueryService(engine, config, manager=manager,
                               relation=relation)
        async with service:
            others = [asyncio.ensure_future(service.submit(peer))
                      for peer in peers]
            text = await service.explain_analyze(target)
            await asyncio.gather(*others)
            return text

    print(asyncio.run(run()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Ranking-cube reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-experiments",
                   help="list every per-figure experiment").set_defaults(
        handler=_cmd_list_experiments)

    run = sub.add_parser("run-experiments", help="run experiments, emit markdown")
    run.add_argument("--only", help="comma-separated experiment ids (default: all)")
    run.add_argument("--output", help="write the markdown report to this file")
    run.set_defaults(handler=_cmd_run_experiments)

    demo = sub.add_parser("demo", help="build a small cube and run one query")
    demo.add_argument("--shards", type=int, default=0,
                      help="route the demo through a scatter/gather engine "
                           "over N range shards (default: unsharded)")
    demo.add_argument("--scatter", choices=("threads", "processes"),
                      default="threads",
                      help="shard-leg runtime when sharded: in-process "
                           "threads (default) or per-shard worker processes "
                           "over shared memory")
    demo.add_argument("--planner", choices=("cost", "static"), default="cost",
                      help="backend selection mode: statistics-driven cost "
                           "estimates (default) or the static (priority, "
                           "name) order")
    demo.add_argument("--chaos", type=int, metavar="SEED", default=None,
                      help="inject seeded worker crashes/delays into the "
                           "scatter legs (requires --shards > 1); retries "
                           "and breakers recover, answers stay exact")
    demo.add_argument("--allow-partial", action="store_true",
                      help="degrade to the exact answer over surviving "
                           "shards when one stays down, instead of failing "
                           "the query")
    demo.set_defaults(handler=_cmd_demo)

    serve = sub.add_parser(
        "serve", help="drive concurrent clients through the async service")
    serve.add_argument("--shards", type=int, default=3,
                       help="scatter/gather over N range shards "
                            "(<=1: unsharded; default: 3)")
    serve.add_argument("--scatter", choices=("threads", "processes"),
                       default="threads",
                       help="shard-leg runtime when sharded: in-process "
                            "threads (default) or per-shard worker "
                            "processes over shared memory")
    serve.add_argument("--clients", type=int, default=8,
                       help="number of concurrent clients (default: 8)")
    serve.add_argument("--queries", type=int, default=6,
                       help="queries per client (default: 6)")
    serve.add_argument("--linger", type=float, default=5.0,
                       help="micro-batcher max linger in milliseconds "
                            "(default: 5)")
    serve.add_argument("--chaos", type=int, metavar="SEED", default=None,
                       help="inject seeded worker crashes/delays into the "
                            "scatter legs while serving (requires "
                            "--shards > 1)")
    serve.add_argument("--http", metavar="HOST:PORT", default=None,
                       help="serve the engine over HTTP/websocket instead of "
                            "driving synthetic clients (Ctrl-C to stop)")
    serve.add_argument("--rate", type=float, default=None,
                       help="default per-client token-bucket rate "
                            "(requests/s) for --http; omit to disable")
    serve.add_argument("--allow-partial", action="store_true",
                       help="degrade to exact answers over surviving shards "
                            "when one stays down, instead of failing "
                            "requests")
    serve.set_defaults(handler=_cmd_serve)

    analyze = sub.add_parser(
        "analyze",
        help="EXPLAIN ANALYZE one served top-k query as a span tree")
    analyze.add_argument("--shards", type=int, default=3,
                         help="scatter/gather over N range shards "
                              "(<=1: unsharded; default: 3)")
    analyze.add_argument("--k", type=int, default=5,
                         help="result size of the analyzed query "
                              "(default: 5)")
    analyze.add_argument("--direct", action="store_true",
                         help="call explain_analyze on the engine itself "
                              "instead of serving the query through the "
                              "micro-batcher")
    analyze.set_defaults(handler=_cmd_analyze)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
