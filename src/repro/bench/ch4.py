"""Chapter 4 experiments: signature ranking cube construction, size, queries."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.baselines import BooleanFirstTopK, RankingFirstTopK
from repro.bench.datasets import ranking_rtree, selection_index, synthetic_relation
from repro.bench.harness import ExperimentResult, average, cold_buffers, scaled
from repro.functions import (
    ExpressionFunction,
    LinearFunction,
    SquaredDistanceFunction,
    Var,
)
from repro.query import Predicate, TopKQuery
from repro.signature import SignatureRankingCube, SignatureTopKExecutor
from repro.signature.encoding import SCHEME_BL, encode, encode_adaptive
from repro.signature.signature import Signature
from repro.storage.btree import BPlusTree
from repro.storage.table import Relation
from repro.workloads import QuerySpec, generate_queries

METRICS = ("time_s", "disk")


def _relation(num_tuples: int, cardinality: int = 100, num_selection_dims: int = 3,
              num_ranking_dims: int = 3) -> Relation:
    return synthetic_relation(num_tuples, num_selection_dims, num_ranking_dims,
                              cardinality, seed=17)


def fig4_08_construction_time() -> ExperimentResult:
    """Figure 4.8: construction time of the cube vs R-tree vs B+-trees, w.r.t. T."""
    result = ExperimentResult("fig4.8", "construction time vs T", "T", ("time_s",))
    for t in (scaled(5000, 1000000), scaled(10000, 5000000), scaled(20000, 10000000)):
        relation = _relation(t)
        cube = SignatureRankingCube(relation, rtree_max_entries=32)
        import time as _time
        start = _time.perf_counter()
        for dim in relation.selection_dims:
            BPlusTree.build(dim, relation.selection_column(dim).astype(float))
        btree_seconds = _time.perf_counter() - start
        result.add("signature cube", t, time_s=cube.stats.cube_seconds)
        result.add("R-tree", t, time_s=cube.stats.rtree_seconds)
        result.add("B-trees", t, time_s=btree_seconds)
    return result


def fig4_09_materialized_size() -> ExperimentResult:
    """Figure 4.9: materialized size of cube vs R-tree vs selection indexes."""
    result = ExperimentResult("fig4.9", "materialized size vs T", "T", ("bytes",))
    for t in (scaled(5000, 1000000), scaled(10000, 5000000), scaled(20000, 10000000)):
        relation = _relation(t)
        cube = SignatureRankingCube(relation, rtree_max_entries=32)
        index = selection_index(relation)
        result.add("signature cube", t, bytes=float(cube.size_in_bytes()))
        result.add("R-tree", t, bytes=float(cube.stats.rtree_bytes))
        result.add("B-trees", t, bytes=float(index.size_in_bytes()))
    return result


def fig4_10_compression() -> ExperimentResult:
    """Figure 4.10: adaptive signature compression vs baseline coding, w.r.t. C."""
    result = ExperimentResult("fig4.10", "signature size vs cardinality", "C",
                              ("bits",))
    num_tuples = scaled(8000, 1000000)
    for cardinality in (10, 100, 1000):
        relation = synthetic_relation(num_tuples, 3, 3, cardinality, seed=19)
        rtree = ranking_rtree(relation, max_entries=32)
        paths = dict(rtree.iter_tuple_paths())
        baseline_bits = 0
        adaptive_bits = 0
        for dim in relation.selection_dims:
            column = relation.selection_column(dim)
            for value in np.unique(column):
                tids = np.nonzero(column == value)[0]
                signature = Signature.from_paths([paths[t] for t in tids],
                                                 fanout=rtree.max_entries)
                for _, bits in signature.iter_nodes_breadth_first():
                    baseline_bits += len(encode(bits, rtree.max_entries, SCHEME_BL,
                                                False))
                    adaptive_bits += len(encode_adaptive(bits, rtree.max_entries))
        result.add("baseline coding", cardinality, bits=float(baseline_bits))
        result.add("adaptive compression", cardinality, bits=float(adaptive_bits))
    return result


def fig4_11_incremental_updates() -> ExperimentResult:
    """Figure 4.11: incremental maintenance cost vs number of inserted tuples."""
    result = ExperimentResult("fig4.11", "maintenance time vs inserts", "inserts",
                              ("time_s", "pages_written"))
    rng = np.random.default_rng(23)
    for t in (scaled(5000, 1000000), scaled(10000, 5000000)):
        relation = synthetic_relation(t, 3, 3, 100, seed=29)
        cube = SignatureRankingCube(relation, rtree_max_entries=32)
        for batch in (1, 10, 100):
            rows = []
            for _ in range(batch):
                row = {d: int(rng.integers(0, relation.cardinality(d)))
                       for d in relation.selection_dims}
                row.update({d: float(rng.random()) for d in relation.ranking_dims})
                rows.append(row)
            report = cube.insert(rows)
            result.add(f"incremental (T={t})", batch,
                       time_s=report.elapsed_seconds,
                       pages_written=float(report.pages_written))
        rebuild_seconds = cube.rebuild()
        result.add(f"recompute (T={t})", "full", time_s=rebuild_seconds,
                   pages_written=float(cube.store.num_pages()))
    return result


def fig4_12_query_topk() -> ExperimentResult:
    """Figure 4.12: query time w.r.t. k — Boolean vs Ranking vs Signature."""
    relation = _relation(scaled(20000, 1000000))
    cube = SignatureRankingCube(relation, rtree_max_entries=32)
    executor = SignatureTopKExecutor(cube)
    boolean = BooleanFirstTopK(relation, index=selection_index(relation))
    ranking = RankingFirstTopK(relation, cube.rtree)
    result = ExperimentResult("fig4.12", "query time vs k", "k", METRICS)
    for k in (10, 20, 50, 100):
        queries = generate_queries(relation, QuerySpec(k=k, num_selection_conditions=2,
                                                       num_ranking_dims=3, seed=31),
                                   count=scaled(5, 20))
        for name, engine in (("Signature", executor), ("Ranking", ranking),
                             ("Boolean", boolean)):
            times, disks = [], []
            for query in queries:
                cold_buffers(cube, cube.rtree, cube.store)
                outcome = engine.query(query)
                times.append(outcome.elapsed_seconds)
                disks.append(outcome.disk_accesses)
            result.add(name, k, time_s=average(times), disk=average(disks))
    return result


def fig4_13_disk_by_function() -> ExperimentResult:
    """Figure 4.13: R-tree block accesses per ranking-function type (k=100)."""
    relation = _relation(scaled(20000, 1000000))
    cube = SignatureRankingCube(relation, rtree_max_entries=32)
    executor = SignatureTopKExecutor(cube)
    ranking = RankingFirstTopK(relation, cube.rtree)
    rng = np.random.default_rng(37)
    functions = {
        "linear": LinearFunction(["N1", "N2", "N3"], rng.random(3).tolist()),
        "distance": SquaredDistanceFunction(["N1", "N2", "N3"], rng.random(3).tolist()),
        "general": ExpressionFunction(
            (2 * Var("N1") - Var("N2") - Var("N3")) ** 2),
    }
    result = ExperimentResult("fig4.13", "disk accesses vs function type", "function",
                              ("disk",))
    predicate = Predicate.of(A1=1, A2=2)
    for name, function in functions.items():
        for method, engine in (("Signature", executor), ("Ranking", ranking)):
            cold_buffers(cube, cube.rtree, cube.store)
            outcome = engine.query(TopKQuery(predicate, function, 100))
            result.add(method, name, disk=float(outcome.disk_accesses))
    return result


EXPERIMENTS = {
    "fig4.8": fig4_08_construction_time,
    "fig4.9": fig4_09_materialized_size,
    "fig4.10": fig4_10_compression,
    "fig4.11": fig4_11_incremental_updates,
    "fig4.12": fig4_12_query_topk,
    "fig4.13": fig4_13_disk_by_function,
}
