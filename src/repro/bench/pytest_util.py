"""Glue between the experiment functions and pytest-benchmark targets."""

from __future__ import annotations

from repro.bench.harness import ExperimentResult


def run_experiment(benchmark, experiment) -> ExperimentResult:
    """Run one experiment under pytest-benchmark and print its series table.

    Each figure is regenerated exactly once per run (``rounds=1``): the
    experiment itself already averages over a small query workload, and the
    interesting output is the per-method series table, not the timer
    statistics.
    """
    result = benchmark.pedantic(experiment, rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(result.format_table())
    assert result.rows, "the experiment produced no rows"
    return result
