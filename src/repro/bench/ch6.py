"""Chapter 6 experiments: SPJR (rank-join) queries over multiple relations."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.baselines import TableScanTopK
from repro.bench.harness import ExperimentResult, average, scaled
from repro.functions import LinearFunction
from repro.joins import (
    JoinCondition,
    RankingCubeJoinSystem,
    RelationTerm,
    SPJRQuery,
)
from repro.query import Predicate
from repro.storage.table import Relation
from repro.workloads import SyntheticSpec, generate_relation

_SYSTEMS: Dict[Tuple, RankingCubeJoinSystem] = {}


def _relations(num_tuples: int, join_cardinality: int, seed: int = 71
               ) -> Tuple[Relation, Relation]:
    left = generate_relation(
        SyntheticSpec(num_tuples=num_tuples, num_selection_dims=2,
                      num_ranking_dims=2, cardinality=join_cardinality, seed=seed),
        name=f"L{num_tuples}_{join_cardinality}")
    right = generate_relation(
        SyntheticSpec(num_tuples=num_tuples, num_selection_dims=2,
                      num_ranking_dims=2, cardinality=join_cardinality, seed=seed + 1),
        name=f"R{num_tuples}_{join_cardinality}")
    return left, right


def _system(left: Relation, right: Relation) -> RankingCubeJoinSystem:
    key = (left.name, right.name)
    if key not in _SYSTEMS:
        _SYSTEMS[key] = RankingCubeJoinSystem([left, right], rtree_max_entries=32)
    return _SYSTEMS[key]


def _query(left: Relation, right: Relation, k: int = 10) -> SPJRQuery:
    return SPJRQuery(
        terms=(
            RelationTerm(left, Predicate.of(A2=1),
                         LinearFunction(["N1", "N2"], [1.0, 1.0])),
            RelationTerm(right, Predicate.of(A2=2), LinearFunction(["N1"], [1.0])),
        ),
        joins=(JoinCondition(left.name, "A1", right.name, "A1"),),
        k=k,
    )


def _materialize_join_baseline(query: SPJRQuery) -> float:
    """Baseline: materialize the full filtered join, then sort (time in seconds)."""
    import itertools
    import time

    start = time.perf_counter()
    left_term, right_term = query.terms
    left_tids = left_term.relation.tids_matching(left_term.predicate.as_dict)
    right_tids = right_term.relation.tids_matching(right_term.predicate.as_dict)
    join = query.joins[0]
    right_by_key: Dict[int, list] = {}
    for tid in right_tids:
        key = right_term.relation.selection_values(int(tid))[join.right_dim]
        right_by_key.setdefault(key, []).append(int(tid))
    scores = []
    for tid in left_tids:
        key = left_term.relation.selection_values(int(tid))[join.left_dim]
        for other in right_by_key.get(key, []):
            scores.append(left_term.score(int(tid)) + right_term.score(other))
    scores.sort()
    del scores[query.k:]
    return time.perf_counter() - start


def fig6_03_cardinality() -> ExperimentResult:
    """Figure 6.3: execution time w.r.t. the join-attribute cardinality."""
    result = ExperimentResult("fig6.3", "rank join vs join-then-sort, by cardinality",
                              "cardinality", ("time_s", "pulls"))
    num_tuples = scaled(4000, 100000)
    for cardinality in (5, 20, 50, 100):
        left, right = _relations(num_tuples, cardinality)
        system = _system(left, right)
        query = _query(left, right)
        outcome = system.query(query)
        baseline_seconds = _materialize_join_baseline(query)
        result.add("ranking cube join", cardinality, time_s=outcome.elapsed_seconds,
                   pulls=outcome.extra["stream_pulls"])
        result.add("join then sort", cardinality, time_s=baseline_seconds, pulls=0.0)
    return result


def fig6_04_database_size() -> ExperimentResult:
    """Figure 6.4: execution time w.r.t. the relation sizes."""
    result = ExperimentResult("fig6.4", "rank join vs join-then-sort, by size", "T",
                              ("time_s", "pulls"))
    for num_tuples in (scaled(2000, 50000), scaled(4000, 100000), scaled(8000, 200000)):
        left, right = _relations(num_tuples, 20)
        system = _system(left, right)
        query = _query(left, right)
        outcome = system.query(query)
        baseline_seconds = _materialize_join_baseline(query)
        result.add("ranking cube join", num_tuples, time_s=outcome.elapsed_seconds,
                   pulls=outcome.extra["stream_pulls"])
        result.add("join then sort", num_tuples, time_s=baseline_seconds, pulls=0.0)
    return result


EXPERIMENTS = {
    "fig6.3": fig6_03_cardinality,
    "fig6.4": fig6_04_database_size,
}
